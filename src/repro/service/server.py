"""TCP transport for the pose service: frames, server, client.

The wire protocol is deliberately minimal: each direction is a stream
of length-prefixed frames (``<u32 length> <envelope bytes>``), where
the envelope is a CRC32-framed :mod:`repro.comms.envelope` message.
Responses complete out of order — the ``request_id`` the client chose
is the correlation key — which is what lets one connection pipeline
requests into the service's micro-batches.

Server-side robustness mirrors the service's contract: a frame that is
not a well-formed request is *counted and skipped* (the framing layer
stays in sync, so one corrupt envelope cannot poison the connection),
admission rejections become typed ``"shed"`` responses on the wire, and
a client that disconnects mid-request simply stops receiving — the
service still resolves the request internally.

Same-host clients can skip the wire for the heavy half of a scan-pair
request: :meth:`ServiceClient.request_shm` writes the two encoded tier
messages into a client-owned shared-memory segment and sends only a
:class:`~repro.comms.envelope.ShmPairRef` descriptor; the server
resolves the descriptor (attach → copy → close, never unlink) into an
ordinary scan-pair request *before* admission, so everything past the
transport — validation, batching, the worker data plane — is identical
for both forms and so are the responses.  A descriptor that does not
resolve (unknown name, short segment, corrupt payload) gets a typed
``"shed"`` response, keeping the answered-or-refused contract.
"""

from __future__ import annotations

import asyncio
import contextlib
import struct

from repro.comms.codec import CodecError
from repro.comms.envelope import (
    ServiceRequest,
    ServiceResponse,
    ShmPairRef,
    decode_request,
    decode_response,
)
from repro.comms.tiers import TieredMessage, decode_message, encode_message
from repro.runtime.shm import read_segment, write_segment
from repro.service.config import ServiceError
from repro.service.core import PoseService

__all__ = ["MAX_FRAME_BYTES", "ServiceClient", "ServiceServer",
           "resolve_shm_request"]

_LEN = struct.Struct("<I")
#: Upper bound on one frame — far above any real envelope (a full-scan
#: pair is ~1 MB), low enough that a corrupt length prefix cannot make
#: the reader balloon.
MAX_FRAME_BYTES = 64 * 1024 * 1024


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    head = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte bound")
    return await reader.readexactly(length)


def _write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    writer.write(_LEN.pack(len(payload)) + payload)


def resolve_shm_request(request: ServiceRequest) -> ServiceRequest:
    """Materialize a shm-pair request into an ordinary scan pair.

    Attaches the client-owned segment named by the descriptor, copies
    out the two encoded tier messages, decodes them, and rebuilds the
    request — the segment itself is closed immediately (and never
    unlinked: it is the client's to reclaim).

    Raises:
        CodecError: the segment does not resolve (unknown name, shorter
            than the descriptor promises, or holding malformed
            messages).
    """
    ref = request.shm
    assert ref is not None
    try:
        payload = read_segment(ref.name, ref.ego_len + ref.other_len)
    except (FileNotFoundError, ValueError, OSError) as error:
        raise CodecError(
            f"shm descriptor {ref.name!r} does not resolve: "
            f"{error}") from error
    ego = decode_message(payload[:ref.ego_len])
    other = decode_message(payload[ref.ego_len:])
    return ServiceRequest(request_id=request.request_id, ego=ego,
                          other=other, deadline_ms=request.deadline_ms)


class ServiceServer:
    """Serve one :class:`PoseService` over TCP."""

    def __init__(self, service: PoseService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.Server | None = None
        self._connections: set[asyncio.Task] = set()

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound
        port afterwards (useful with ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close open connections.  Idempotent.

        Does *not* stop the service — lifecycle layering is the
        caller's job (``repro serve`` drains the service after the
        listener closes).
        """
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()
        for task in list(self._connections):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        registry = self.service.registry
        registry.counter("service/connections").inc()
        write_lock = asyncio.Lock()
        responders: set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)

        async def respond(future: asyncio.Future) -> None:
            response: ServiceResponse = await future
            async with write_lock:
                _write_frame(writer, response.encode())
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

        try:
            while True:
                try:
                    frame = await _read_frame(reader)
                except asyncio.CancelledError:
                    # stop() closing the connection; asyncio streams
                    # run the handler as its own task, so swallowing
                    # the cancellation here ends it cleanly.
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except CodecError:
                    registry.counter("service/bad_frames").inc()
                    break  # length prefix itself untrusted: resync is
                    # impossible, drop the connection
                try:
                    request = decode_request(frame)
                except CodecError:
                    # The framing layer is still in sync — skip the
                    # corrupt envelope, keep the connection.
                    registry.counter("service/bad_frames").inc()
                    continue
                if request.shm is not None:
                    try:
                        request = resolve_shm_request(request)
                        registry.counter("service/shm/requests").inc()
                    except CodecError:
                        # The descriptor is well-framed but the segment
                        # is not there (or lies): answer typed, like an
                        # admission rejection — the client is waiting.
                        registry.counter("service/shm/resolve_failures"
                                         ).inc()
                        async with write_lock:
                            _write_frame(writer, ServiceResponse(
                                request_id=request.request_id,
                                status="shed", success=False,
                                failure_reason="ShmResolveError",
                                degradation=None, inliers_bv=0,
                                inliers_box=0, tx=0.0, ty=0.0,
                                theta=0.0).encode())
                            with contextlib.suppress(ConnectionError):
                                await writer.drain()
                        continue
                try:
                    future = self.service.submit_nowait(request)
                except ServiceError as error:
                    # Typed rejection → typed wire response.
                    async with write_lock:
                        _write_frame(writer, ServiceResponse(
                            request_id=request.request_id, status="shed",
                            success=False,
                            failure_reason=type(error).__name__,
                            degradation=None, inliers_bv=0, inliers_box=0,
                            tx=0.0, ty=0.0, theta=0.0).encode())
                        with contextlib.suppress(ConnectionError):
                            await writer.drain()
                    continue
                task = asyncio.create_task(respond(future))
                responders.add(task)
                task.add_done_callback(responders.discard)
        finally:
            if me is not None:
                self._connections.discard(me)
            for task in list(responders):
                task.cancel()
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()


class ServiceClient:
    """One pipelined TCP connection to a :class:`ServiceServer`.

    Allocates request ids internally; concurrent :meth:`request` calls
    interleave freely (responses correlate by id).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._waiting: dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._pump = asyncio.create_task(self._pump_responses())

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _pump_responses(self) -> None:
        try:
            while True:
                frame = await _read_frame(self._reader)
                response = decode_response(frame)
                future = self._waiting.pop(response.request_id, None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.CancelledError, CodecError) as error:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(
                        ConnectionError(f"connection lost: {error!r}"))
            self._waiting.clear()

    async def request(self, request: ServiceRequest | None = None, *,
                      index: int | None = None,
                      deadline_ms: int = 0) -> ServiceResponse:
        """Send one request and await its response.

        Either pass a prebuilt :class:`ServiceRequest` (its
        ``request_id`` is replaced with a connection-unique one) or
        just ``index=`` for the common indexed form.

        Raises:
            ConnectionError: the connection is gone — raised up front
                (a dead pump would never resolve a new future) or when
                it drops while this request is in flight.
        """
        if self._pump.done():
            raise ConnectionError("connection closed")
        request_id = self._next_id
        self._next_id = (self._next_id + 1) & 0xFFFFFFFF or 1
        if request is None:
            request = ServiceRequest(request_id=request_id, index=index,
                                     deadline_ms=deadline_ms)
        else:
            kwargs = dict(request_id=request_id,
                          deadline_ms=request.deadline_ms)
            if request.index is not None:
                kwargs["index"] = request.index
            elif request.shm is not None:
                kwargs["shm"] = request.shm
            else:
                kwargs.update(ego=request.ego, other=request.other)
            request = ServiceRequest(**kwargs)
        future = asyncio.get_running_loop().create_future()
        self._waiting[request.request_id] = future
        _write_frame(self._writer, request.encode())
        await self._writer.drain()
        return await future

    async def request_shm(self, ego: TieredMessage, other: TieredMessage,
                          *, deadline_ms: int = 0) -> ServiceResponse:
        """Send one scan pair through a shared-memory segment.

        Same-host fast path: the encoded messages land in a
        client-owned segment and only a ~30-byte descriptor crosses the
        socket.  The segment lives until the response (the server
        copies it out before admission, so unlinking afterwards is
        always safe) and is reclaimed on every exit path.

        Raises:
            ShmUnavailableError: no shared memory here — callers fall
                back to :meth:`request` with the same messages.
            ConnectionError: as :meth:`request`.
        """
        ego_bytes = encode_message(ego)
        other_bytes = encode_message(other)
        segment = write_segment(ego_bytes + other_bytes)
        try:
            ref = ShmPairRef(name=segment.name, ego_len=len(ego_bytes),
                             other_len=len(other_bytes))
            return await self.request(ServiceRequest(
                request_id=1, shm=ref, deadline_ms=deadline_ms))
        finally:
            segment.close()
            with contextlib.suppress(FileNotFoundError):
                segment.unlink()

    async def close(self) -> None:
        self._pump.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._pump
        self._writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self._writer.wait_closed()
