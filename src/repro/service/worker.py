"""Worker-side execution units and the outcome→response mapping.

Two batch shapes run on the service's pool:

* **indexed** batches are literally the sweep engine's chunks: the
  service builds a :class:`repro.runtime.engine._ChunkTask` over the
  requested pair indices and submits the engine's own ``_run_chunk``.
  Same function, same seeds, same per-pair error capture — which is
  what makes a service answer for pair ``i`` byte-identical to the
  sweep's outcome for pair ``i`` (the clean-path parity guarantee) and
  lets :class:`~repro.runtime.faults.WorkerFault` injection work
  unchanged.
* **scan-pair** batches carry the sensing itself (decoded
  :class:`~repro.comms.tiers.TieredMessage` pairs); the worker keeps a
  warm :class:`~repro.core.pipeline.BBAlign` per process and runs the
  pipeline's message path, so any tier the pipeline accepts works over
  the service too.  Two data planes feed this shape: the pickle path
  (messages ride inside the task) and the zero-copy path (the task
  carries a :class:`~repro.runtime.shm.SharedMessages` descriptor and
  the arrays are mapped out of a parent-owned shared segment).

Scan-pair workers also keep a **persistent content-keyed feature
cache** across requests: stage-1 extraction is a pure function of
(scan bytes, extraction configuration), so a BLAKE2 digest of the
payload plus :func:`~repro.runtime.cache.extraction_fingerprint`
identifies the features exactly — two requests carrying the same scan
skip extraction entirely, whatever transport delivered them.  Cache
on/off is response-byte-identical by construction: the cache only
short-circuits a deterministic recomputation, and any failure on the
cached path falls back to the uncached call.

Both batch shapes return the engine's chunk shape ``(key, payload,
telemetry)`` — telemetry is a registry snapshot the parent folds in
chunk-keyed, so a retried batch never double-counts; cache counters
travel as per-batch deltas for the same reason.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.comms.envelope import ServiceRequest, ServiceResponse
from repro.core.config import BBAlignConfig
from repro.obs.metrics import use_registry
from repro.obs.spans import collect_spans
from repro.runtime.cache import FeatureCache, extraction_fingerprint
from repro.runtime.shm import SharedMessages, load_messages
from repro.runtime.timings import SweepTimings, stage
from repro.service.config import ServiceConfig

__all__ = ["ScanPairTask", "build_chunk_task", "configure_worker",
           "response_for", "run_chunk", "run_scan_pairs", "scan_cache"]


def build_chunk_task(indices: tuple[int, ...], config: ServiceConfig,
                     attempt: int = 0, trace_parent: str | None = None):
    """The engine chunk task evaluating ``indices`` for this service."""
    from repro.runtime.engine import _ChunkTask
    return _ChunkTask(
        indices=indices, dataset_config=config.dataset_config,
        config=config.config, detector_profile=config.detector_profile,
        include_vips=config.include_vips, vips_config=config.vips_config,
        seed=config.seed, fault=config.fault, attempt=attempt,
        trace_parent=trace_parent)


def run_chunk(task):
    """Alias for the engine's chunk runner (one picklable entry point)."""
    from repro.runtime.engine import _run_chunk
    return _run_chunk(task)


@dataclass(frozen=True)
class ScanPairTask:
    """A batch of scan-pair requests plus the pipeline configuration.

    Only configuration and either decoded messages (pickle path) or a
    :class:`~repro.runtime.shm.SharedMessages` descriptor (zero-copy
    path) cross the process boundary; the worker's :class:`BBAlign`
    (Log-Gabor bank, geometry) and feature cache stay warm across
    batches.

    On the zero-copy path ``requests`` is empty and ``request_ids``
    names the batch; message ``2i``/``2i + 1`` of ``shared`` is request
    ``i``'s ego/other pair.
    """

    requests: tuple[ServiceRequest, ...]
    config: BBAlignConfig | None
    seed: int
    attempt: int = 0
    shared: SharedMessages | None = None
    request_ids: tuple[int, ...] = ()
    use_cache: bool = True
    trace_parent: str | None = None


# Per-process warm pipeline, rebuilt only when the config changes.
_ALIGNER = None
_ALIGNER_KEY: str | None = None


def _aligner(config: BBAlignConfig | None):
    global _ALIGNER, _ALIGNER_KEY
    key = repr(config)
    if _ALIGNER is None or key != _ALIGNER_KEY:
        from repro.core.pipeline import BBAlign
        _ALIGNER = BBAlign(config)
        _ALIGNER_KEY = key
    return _ALIGNER


# ----------------------------------------------------------------------
# Persistent per-process feature cache for scan-pair requests.
# ----------------------------------------------------------------------
#: Entry bound far above what any byte budget admits; the byte budget
#: is the real limiter (entries are megabytes each).
_CACHE_MAX_ENTRIES = 1024
_CACHE_MB = 64.0
_SCAN_CACHE: FeatureCache | None = None


def configure_worker(cache_mb: float = 64.0) -> None:
    """Pool initializer: size this worker's scan feature cache.

    Runs in every worker the pool (re)starts — the service passes it as
    the pool initializer so a post-crash replacement worker comes up
    with the same budget, not a default.  ``cache_mb <= 0`` disables
    storage.
    """
    global _CACHE_MB, _SCAN_CACHE
    _CACHE_MB = float(cache_mb)
    if _CACHE_MB > 0:
        _SCAN_CACHE = FeatureCache(
            max_entries=_CACHE_MAX_ENTRIES,
            max_bytes=int(_CACHE_MB * 1024 * 1024))
    else:
        _SCAN_CACHE = FeatureCache(max_entries=0)


def scan_cache() -> FeatureCache:
    """This process's scan feature cache (created on first use)."""
    global _SCAN_CACHE
    if _SCAN_CACHE is None:
        configure_worker(_CACHE_MB)
    return _SCAN_CACHE


def _digest(*arrays: np.ndarray | None) -> str:
    """BLAKE2 content digest over a sequence of (optional) arrays."""
    h = hashlib.blake2b(digest_size=16)
    for array in arrays:
        if array is None:
            h.update(b"\x00none")
            continue
        array = np.ascontiguousarray(array)
        h.update(str((array.shape, array.dtype.str)).encode())
        h.update(array.tobytes())
    return h.hexdigest()


def _features_nbytes(features, _depth: int = 0) -> int:
    """Rough footprint of a feature object: the arrays it references.

    Generic attribute walk (``__slots__`` / ``__dict__``) so feature
    shapes can grow fields without this under-counting to zero; caps
    recursion instead of chasing arbitrary object graphs.
    """
    if isinstance(features, np.ndarray):
        return features.nbytes
    if _depth >= 3 or features is None or isinstance(
            features, (int, float, str, bytes, bool, tuple, list)):
        return 0
    names = getattr(features, "__slots__", None)
    if names is None:
        names = vars(features).keys() if hasattr(features, "__dict__") \
            else ()
    return sum(_features_nbytes(getattr(features, name, None), _depth + 1)
               for name in names)


def _cached_features(cache: FeatureCache, key: tuple, extract):
    features = cache.get(key)
    if features is None:
        features = extract()
        cache.put(key, features, nbytes=_features_nbytes(features))
    return features


def _recover_scan(aligner, ego, other, rng, timer, use_cache: bool):
    """One request through the pipeline, cache-accelerated when safe.

    The cached path replaces only deterministic extraction work — the
    ego features always (admission guarantees a full-scan ego), the
    other side for the full-scan and BV-image tiers — and funnels into
    the same ``_recover_features`` tail the uncached payload path uses,
    with the same rng, so responses are byte-identical either way.
    Anything unexpected (a cloudless ego message, extraction raising)
    falls through to the plain uncached call, which reproduces the
    uncached behavior exactly because extraction consumes no
    randomness.
    """
    from repro.comms.tiers import Tier, TieredMessage

    if (not use_cache or not isinstance(other, TieredMessage)
            or other.tier is Tier.BOXES_ONLY or ego.cloud is None):
        # BOXES_ONLY never touches ego features; warming the cache for
        # it would be pure overhead.
        return aligner.recover(ego.cloud, other, ego_boxes=ego.boxes,
                               rng=rng, timer=timer)
    cache = scan_cache()
    fp = extraction_fingerprint(aligner.config)
    try:
        ego_features = _cached_features(
            cache, ("cloud", _digest(ego.cloud.points,
                                     ego.cloud.timestamps,
                                     ego.cloud.labels), fp),
            lambda: aligner.extract_features(ego.cloud))
    except Exception:
        return aligner.recover(ego.cloud, other, ego_boxes=ego.boxes,
                               rng=rng, timer=timer)
    other_features = None
    try:
        if other.tier is Tier.FULL_SCAN and other.cloud is not None:
            other_features = _cached_features(
                cache, ("cloud", _digest(other.cloud.points,
                                         other.cloud.timestamps,
                                         other.cloud.labels), fp),
                lambda: aligner.extract_features(other.cloud))
        elif other.tier is Tier.BV_IMAGE and other.bv_image is not None:
            bv = other.bv_image
            other_features = _cached_features(
                cache, ("bv", _digest(bv.image), bv.cell_size,
                        bv.lidar_range, fp),
                lambda: aligner.bv_matcher.extract(bv))
    except Exception:
        other_features = None  # uncached path re-raises inside recover
    if other_features is not None:
        return aligner.recover(ego_features, other_features,
                               ego_boxes=ego.boxes,
                               other_boxes=list(other.boxes),
                               rng=rng, timer=timer)
    return aligner.recover(ego_features, other, ego_boxes=ego.boxes,
                           rng=rng, timer=timer)


def run_scan_pairs(task: ScanPairTask) -> tuple[int, list, dict]:
    """Evaluate a scan-pair batch; engine-chunk-shaped result.

    The pipeline's contract does the heavy lifting: degenerate *data*
    yields a flagged degraded result, never an exception, so every
    request in the batch maps to a response.  RANSAC randomness spawns
    from ``[seed, request_id, 2]`` — per-request deterministic, so a
    retried batch returns identical poses.
    """
    import contextlib

    aligner = _aligner(task.config)
    timings = SweepTimings()
    cache = scan_cache()
    cache_before = (cache.hits, cache.misses, cache.evictions)
    close = None
    if task.shared is not None:
        messages, close = load_messages(task.shared)
        pairs = [(request_id, messages[2 * i], messages[2 * i + 1])
                 for i, request_id in enumerate(task.request_ids)]
    else:
        pairs = [(r.request_id, r.ego, r.other) for r in task.requests]
    responses: list[ServiceResponse] = []
    spans: list[dict] = []
    trace_cm = (collect_spans(task.trace_parent)
                if task.trace_parent is not None
                else contextlib.nullcontext())
    with use_registry(timings.registry), trace_cm as collector:
        timer = functools.partial(stage, timings)
        for request_id, ego, other in pairs:
            with stage(timings, "scan_pair"):
                result = _recover_scan(
                    aligner, ego, other,
                    np.random.default_rng([task.seed, request_id, 2]),
                    timer, task.use_cache)
            responses.append(ServiceResponse(
                request_id=request_id, status="ok",
                success=result.success,
                failure_reason=(result.failure_reason.value
                                if result.failure_reason is not None
                                else None),
                degradation=result.degradation.value,
                inliers_bv=result.inliers_bv,
                inliers_box=result.inliers_box,
                tx=result.transform.tx, ty=result.transform.ty,
                theta=result.transform.theta))
        if collector is not None:
            spans = collector.events
    registry = timings.registry
    registry.counter("service/worker_cache/hits").inc(
        cache.hits - cache_before[0])
    registry.counter("service/worker_cache/misses").inc(
        cache.misses - cache_before[1])
    registry.counter("service/worker_cache/evictions").inc(
        cache.evictions - cache_before[2])
    timings.pairs = len(responses)
    first = pairs[0][0] if pairs else 0
    if close is not None:
        # Views over the mapped segment die with the batch; the cache
        # never retains one (BV/keypoint arrays are copied on load).
        messages = pairs = ego = other = None  # noqa: F841
        close()
    return first, responses, {"snapshot": timings.to_snapshot(),
                              "spans": spans}


def response_for(outcome, request_id: int) -> ServiceResponse:
    """Map a sweep outcome (``PairOutcome`` or ``PairErrorOutcome``)
    onto the wire response for ``request_id``.

    An evaluation that crashed inside the worker (the engine's per-pair
    capture) still produces a response — identity pose, ``success``
    false, the error's taxonomy tag — because a captured error is a
    degraded data point, not a service failure.
    """
    degradation = getattr(outcome, "degradation", None)
    return ServiceResponse(
        request_id=request_id, status="ok",
        success=bool(outcome.success),
        failure_reason=getattr(outcome, "failure_reason", None),
        degradation=degradation,
        inliers_bv=int(getattr(outcome, "inliers_bv", 0)),
        inliers_box=int(getattr(outcome, "inliers_box", 0)),
        tx=float(getattr(outcome, "tx", 0.0)),
        ty=float(getattr(outcome, "ty", 0.0)),
        theta=float(getattr(outcome, "theta", 0.0)))
