"""Worker-side execution units and the outcome→response mapping.

Two batch shapes run on the service's pool:

* **indexed** batches are literally the sweep engine's chunks: the
  service builds a :class:`repro.runtime.engine._ChunkTask` over the
  requested pair indices and submits the engine's own ``_run_chunk``.
  Same function, same seeds, same per-pair error capture — which is
  what makes a service answer for pair ``i`` byte-identical to the
  sweep's outcome for pair ``i`` (the clean-path parity guarantee) and
  lets :class:`~repro.runtime.faults.WorkerFault` injection work
  unchanged.
* **scan-pair** batches carry the sensing itself (decoded
  :class:`~repro.comms.tiers.TieredMessage` pairs); the worker keeps a
  warm :class:`~repro.core.pipeline.BBAlign` per process and runs the
  pipeline's message path, so any tier the pipeline accepts works over
  the service too.

Both return the engine's chunk shape ``(key, payload, telemetry)`` —
telemetry is a registry snapshot the parent folds in chunk-keyed, so a
retried batch never double-counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comms.envelope import ServiceRequest, ServiceResponse
from repro.core.config import BBAlignConfig
from repro.obs.metrics import use_registry
from repro.runtime.timings import SweepTimings, stage
from repro.service.config import ServiceConfig

__all__ = ["ScanPairTask", "build_chunk_task", "response_for",
           "run_scan_pairs"]


def build_chunk_task(indices: tuple[int, ...], config: ServiceConfig,
                     attempt: int = 0):
    """The engine chunk task evaluating ``indices`` for this service."""
    from repro.runtime.engine import _ChunkTask
    return _ChunkTask(
        indices=indices, dataset_config=config.dataset_config,
        config=config.config, detector_profile=config.detector_profile,
        include_vips=config.include_vips, vips_config=config.vips_config,
        seed=config.seed, fault=config.fault, attempt=attempt)


def run_chunk(task):
    """Alias for the engine's chunk runner (one picklable entry point)."""
    from repro.runtime.engine import _run_chunk
    return _run_chunk(task)


@dataclass(frozen=True)
class ScanPairTask:
    """A batch of scan-pair requests plus the pipeline configuration.

    Only decoded messages and configuration cross the process boundary;
    the worker's :class:`BBAlign` (Log-Gabor bank, geometry) stays warm
    across batches.
    """

    requests: tuple[ServiceRequest, ...]
    config: BBAlignConfig | None
    seed: int
    attempt: int = 0


# Per-process warm pipeline, rebuilt only when the config changes.
_ALIGNER = None
_ALIGNER_KEY: str | None = None


def _aligner(config: BBAlignConfig | None):
    global _ALIGNER, _ALIGNER_KEY
    key = repr(config)
    if _ALIGNER is None or key != _ALIGNER_KEY:
        from repro.core.pipeline import BBAlign
        _ALIGNER = BBAlign(config)
        _ALIGNER_KEY = key
    return _ALIGNER


def run_scan_pairs(task: ScanPairTask) -> tuple[int, list, dict]:
    """Evaluate a scan-pair batch; engine-chunk-shaped result.

    The pipeline's contract does the heavy lifting: degenerate *data*
    yields a flagged degraded result, never an exception, so every
    request in the batch maps to a response.  RANSAC randomness spawns
    from ``[seed, request_id, 2]`` — per-request deterministic, so a
    retried batch returns identical poses.
    """
    aligner = _aligner(task.config)
    timings = SweepTimings()
    responses: list[ServiceResponse] = []
    with use_registry(timings.registry):
        for request in task.requests:
            ego = request.ego
            with stage(timings, "scan_pair"):
                result = aligner.recover(
                    ego.cloud, request.other, ego_boxes=ego.boxes,
                    rng=np.random.default_rng(
                        [task.seed, request.request_id, 2]))
            responses.append(ServiceResponse(
                request_id=request.request_id, status="ok",
                success=result.success,
                failure_reason=(result.failure_reason.value
                                if result.failure_reason is not None
                                else None),
                degradation=result.degradation.value,
                inliers_bv=result.inliers_bv,
                inliers_box=result.inliers_box,
                tx=result.transform.tx, ty=result.transform.ty,
                theta=result.transform.theta))
    timings.pairs = len(responses)
    first = task.requests[0].request_id if task.requests else 0
    return first, responses, {"snapshot": timings.to_snapshot(),
                              "spans": []}


def response_for(outcome, request_id: int) -> ServiceResponse:
    """Map a sweep outcome (``PairOutcome`` or ``PairErrorOutcome``)
    onto the wire response for ``request_id``.

    An evaluation that crashed inside the worker (the engine's per-pair
    capture) still produces a response — identity pose, ``success``
    false, the error's taxonomy tag — because a captured error is a
    degraded data point, not a service failure.
    """
    degradation = getattr(outcome, "degradation", None)
    return ServiceResponse(
        request_id=request_id, status="ok",
        success=bool(outcome.success),
        failure_reason=getattr(outcome, "failure_reason", None),
        degradation=degradation,
        inliers_bv=int(getattr(outcome, "inliers_bv", 0)),
        inliers_box=int(getattr(outcome, "inliers_box", 0)),
        tx=float(getattr(outcome, "tx", 0.0)),
        ty=float(getattr(outcome, "ty", 0.0)),
        theta=float(getattr(outcome, "theta", 0.0)))
