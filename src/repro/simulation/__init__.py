"""The V2V4Real-substitute simulation stack.

V2V4Real (the paper's dataset) is real-world data we cannot ship; this
package generates the synthetic equivalent the reproduction runs on:

* :mod:`repro.simulation.world` — procedural street worlds (buildings,
  trees, poles, parked and moving vehicles) in several scenario flavors.
* :mod:`repro.simulation.lidar` — a spinning multi-channel lidar
  ray-caster with range noise, dropout and self-motion distortion.
* :mod:`repro.simulation.scenario` — two-vehicle frame-pair construction
  with ground-truth relative poses and per-vehicle ground-truth boxes.
* :mod:`repro.simulation.dataset` — a frame-pair dataset API with the
  paper's selection rule (pairs sharing at least two commonly observed
  vehicles).
"""

from repro.simulation.dataset import DatasetConfig, FrameRecord, V2VDatasetSim
from repro.simulation.lidar import LidarConfig, simulate_scan
from repro.simulation.scenario import (
    FramePair,
    ScenarioConfig,
    make_frame_pair,
    observe_frame,
)
from repro.simulation.multi import MultiFrame, MultiScenarioConfig, make_multi_frame
from repro.simulation.sequence import DriveSequence, SequenceConfig
from repro.simulation.world import (
    Building,
    Pole,
    SimVehicle,
    Tree,
    WorldConfig,
    WorldModel,
    generate_world,
)

__all__ = [
    "Building",
    "DatasetConfig",
    "DriveSequence",
    "FramePair",
    "FrameRecord",
    "LidarConfig",
    "MultiFrame",
    "MultiScenarioConfig",
    "Pole",
    "ScenarioConfig",
    "SequenceConfig",
    "SimVehicle",
    "Tree",
    "V2VDatasetSim",
    "WorldConfig",
    "WorldModel",
    "generate_world",
    "make_frame_pair",
    "make_multi_frame",
    "observe_frame",
    "simulate_scan",
]
