"""The V2V4Real-substitute dataset API.

V2V4Real contributes 20K frames of real two-vehicle driving; the paper
selects the ~12K frames (6,145 pairs) where the two cars commonly observe
at least two vehicles.  :class:`V2VDatasetSim` reproduces that interface:
a deterministic, lazily-generated sequence of frame pairs spanning a mix
of scenario kinds, inter-vehicle distances and traffic densities, with
the same selection rule applied.

Pairs are generated independently from per-index seeds, so ``dataset[7]``
is identical no matter which other indices were touched — a property the
tests rely on and which makes experiment slices reproducible.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.obs.metrics import counter
from repro.obs.spans import span
from repro.simulation.scenario import FramePair, ScenarioConfig, make_frame_pair
from repro.simulation.world import ScenarioKind, WorldConfig

__all__ = ["DatasetConfig", "FrameRecord", "V2VDatasetSim"]


@dataclass(frozen=True)
class DatasetConfig:
    """Dataset composition.

    Attributes:
        num_pairs: dataset length.
        seed: master seed; per-pair seeds derive from it.
        distance_range: inter-vehicle distances sampled log-uniformly in
            this range (more mass at short range, like real driving).
        scenario_mix: sampling weights per scenario kind.
        min_common_vehicles: the paper's selection rule — keep only pairs
            with at least this many commonly observed vehicles (set 0 to
            disable and emit every generated pair).
        max_attempts: resampling budget per index before relaxing the
            selection rule for that pair.
        base_scenario: template scenario config (lidar models, speeds...).
    """

    num_pairs: int = 100
    seed: int = 2024
    distance_range: tuple[float, float] = (10.0, 100.0)
    scenario_mix: dict[ScenarioKind, float] = field(default_factory=lambda: {
        ScenarioKind.URBAN: 0.35,
        ScenarioKind.SUBURBAN: 0.40,
        ScenarioKind.HIGHWAY: 0.20,
        ScenarioKind.OPEN: 0.05,
    })
    min_common_vehicles: int = 2
    max_attempts: int = 5
    base_scenario: ScenarioConfig = field(default_factory=ScenarioConfig)

    def __post_init__(self) -> None:
        if self.num_pairs < 0:
            raise ValueError("num_pairs must be >= 0")
        lo, hi = self.distance_range
        if not (0 < lo <= hi):
            raise ValueError("distance_range must satisfy 0 < lo <= hi")
        if not self.scenario_mix or any(w < 0 for w in
                                        self.scenario_mix.values()):
            raise ValueError("scenario_mix needs non-negative weights")
        if sum(self.scenario_mix.values()) <= 0:
            raise ValueError("scenario_mix weights must sum to > 0")


@dataclass(frozen=True)
class FrameRecord:
    """A dataset entry: the frame pair plus bookkeeping.

    Attributes:
        index: position in the dataset.
        pair: the generated :class:`FramePair`.
        selected: whether the pair met the common-vehicle selection rule
            (False only when the resampling budget ran out).
    """

    index: int
    pair: FramePair
    selected: bool


class V2VDatasetSim:
    """Deterministic lazily-generated frame-pair dataset.

    Example:
        >>> from repro.simulation import V2VDatasetSim, DatasetConfig
        >>> dataset = V2VDatasetSim(DatasetConfig(num_pairs=5))
        >>> record = dataset[0]          # doctest: +SKIP
        >>> record.pair.gt_relative      # doctest: +SKIP
    """

    def __init__(self, config: DatasetConfig | None = None, *,
                 memoize_records: int = 0) -> None:
        """Args:
            config: dataset composition.
            memoize_records: keep up to this many generated records in a
                bounded LRU memo (0, the default, regenerates on every
                access).  Records are deterministic per index, so
                memoization never changes results — it trades memory
                (a few MB per record) for skipping re-simulation when
                multi-variant studies sweep the same dataset repeatedly.
        """
        self.config = config or DatasetConfig()
        if memoize_records < 0:
            raise ValueError("memoize_records must be >= 0")
        mix = self.config.scenario_mix
        self._kinds = list(mix.keys())
        weights = np.array([mix[k] for k in self._kinds], dtype=float)
        self._weights = weights / weights.sum()
        self._memo_limit = memoize_records
        self._memo: OrderedDict[int, FrameRecord] = OrderedDict()

    def __len__(self) -> int:
        return self.config.num_pairs

    def __iter__(self) -> Iterator[FrameRecord]:
        for index in range(len(self)):
            yield self[index]

    def __getitem__(self, index: int) -> FrameRecord:
        if not (0 <= index < len(self)):
            raise IndexError(f"index {index} out of range "
                             f"[0, {len(self)})")
        if self._memo_limit:
            record = self._memo.get(index)
            if record is not None:
                self._memo.move_to_end(index)
                return record
        record = self._generate(index)
        if self._memo_limit:
            self._memo[index] = record
            while len(self._memo) > self._memo_limit:
                self._memo.popitem(last=False)
        return record

    # ------------------------------------------------------------------
    def _pair_rng(self, index: int, attempt: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.config.seed, index, attempt]))

    def _sample_scenario(self, rng: np.random.Generator) -> ScenarioConfig:
        cfg = self.config
        kind = self._kinds[int(rng.choice(len(self._kinds),
                                          p=self._weights))]
        lo, hi = cfg.distance_range
        distance = float(np.exp(rng.uniform(np.log(lo), np.log(hi))))
        world = replace(cfg.base_scenario.world, kind=kind,
                        override_densities=False)
        return replace(cfg.base_scenario, world=world, distance=distance)

    def _attempt(self, index: int, attempt: int,
                 min_common: int = 0) -> FramePair | None:
        """Generate the pair for one (index, attempt) seed draw.

        ``min_common`` > 0 lets :func:`make_frame_pair` bail out (and
        return None) as soon as the pair is certain to fail the
        selection rule.  Each attempt has an independent generator, so
        the screen never changes which pairs survive or their bytes.
        """
        rng = self._pair_rng(index, attempt)
        scenario = self._sample_scenario(rng)
        return make_frame_pair(scenario, rng, min_common=min_common)

    def _generate(self, index: int) -> FrameRecord:
        cfg = self.config
        pair = None
        with span("sim/generate_pair", index=index):
            for attempt in range(cfg.max_attempts):
                # The final attempt's pair is kept even when it fails the
                # selection rule, so only earlier attempts may be screened.
                screen = (cfg.min_common_vehicles
                          if attempt < cfg.max_attempts - 1 else 0)
                counter("sim/pair_attempts").inc()
                pair = self._attempt(index, attempt, screen)
                if pair is None:
                    counter("sim/pairs_screened").inc()
                    continue
                if (cfg.min_common_vehicles == 0
                        or pair.num_common_vehicles
                        >= cfg.min_common_vehicles):
                    counter("sim/pairs_generated").inc()
                    return FrameRecord(index, pair, True)
            assert pair is not None
            counter("sim/pairs_unselected").inc()
            return FrameRecord(index, pair, False)

    # ------------------------------------------------------------------
    def selection_rate(self, sample: int | None = None) -> float:
        """Fraction of pairs meeting the selection rule on first attempt
        — mirrors the paper's 12K-of-20K usable-frame statistic."""
        cfg = self.config
        n = len(self) if sample is None else min(sample, len(self))
        hits = 0
        for index in range(n):
            pair = self._attempt(index, 0, cfg.min_common_vehicles)
            if (pair is not None
                    and pair.num_common_vehicles >= cfg.min_common_vehicles):
                hits += 1
        return hits / max(n, 1)
