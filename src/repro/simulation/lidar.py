"""Spinning multi-channel lidar simulation.

Models the sensor BB-Align's inputs come from: a 360-degree mechanically
spinning lidar with ``num_channels`` fixed elevation beams.  For every
azimuth step the simulator finds all 2-D ray intersections with world
geometry (building walls, tree trunks/crowns, poles, vehicle sides), then
assigns each elevation channel to the nearest obstacle whose vertical
extent contains the beam at that distance — a faithful, fully occlusion-
aware model of what a real scanner returns, including:

* beams passing *over* low obstacles and hitting structure behind them,
* beams passing *under* tree crowns,
* ground returns for descending beams that clear everything,
* Gaussian range noise and random dropout,
* per-point sweep timestamps, feeding the self-motion-distortion model.

Heights are expressed above ground (not relative to the sensor), so BV
height maps from vehicles with different mounting heights are directly
comparable — the V2V4Real vehicles also calibrate to a common ground
frame.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud, PointLabel
from repro.pointcloud.distortion import MotionState, apply_self_motion_distortion
from repro.simulation.world import WorldModel

__all__ = ["LidarConfig", "simulate_scan"]


@dataclass(frozen=True)
class LidarConfig:
    """Sensor model parameters.

    The defaults approximate the 32-channel sensors of V2V4Real's two
    vehicles; heterogeneous setups (the paper's motivation for avoiding
    3-D registration) are modeled by giving the two cars different
    configs.

    Attributes:
        num_channels: number of elevation beams.
        elevation_min_deg / elevation_max_deg: vertical field of view.
        azimuth_steps: rays per sweep (0.2 deg resolution = 1800).
        max_range: maximum return distance (meters, horizontal).
        range_noise: Gaussian sigma on the measured range (meters).
        dropout: probability a return is lost.
        sensor_height: mounting height above ground.
        include_ground: emit ground returns for descending beams.
        max_hits_per_ray: occlusion depth considered per azimuth.
        scan_duration: sweep period in seconds (for distortion).
    """

    num_channels: int = 32
    elevation_min_deg: float = -25.0
    elevation_max_deg: float = 15.0
    azimuth_steps: int = 1800
    max_range: float = 100.0
    range_noise: float = 0.03
    dropout: float = 0.05
    sensor_height: float = 1.9
    include_ground: bool = True
    max_hits_per_ray: int = 12
    scan_duration: float = 0.1

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.azimuth_steps < 4:
            raise ValueError("need at least 1 channel and 4 azimuth steps")
        if self.elevation_min_deg >= self.elevation_max_deg:
            raise ValueError("elevation_min_deg must be < elevation_max_deg")
        if self.max_range <= 0 or self.sensor_height <= 0:
            raise ValueError("max_range and sensor_height must be positive")
        if not (0 <= self.dropout < 1):
            raise ValueError("dropout must be in [0, 1)")

    @property
    def elevations(self) -> np.ndarray:
        """Channel elevation angles in radians (ascending)."""
        return np.deg2rad(np.linspace(self.elevation_min_deg,
                                      self.elevation_max_deg,
                                      self.num_channels))


def _world_obstacles(world: WorldModel, sensor_pose: SE2):
    """Collect obstacle geometry in the sensor frame.

    Returns:
        segments: (S, 2, 2) wall/side segments with metadata arrays
            ``seg_zmin, seg_zmax, seg_label``.
        circles: (C, 3) as (x, y, radius) with ``circ_zmin, circ_zmax,
            circ_label``.
    """
    inv = sensor_pose.inverse()

    segments, seg_zmin, seg_zmax, seg_label = [], [], [], []
    for building in world.buildings:
        walls = building.wall_segments()
        flat = walls.reshape(-1, 2)
        flat = inv.apply(flat).reshape(-1, 2, 2)
        for wall in flat:
            segments.append(wall)
            seg_zmin.append(0.0)
            seg_zmax.append(building.height)
            seg_label.append(int(PointLabel.BUILDING))
    for vehicle in world.vehicles:
        corners = inv.apply(vehicle.box.to_bev().corners())
        for k in range(4):
            segments.append(np.stack([corners[k], corners[(k + 1) % 4]]))
            seg_zmin.append(0.0)
            seg_zmax.append(vehicle.box.height)
            seg_label.append(int(PointLabel.VEHICLE))

    circles, circ_zmin, circ_zmax, circ_label = [], [], [], []
    for tree in world.trees:
        center = inv.apply(np.array([tree.x, tree.y]))
        circles.append([center[0], center[1], tree.trunk_radius])
        circ_zmin.append(0.0)
        circ_zmax.append(tree.crown_base)
        circ_label.append(int(PointLabel.TREE))
        circles.append([center[0], center[1], tree.crown_radius])
        circ_zmin.append(tree.crown_base)
        circ_zmax.append(tree.height)
        circ_label.append(int(PointLabel.TREE))
    for pole in world.poles:
        center = inv.apply(np.array([pole.x, pole.y]))
        circles.append([center[0], center[1], pole.radius])
        circ_zmin.append(0.0)
        circ_zmax.append(pole.height)
        circ_label.append(int(PointLabel.POLE))

    segments = (np.asarray(segments) if segments else np.empty((0, 2, 2)))
    circles = (np.asarray(circles) if circles else np.empty((0, 3)))
    return (segments, np.asarray(seg_zmin), np.asarray(seg_zmax),
            np.asarray(seg_label, dtype=np.int32),
            circles, np.asarray(circ_zmin), np.asarray(circ_zmax),
            np.asarray(circ_label, dtype=np.int32))


def _ray_segment_hits(directions: np.ndarray, segments: np.ndarray,
                      max_range: float):
    """All (ray, segment) intersections.

    Rays start at the origin.  Returns flat arrays
    ``(ray_index, t, segment_index)`` for hits with ``0 < t <= max_range``.
    """
    if len(segments) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    p0 = segments[:, 0]                      # (S, 2)
    edge = segments[:, 1] - segments[:, 0]   # (S, 2)
    d = directions                           # (A, 2)
    # Solve o + t d = p0 + u e for each (ray, segment) pair.
    denom = d[:, None, 0] * edge[None, :, 1] - d[:, None, 1] * edge[None, :, 0]
    with np.errstate(divide="ignore", invalid="ignore"):
        v = p0[None, :, :]                   # (1, S, 2) since origin = 0
        t = (v[..., 0] * edge[None, :, 1] - v[..., 1] * edge[None, :, 0]) / denom
        u = (v[..., 0] * d[:, None, 1] - v[..., 1] * d[:, None, 0]) / denom
    valid = (np.abs(denom) > 1e-12) & (t > 1e-6) & (t <= max_range) \
        & (u >= 0.0) & (u <= 1.0)
    ray_idx, seg_idx = np.nonzero(valid)
    return ray_idx, t[ray_idx, seg_idx], seg_idx


def _ray_circle_hits(directions: np.ndarray, circles: np.ndarray,
                     max_range: float):
    """Nearest entry intersection of each ray with each circle."""
    if len(circles) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    centers = circles[:, :2]                 # (C, 2)
    radii = circles[:, 2]                    # (C,)
    d = directions                           # (A, 2)
    # |t d - c|^2 = r^2  ->  t^2 - 2 t (d.c) + |c|^2 - r^2 = 0.
    b = d @ centers.T                        # (A, C) = d.c
    c_term = np.sum(centers ** 2, axis=1) - radii ** 2  # (C,)
    disc = b ** 2 - c_term[None, :]
    valid = disc >= 0
    sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
    t = b - sqrt_disc                        # entry point
    # If entry is behind the origin but exit ahead, the origin is inside
    # the circle; use the exit point.
    t_exit = b + sqrt_disc
    t = np.where(t > 1e-6, t, t_exit)
    valid &= (t > 1e-6) & (t <= max_range)
    ray_idx, circ_idx = np.nonzero(valid)
    return ray_idx, t[ray_idx, circ_idx], circ_idx


def simulate_scan(world: WorldModel, sensor_pose: SE2,
                  config: LidarConfig | None = None,
                  rng: np.random.Generator | int | None = None,
                  motion: MotionState | None = None) -> PointCloud:
    """Simulate one full lidar sweep.

    Args:
        world: the static world (world coordinates).
        sensor_pose: the sensor's planar pose in world coordinates; the
            returned cloud is in the *sensor frame* (x forward).
        config: sensor model.
        rng: randomness for noise/dropout.
        motion: when given, self-motion distortion for this twist is
            applied to the scan (the sweep reference is its start).

    Returns:
        A :class:`PointCloud` with heights above ground, per-point sweep
        timestamps and semantic labels.
    """
    config = config or LidarConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    (segments, seg_zmin, seg_zmax, seg_label,
     circles, circ_zmin, circ_zmax, circ_label) = _world_obstacles(
        world, sensor_pose)

    n_az = config.azimuth_steps
    azimuths = -np.pi + 2.0 * np.pi * (np.arange(n_az) + 0.5) / n_az
    directions = np.stack([np.cos(azimuths), np.sin(azimuths)], axis=1)

    s_ray, s_t, s_idx = _ray_segment_hits(directions, segments,
                                          config.max_range)
    c_ray, c_t, c_idx = _ray_circle_hits(directions, circles,
                                         config.max_range)

    ray_idx = np.concatenate([s_ray, c_ray])
    t_hit = np.concatenate([s_t, c_t])
    zmin = np.concatenate([seg_zmin[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmin[c_idx] if len(c_idx) else np.empty(0)])
    zmax = np.concatenate([seg_zmax[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmax[c_idx] if len(c_idx) else np.empty(0)])
    labels = np.concatenate([seg_label[s_idx] if len(s_idx) else
                             np.empty(0, dtype=np.int32),
                             circ_label[c_idx] if len(c_idx) else
                             np.empty(0, dtype=np.int32)])

    elevations = config.elevations
    tan_elev = np.tan(elevations)
    n_ch = config.num_channels
    assigned = np.zeros((n_az, n_ch), dtype=bool)
    out_t = np.zeros((n_az, n_ch))
    out_z = np.zeros((n_az, n_ch))
    out_label = np.zeros((n_az, n_ch), dtype=np.int32)

    if len(ray_idx):
        # Occlusion: process hits per ray in increasing distance.
        order = np.lexsort((t_hit, ray_idx))
        ray_idx, t_hit = ray_idx[order], t_hit[order]
        zmin, zmax, labels = zmin[order], zmax[order], labels[order]
        # Rank of each hit within its ray.
        is_new_ray = np.empty(len(ray_idx), dtype=bool)
        is_new_ray[0] = True
        is_new_ray[1:] = ray_idx[1:] != ray_idx[:-1]
        group_start = np.maximum.accumulate(
            np.where(is_new_ray, np.arange(len(ray_idx)), 0))
        ranks = np.arange(len(ray_idx)) - group_start

        max_rank = min(int(ranks.max()) + 1, config.max_hits_per_ray)
        for rank in range(max_rank):
            sel = ranks == rank
            if not sel.any():
                break
            rays = ray_idx[sel]
            ts = t_hit[sel]
            z_beam = config.sensor_height + ts[:, None] * tan_elev[None, :]
            hit = ((z_beam >= zmin[sel][:, None])
                   & (z_beam <= zmax[sel][:, None])
                   & ~assigned[rays])
            rows, cols = np.nonzero(hit)
            assigned[rays[rows], cols] = True
            out_t[rays[rows], cols] = ts[rows]
            out_z[rays[rows], cols] = z_beam[rows, cols]
            out_label[rays[rows], cols] = labels[sel][rows]

    if config.include_ground:
        descending = tan_elev < 0
        t_ground = np.full(n_ch, np.inf)
        t_ground[descending] = config.sensor_height / -tan_elev[descending]
        ground_ok = (~assigned) & (t_ground[None, :] <= config.max_range)
        rows, cols = np.nonzero(ground_ok)
        assigned[rows, cols] = True
        out_t[rows, cols] = t_ground[cols]
        out_z[rows, cols] = 0.0
        out_label[rows, cols] = int(PointLabel.GROUND)

    rows, cols = np.nonzero(assigned)
    if len(rows) == 0:
        return PointCloud.empty()
    t_final = out_t[rows, cols]
    z_final = out_z[rows, cols]

    # Range noise along the beam; horizontal and vertical components
    # scale together.
    noise = rng.normal(0.0, config.range_noise, size=len(rows))
    cos_e = np.cos(elevations[cols])
    t_noisy = t_final + noise * cos_e
    z_noisy = z_final + noise * np.sin(elevations[cols])

    points = np.stack([
        t_noisy * np.cos(azimuths[rows]),
        t_noisy * np.sin(azimuths[rows]),
        z_noisy,
    ], axis=1)
    timestamps = (azimuths[rows] + np.pi) / (2.0 * np.pi)
    point_labels = out_label[rows, cols]

    if config.dropout > 0:
        keep = rng.random(len(points)) >= config.dropout
        points, timestamps = points[keep], timestamps[keep]
        point_labels = point_labels[keep]

    cloud = PointCloud(points, timestamps, point_labels)
    if motion is not None:
        cloud = apply_self_motion_distortion(cloud, motion,
                                             config.scan_duration)
    return cloud
