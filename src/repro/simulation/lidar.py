"""Spinning multi-channel lidar simulation.

Models the sensor BB-Align's inputs come from: a 360-degree mechanically
spinning lidar with ``num_channels`` fixed elevation beams.  For every
azimuth step the simulator finds all 2-D ray intersections with world
geometry (building walls, tree trunks/crowns, poles, vehicle sides), then
assigns each elevation channel to the nearest obstacle whose vertical
extent contains the beam at that distance — a faithful, fully occlusion-
aware model of what a real scanner returns, including:

* beams passing *over* low obstacles and hitting structure behind them,
* beams passing *under* tree crowns,
* ground returns for descending beams that clear everything,
* Gaussian range noise and random dropout,
* per-point sweep timestamps, feeding the self-motion-distortion model.

Heights are expressed above ground (not relative to the sensor), so BV
height maps from vehicles with different mounting heights are directly
comparable — the V2V4Real vehicles also calibrate to a common ground
frame.

Implementation note — the production path is a vectorized rework of the
original simulator, kept as ``_reference_*`` twins in this module (see
CONTRIBUTING.md).  The rework is *bit-identical*: static world geometry
is cached on :class:`~repro.simulation.world.WorldModel` and transformed
with stacked matmuls that reproduce the per-object ``SE2.apply`` results
exactly; ray casting only evaluates sector-culled candidate pairs but
with the reference's elementwise formulas, so the accepted hit set — and
therefore every noise/dropout RNG draw and output byte — is unchanged.
``tests/test_sim_equivalence.py`` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud, PointLabel
from repro.pointcloud.distortion import (
    MotionState,
    _pose_batch,
    apply_self_motion_distortion,
)
from repro.simulation.world import WorldModel

__all__ = ["LidarConfig", "simulate_scan"]


@dataclass(frozen=True)
class LidarConfig:
    """Sensor model parameters.

    The defaults approximate the 32-channel sensors of V2V4Real's two
    vehicles; heterogeneous setups (the paper's motivation for avoiding
    3-D registration) are modeled by giving the two cars different
    configs.

    Attributes:
        num_channels: number of elevation beams.
        elevation_min_deg / elevation_max_deg: vertical field of view.
        azimuth_steps: rays per sweep (0.2 deg resolution = 1800).
        max_range: maximum return distance (meters, horizontal).
        range_noise: Gaussian sigma on the measured range (meters).
        dropout: probability a return is lost.
        sensor_height: mounting height above ground.
        include_ground: emit ground returns for descending beams.
        max_hits_per_ray: occlusion depth considered per azimuth.
        scan_duration: sweep period in seconds (for distortion).
    """

    num_channels: int = 32
    elevation_min_deg: float = -25.0
    elevation_max_deg: float = 15.0
    azimuth_steps: int = 1800
    max_range: float = 100.0
    range_noise: float = 0.03
    dropout: float = 0.05
    sensor_height: float = 1.9
    include_ground: bool = True
    max_hits_per_ray: int = 12
    scan_duration: float = 0.1

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.azimuth_steps < 4:
            raise ValueError("need at least 1 channel and 4 azimuth steps")
        if self.elevation_min_deg >= self.elevation_max_deg:
            raise ValueError("elevation_min_deg must be < elevation_max_deg")
        if self.max_range <= 0 or self.sensor_height <= 0:
            raise ValueError("max_range and sensor_height must be positive")
        if not (0 <= self.dropout < 1):
            raise ValueError("dropout must be in [0, 1)")

    @property
    def elevations(self) -> np.ndarray:
        """Channel elevation angles in radians (ascending)."""
        return np.deg2rad(np.linspace(self.elevation_min_deg,
                                      self.elevation_max_deg,
                                      self.num_channels))


def _world_obstacles(world: WorldModel, sensor_pose: SE2):
    """Collect obstacle geometry in the sensor frame.

    Static objects come from the world's cached geometry and are moved
    into the sensor frame with one stacked transform per array; only the
    (few, dynamic) vehicles are still gathered per object.  The stacked
    ``(N, k, 2) @ (2, 2)`` matmuls run the same per-slice GEMM as the
    reference's per-object ``SE2.apply`` calls, so every coordinate is
    bit-identical to :func:`_reference_world_obstacles`.

    Returns:
        segments: (S, 2, 2) wall/side segments with metadata arrays
            ``seg_zmin, seg_zmax, seg_label``.
        circles: (C, 3) as (x, y, radius) with ``circ_zmin, circ_zmax,
            circ_label``.
    """
    static = world.static_geometry()
    inv = sensor_pose.inverse()
    rot_t = inv.rotation.T
    trans = inv.translation

    parts = []
    if len(static.wall_points):
        walls = (static.wall_points @ rot_t + trans).reshape(-1, 2, 2)
        parts.append(walls)
    vehicles = world.vehicles
    if vehicles:
        corners = np.stack([v.box.to_bev().corners() for v in vehicles])
        corners = corners @ rot_t + trans                     # (V, 4, 2)
        sides = np.stack([corners, np.roll(corners, -1, axis=1)], axis=2)
        parts.append(sides.reshape(-1, 2, 2))
    if parts:
        segments = parts[0] if len(parts) == 1 else np.concatenate(parts)
    else:
        segments = np.empty((0, 2, 2))
    seg_zmin = np.zeros(len(segments))
    if vehicles:
        veh_zmax = np.repeat(np.array([v.box.height for v in vehicles]), 4)
        seg_zmax = np.concatenate([static.wall_zmax, veh_zmax])
        seg_label = np.concatenate([
            static.wall_label,
            np.full(4 * len(vehicles), int(PointLabel.VEHICLE),
                    dtype=np.int32)])
    else:
        seg_zmax = static.wall_zmax
        seg_label = static.wall_label

    if len(static.circle_points):
        centers = (static.circle_points @ rot_t + trans)[:, 0]  # (C, 2)
        circles = np.concatenate([centers, static.circle_radii[:, None]],
                                 axis=1)
    else:
        circles = np.empty((0, 3))
    return (segments, seg_zmin, seg_zmax, seg_label,
            circles, static.circ_zmin, static.circ_zmax, static.circ_label)


def _reference_world_obstacles(world: WorldModel, sensor_pose: SE2):
    """Pre-rework :func:`_world_obstacles`: per-object Python loops.

    Kept as the behavioral specification for the cached/stacked fast
    path (bit-identical contract).
    """
    inv = sensor_pose.inverse()

    segments, seg_zmin, seg_zmax, seg_label = [], [], [], []
    for building in world.buildings:
        walls = building.wall_segments()
        flat = walls.reshape(-1, 2)
        flat = inv.apply(flat).reshape(-1, 2, 2)
        for wall in flat:
            segments.append(wall)
            seg_zmin.append(0.0)
            seg_zmax.append(building.height)
            seg_label.append(int(PointLabel.BUILDING))
    for vehicle in world.vehicles:
        corners = inv.apply(vehicle.box.to_bev().corners())
        for k in range(4):
            segments.append(np.stack([corners[k], corners[(k + 1) % 4]]))
            seg_zmin.append(0.0)
            seg_zmax.append(vehicle.box.height)
            seg_label.append(int(PointLabel.VEHICLE))

    circles, circ_zmin, circ_zmax, circ_label = [], [], [], []
    for tree in world.trees:
        center = inv.apply(np.array([tree.x, tree.y]))
        circles.append([center[0], center[1], tree.trunk_radius])
        circ_zmin.append(0.0)
        circ_zmax.append(tree.crown_base)
        circ_label.append(int(PointLabel.TREE))
        circles.append([center[0], center[1], tree.crown_radius])
        circ_zmin.append(tree.crown_base)
        circ_zmax.append(tree.height)
        circ_label.append(int(PointLabel.TREE))
    for pole in world.poles:
        center = inv.apply(np.array([pole.x, pole.y]))
        circles.append([center[0], center[1], pole.radius])
        circ_zmin.append(0.0)
        circ_zmax.append(pole.height)
        circ_label.append(int(PointLabel.POLE))

    segments = (np.asarray(segments) if segments else np.empty((0, 2, 2)))
    circles = (np.asarray(circles) if circles else np.empty((0, 3)))
    return (segments, np.asarray(seg_zmin), np.asarray(seg_zmax),
            np.asarray(seg_label, dtype=np.int32),
            circles, np.asarray(circ_zmin), np.asarray(circ_zmax),
            np.asarray(circ_label, dtype=np.int32))


def _candidate_pairs(i_lo: np.ndarray, counts: np.ndarray, keep: np.ndarray,
                     n_az: int):
    """Expand per-obstacle ray windows into flat (ray, obstacle) pairs.

    ``i_lo``/``counts`` give each obstacle's candidate azimuth-index
    window (start, length, wrapping modulo ``n_az``); ``keep`` masks the
    obstacles worth testing.  Pairs come out obstacle-major with rays
    ascending inside each window.
    """
    obs_sel = np.nonzero(keep)[0]
    counts = counts[obs_sel]
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    starts = np.cumsum(counts) - counts
    flat_obs = np.repeat(obs_sel, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    flat_ray = (np.repeat(i_lo[obs_sel], counts) + offsets) % n_az
    return flat_ray, flat_obs


def _ray_segment_hits(directions: np.ndarray, segments: np.ndarray,
                      max_range: float):
    """All (ray, segment) intersections, sector-culled.

    Rays start at the origin.  Returns flat arrays
    ``(ray_index, t, segment_index)`` for hits with ``0 < t <= max_range``,
    in the reference's (ray-major, segment-minor) order.

    Precondition: ``directions`` lie on :func:`simulate_scan`'s uniform
    CCW azimuth grid ``-pi + 2 pi (i + 0.5) / A`` — the culling exploits
    that structure.  Each segment can only be hit by rays inside the
    azimuth arc spanned by its endpoints (padded by one ray step for
    rounding) and only if its closest approach to the origin is within
    range; the exact intersection test then runs on those candidate pairs
    with the same elementwise arithmetic as the reference's dense
    ``(A, S)`` broadcast, so the surviving hit set is bit-identical.
    """
    n_seg = len(segments)
    if n_seg == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    n_az = len(directions)
    step = 2.0 * np.pi / n_az
    p0 = segments[:, 0]                      # (S, 2)
    edge = segments[:, 1] - segments[:, 0]   # (S, 2)

    # Near-distance cull: closest approach of each segment to the origin.
    ee = edge[:, 0] ** 2 + edge[:, 1] ** 2
    with np.errstate(divide="ignore", invalid="ignore"):
        tproj = -(p0[:, 0] * edge[:, 0] + p0[:, 1] * edge[:, 1]) / ee
    tproj = np.clip(np.nan_to_num(tproj), 0.0, 1.0)
    nearest = p0 + tproj[:, None] * edge
    near_d = np.hypot(nearest[:, 0], nearest[:, 1])
    keep = near_d <= max_range + 1e-6

    # Azimuth window: the arc between the endpoint azimuths, the short
    # way around (a segment not through the origin subtends < pi).
    az0 = np.arctan2(p0[:, 1], p0[:, 0])
    p1 = segments[:, 1]
    az1 = np.arctan2(p1[:, 1], p1[:, 0])
    delta = (az1 - az0 + np.pi) % (2.0 * np.pi) - np.pi  # [-pi, pi)
    lo = np.where(delta >= 0.0, az0, az1)
    width = np.abs(delta)
    i_lo = np.floor((lo + np.pi) / step - 0.5).astype(np.int64) - 1
    i_hi = np.ceil((lo + width + np.pi) / step - 0.5).astype(np.int64) + 1
    counts = i_hi - i_lo + 1
    # Segments passing (numerically) through the origin subtend two
    # opposite arcs; give them every ray rather than reason about it.
    full = (near_d < 1e-3) | (counts >= n_az)
    counts = np.where(full, n_az, counts)
    i_lo = np.where(full, 0, i_lo)

    flat_ray, flat_seg = _candidate_pairs(i_lo, counts, keep, n_az)
    if len(flat_ray) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))

    # Exact test — identical elementwise arithmetic to the reference
    # broadcast, evaluated only on the candidate pairs.
    dx = directions[flat_ray, 0]
    dy = directions[flat_ray, 1]
    ex = edge[flat_seg, 0]
    ey = edge[flat_seg, 1]
    px = p0[flat_seg, 0]
    py = p0[flat_seg, 1]
    denom = dx * ey - dy * ex
    with np.errstate(divide="ignore", invalid="ignore"):
        t = (px * ey - py * ex) / denom
        u = (px * dy - py * dx) / denom
    valid = (np.abs(denom) > 1e-12) & (t > 1e-6) & (t <= max_range) \
        & (u >= 0.0) & (u <= 1.0)
    hit = np.nonzero(valid)[0]
    ray_h, seg_h, t_h = flat_ray[hit], flat_seg[hit], t[hit]
    order = np.lexsort((seg_h, ray_h))       # reference row-major order
    return ray_h[order], t_h[order], seg_h[order]


def _reference_ray_segment_hits(directions: np.ndarray, segments: np.ndarray,
                                max_range: float):
    """Pre-rework :func:`_ray_segment_hits`: the dense (A, S) broadcast.

    Kept as the behavioral specification for the sector-culled fast path
    (bit-identical contract).
    """
    if len(segments) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    p0 = segments[:, 0]                      # (S, 2)
    edge = segments[:, 1] - segments[:, 0]   # (S, 2)
    d = directions                           # (A, 2)
    # Solve o + t d = p0 + u e for each (ray, segment) pair.
    denom = d[:, None, 0] * edge[None, :, 1] - d[:, None, 1] * edge[None, :, 0]
    with np.errstate(divide="ignore", invalid="ignore"):
        v = p0[None, :, :]                   # (1, S, 2) since origin = 0
        t = (v[..., 0] * edge[None, :, 1] - v[..., 1] * edge[None, :, 0]) / denom
        u = (v[..., 0] * d[:, None, 1] - v[..., 1] * d[:, None, 0]) / denom
    valid = (np.abs(denom) > 1e-12) & (t > 1e-6) & (t <= max_range) \
        & (u >= 0.0) & (u <= 1.0)
    ray_idx, seg_idx = np.nonzero(valid)
    return ray_idx, t[ray_idx, seg_idx], seg_idx


def _ray_circle_hits(directions: np.ndarray, circles: np.ndarray,
                     max_range: float):
    """Nearest entry intersection of each ray with each circle, culled.

    Same grid precondition as :func:`_ray_segment_hits`.  The ``d . c``
    projection stays a full dense GEMM — BLAS results are not stable
    under input gathering, and its bits feed straight into the hit
    distances — but the quadratic tail (discriminant, sqrt, entry/exit
    selection) runs only on pairs inside each circle's azimuth window.
    """
    n_circ = len(circles)
    if n_circ == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    n_az = len(directions)
    step = 2.0 * np.pi / n_az
    centers = circles[:, :2]                 # (C, 2)
    radii = circles[:, 2]                    # (C,)
    b_full = directions @ centers.T          # (A, C) = d.c (dense, exact)

    dist_c = np.hypot(centers[:, 0], centers[:, 1])
    keep = dist_c - radii <= max_range + 1e-6
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = radii / dist_c
    half = np.arcsin(np.clip(np.nan_to_num(ratio, nan=1.0, posinf=1.0),
                             0.0, 1.0))
    az_c = np.arctan2(centers[:, 1], centers[:, 0])
    i_lo = np.floor((az_c - half + np.pi) / step - 0.5).astype(np.int64) - 1
    i_hi = np.ceil((az_c + half + np.pi) / step - 0.5).astype(np.int64) + 1
    counts = i_hi - i_lo + 1
    full = (dist_c <= radii) | (counts >= n_az)  # origin inside: all rays
    counts = np.where(full, n_az, counts)
    i_lo = np.where(full, 0, i_lo)

    flat_ray, flat_circ = _candidate_pairs(i_lo, counts, keep, n_az)
    if len(flat_ray) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))

    b = b_full[flat_ray, flat_circ]
    c_term = np.sum(centers ** 2, axis=1) - radii ** 2  # (C,)
    disc = b ** 2 - c_term[flat_circ]
    valid = disc >= 0
    sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
    t = b - sqrt_disc                        # entry point
    t_exit = b + sqrt_disc
    t = np.where(t > 1e-6, t, t_exit)
    valid &= (t > 1e-6) & (t <= max_range)
    hit = np.nonzero(valid)[0]
    ray_h, circ_h, t_h = flat_ray[hit], flat_circ[hit], t[hit]
    order = np.lexsort((circ_h, ray_h))      # reference row-major order
    return ray_h[order], t_h[order], circ_h[order]


def _reference_ray_circle_hits(directions: np.ndarray, circles: np.ndarray,
                               max_range: float):
    """Pre-rework :func:`_ray_circle_hits`: the dense (A, C) evaluation.

    Kept as the behavioral specification for the sector-culled fast path
    (bit-identical contract).
    """
    if len(circles) == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0),
                np.empty(0, dtype=np.int64))
    centers = circles[:, :2]                 # (C, 2)
    radii = circles[:, 2]                    # (C,)
    d = directions                           # (A, 2)
    # |t d - c|^2 = r^2  ->  t^2 - 2 t (d.c) + |c|^2 - r^2 = 0.
    b = d @ centers.T                        # (A, C) = d.c
    c_term = np.sum(centers ** 2, axis=1) - radii ** 2  # (C,)
    disc = b ** 2 - c_term[None, :]
    valid = disc >= 0
    sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
    t = b - sqrt_disc                        # entry point
    # If entry is behind the origin but exit ahead, the origin is inside
    # the circle; use the exit point.
    t_exit = b + sqrt_disc
    t = np.where(t > 1e-6, t, t_exit)
    valid &= (t > 1e-6) & (t <= max_range)
    ray_idx, circ_idx = np.nonzero(valid)
    return ray_idx, t[ray_idx, circ_idx], circ_idx


def simulate_scan(world: WorldModel, sensor_pose: SE2,
                  config: LidarConfig | None = None,
                  rng: np.random.Generator | int | None = None,
                  motion: MotionState | None = None) -> PointCloud:
    """Simulate one full lidar sweep.

    Args:
        world: the static world (world coordinates).
        sensor_pose: the sensor's planar pose in world coordinates; the
            returned cloud is in the *sensor frame* (x forward).
        config: sensor model.
        rng: randomness for noise/dropout.
        motion: when given, self-motion distortion for this twist is
            applied to the scan (the sweep reference is its start).

    Returns:
        A :class:`PointCloud` with heights above ground, per-point sweep
        timestamps and semantic labels.  Byte-identical to
        :func:`_reference_simulate_scan` for every input.
    """
    config = config or LidarConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    (segments, seg_zmin, seg_zmax, seg_label,
     circles, circ_zmin, circ_zmax, circ_label) = _world_obstacles(
        world, sensor_pose)

    n_az = config.azimuth_steps
    azimuths = -np.pi + 2.0 * np.pi * (np.arange(n_az) + 0.5) / n_az
    cos_az = np.cos(azimuths)
    sin_az = np.sin(azimuths)
    directions = np.stack([cos_az, sin_az], axis=1)

    s_ray, s_t, s_idx = _ray_segment_hits(directions, segments,
                                          config.max_range)
    c_ray, c_t, c_idx = _ray_circle_hits(directions, circles,
                                         config.max_range)

    ray_idx = np.concatenate([s_ray, c_ray])
    t_hit = np.concatenate([s_t, c_t])
    zmin = np.concatenate([seg_zmin[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmin[c_idx] if len(c_idx) else np.empty(0)])
    zmax = np.concatenate([seg_zmax[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmax[c_idx] if len(c_idx) else np.empty(0)])
    labels = np.concatenate([seg_label[s_idx] if len(s_idx) else
                             np.empty(0, dtype=np.int32),
                             circ_label[c_idx] if len(c_idx) else
                             np.empty(0, dtype=np.int32)])

    elevations = config.elevations
    tan_elev = np.tan(elevations)
    n_ch = config.num_channels
    # Winning (hit, channel) pair index per grid cell, -1 = no obstacle
    # return.  Replaces the reference's dense out_t / out_z / out_label
    # grids: one index scatter instead of three value scatters, with the
    # values gathered only for the points that survive dropout.
    first = np.full(n_az * n_ch, -1, dtype=np.int64)
    t_pair = z_pair_hit = label_pair = None

    if len(ray_idx):
        # Occlusion: sort hits per ray by increasing distance, then make
        # one first-fit assignment pass over (ray, channel) — each beam
        # takes the nearest in-depth hit whose vertical extent contains
        # it.  Equivalent to the reference's per-rank loop: within a ray
        # the hits are rank-ordered, so "first occurrence of a (ray,
        # channel) key" is exactly "lowest rank that contains the beam".
        # The distances sort by their int64 bit patterns — positive IEEE
        # doubles are order-isomorphic to them, and integer keys take
        # numpy's radix path.
        order = np.lexsort((t_hit.view(np.int64), ray_idx))
        ray_idx, t_hit = ray_idx[order], t_hit[order]
        zmin, zmax, labels = zmin[order], zmax[order], labels[order]
        is_new_ray = np.empty(len(ray_idx), dtype=bool)
        is_new_ray[0] = True
        is_new_ray[1:] = ray_idx[1:] != ray_idx[:-1]
        group_start = np.maximum.accumulate(
            np.where(is_new_ray, np.arange(len(ray_idx)), 0))
        ranks = np.arange(len(ray_idx)) - group_start

        depth = ranks < config.max_hits_per_ray
        ray_d = ray_idx[depth]
        t_d = t_hit[depth]
        zmin_d = zmin[depth]
        zmax_d = zmax[depth]
        label_d = labels[depth]
        n_d = len(ray_d)

        # Containment test z(t) = h + t tan(e) in [zmin, zmax].  When
        # the channels are monotone in tan(e) (always, for a field of
        # view inside (-90, 90) degrees) the contained channels of each
        # hit form a contiguous window; locate it with searchsorted, pad
        # one channel for division rounding, and run the reference's
        # exact comparison only on the windowed pairs.  Otherwise fall
        # back to the dense (hits, channels) mask.
        if n_d and np.all(np.diff(tan_elev) >= 0.0):
            with np.errstate(divide="ignore", invalid="ignore"):
                lo_val = (zmin_d - config.sensor_height) / t_d
                hi_val = (zmax_d - config.sensor_height) / t_d
            c_lo = np.searchsorted(tan_elev, lo_val, side="left") - 1
            c_hi = np.searchsorted(tan_elev, hi_val, side="right") + 1
            np.clip(c_lo, 0, n_ch, out=c_lo)
            np.clip(c_hi, 0, n_ch, out=c_hi)
            counts = np.maximum(c_hi - c_lo, 0)
            total = int(counts.sum())
            starts = np.cumsum(counts) - counts
            pair_hit = np.repeat(np.arange(n_d), counts)
            pair_col = (np.arange(total, dtype=np.int64)
                        - np.repeat(starts - c_lo, counts))
            z_pair = (config.sensor_height
                      + t_d[pair_hit] * tan_elev[pair_col])
            ok = ((z_pair >= zmin_d[pair_hit])
                  & (z_pair <= zmax_d[pair_hit]))
            hit_rows = pair_hit[ok]
            hit_cols = pair_col[ok]
            z_hit = z_pair[ok]
        elif n_d:
            z_beam = config.sensor_height + t_d[:, None] * tan_elev[None, :]
            contains = ((z_beam >= zmin_d[:, None])
                        & (z_beam <= zmax_d[:, None]))
            hit_rows, hit_cols = np.nonzero(contains)
            z_hit = z_beam[hit_rows, hit_cols]
        else:
            hit_rows = np.empty(0, dtype=np.int64)
            hit_cols = hit_rows
            z_hit = np.empty(0)
        if len(hit_rows):
            # (hit, channel) pairs are hit-major = rank-ordered within
            # each ray, so the FIRST occurrence of each flat (ray,
            # channel) key must win.  Fancy assignment keeps the LAST
            # write for duplicate indices; scatter in reverse order.
            keys = ray_d[hit_rows] * n_ch + hit_cols
            first[np.ascontiguousarray(keys[::-1])] = np.arange(
                len(keys) - 1, -1, -1)
            t_pair = t_d.take(hit_rows)
            z_pair_hit = z_hit
            label_pair = label_d.take(hit_rows)

    if config.include_ground:
        descending = tan_elev < 0
        t_ground = np.full(n_ch, np.inf)
        t_ground[descending] = config.sensor_height / -tan_elev[descending]
        ground_row = t_ground <= config.max_range           # (n_ch,)
        assigned = ((first >= 0).reshape(n_az, n_ch)
                    | ground_row[None, :])
    else:
        assigned = first >= 0

    flat = np.flatnonzero(assigned)
    if len(flat) == 0:
        return PointCloud.empty()

    # Noise and dropout draws happen at the reference's stream positions
    # (full-size normal, then full-size uniform); the surviving subset is
    # known before assembly, so the cloud is only ever built at its final
    # size.  All trig is evaluated once on the azimuth / elevation grids
    # and gathered per point (same bits: np.cos/np.sin are value-
    # deterministic, and the grid cosines ARE ``directions``).  Gathers
    # run on flat indices into contiguous 1-D arrays — same elements as
    # the reference's ``[rows, cols]`` pairs, minus the 2-D indexing.
    noise = rng.normal(0.0, config.range_noise, size=len(flat))
    if config.dropout > 0:
        keep = rng.random(len(flat)) >= config.dropout
        flat, noise = flat[keep], noise[keep]
    rows = flat // n_ch
    cols = flat - rows * n_ch
    # Per-point values, resolved through the winning pair index (ground
    # cells have index -1: range from the per-channel ground table,
    # height 0, GROUND label — the reference's grid held the same).
    if t_pair is None:
        t_final = t_ground.take(cols)
        z_final = np.zeros(len(flat))
        point_labels = np.full(len(flat), int(PointLabel.GROUND),
                               dtype=np.int32)
    elif config.include_ground:
        sel = first.take(flat)
        is_hit = sel >= 0
        sel0 = np.where(is_hit, sel, 0)
        t_final = np.where(is_hit, t_pair.take(sel0), t_ground.take(cols))
        z_final = np.where(is_hit, z_pair_hit.take(sel0), 0.0)
        point_labels = np.where(is_hit, label_pair.take(sel0),
                                np.int32(PointLabel.GROUND))
    else:
        sel = first.take(flat)
        t_final = t_pair.take(sel)
        z_final = z_pair_hit.take(sel)
        point_labels = label_pair.take(sel)
    cos_elev = np.cos(elevations)
    sin_elev = np.sin(elevations)
    t_noisy = t_final + noise * cos_elev.take(cols)
    x = t_noisy * cos_az.take(rows)
    y = t_noisy * sin_az.take(rows)
    z = z_final + noise * sin_elev.take(cols)
    grid_ts = (azimuths + np.pi) / (2.0 * np.pi)
    timestamps = grid_ts.take(rows)

    if motion is not None and len(flat):
        # Self-motion distortion, evaluated on the azimuth grid: the
        # sweep poses depend only on the (quantized) per-ray timestamps,
        # so the trig runs over n_az entries once and is gathered per
        # point — elementwise-identical to apply_self_motion_distortion
        # on the full cloud.  Coordinates stay 1-D (contiguous) until
        # the final stack.
        thetas, trans = _pose_batch(motion, grid_ts, config.scan_duration)
        cos_t, sin_t = np.cos(-thetas), np.sin(-thetas)
        trans_x = np.ascontiguousarray(trans[:, 0])
        trans_y = np.ascontiguousarray(trans[:, 1])
        sx = x - trans_x.take(rows)
        sy = y - trans_y.take(rows)
        cos_p = cos_t.take(rows)
        sin_p = sin_t.take(rows)
        x = cos_p * sx - sin_p * sy
        y = sin_p * sx + cos_p * sy
    points = np.stack([x, y, z], axis=1)
    return PointCloud(points, timestamps, point_labels)


def _reference_simulate_scan(world: WorldModel, sensor_pose: SE2,
                             config: LidarConfig | None = None,
                             rng: np.random.Generator | int | None = None,
                             motion: MotionState | None = None) -> PointCloud:
    """Pre-rework :func:`simulate_scan`: dense casting, per-rank occlusion.

    Kept as the behavioral specification for the vectorized fast path
    (bit-identical contract, including the RNG draw sequence).
    """
    config = config or LidarConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    (segments, seg_zmin, seg_zmax, seg_label,
     circles, circ_zmin, circ_zmax, circ_label) = _reference_world_obstacles(
        world, sensor_pose)

    n_az = config.azimuth_steps
    azimuths = -np.pi + 2.0 * np.pi * (np.arange(n_az) + 0.5) / n_az
    directions = np.stack([np.cos(azimuths), np.sin(azimuths)], axis=1)

    s_ray, s_t, s_idx = _reference_ray_segment_hits(directions, segments,
                                                    config.max_range)
    c_ray, c_t, c_idx = _reference_ray_circle_hits(directions, circles,
                                                   config.max_range)

    ray_idx = np.concatenate([s_ray, c_ray])
    t_hit = np.concatenate([s_t, c_t])
    zmin = np.concatenate([seg_zmin[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmin[c_idx] if len(c_idx) else np.empty(0)])
    zmax = np.concatenate([seg_zmax[s_idx] if len(s_idx) else np.empty(0),
                           circ_zmax[c_idx] if len(c_idx) else np.empty(0)])
    labels = np.concatenate([seg_label[s_idx] if len(s_idx) else
                             np.empty(0, dtype=np.int32),
                             circ_label[c_idx] if len(c_idx) else
                             np.empty(0, dtype=np.int32)])

    elevations = config.elevations
    tan_elev = np.tan(elevations)
    n_ch = config.num_channels
    assigned = np.zeros((n_az, n_ch), dtype=bool)
    out_t = np.zeros((n_az, n_ch))
    out_z = np.zeros((n_az, n_ch))
    out_label = np.zeros((n_az, n_ch), dtype=np.int32)

    if len(ray_idx):
        # Occlusion: process hits per ray in increasing distance.
        order = np.lexsort((t_hit, ray_idx))
        ray_idx, t_hit = ray_idx[order], t_hit[order]
        zmin, zmax, labels = zmin[order], zmax[order], labels[order]
        # Rank of each hit within its ray.
        is_new_ray = np.empty(len(ray_idx), dtype=bool)
        is_new_ray[0] = True
        is_new_ray[1:] = ray_idx[1:] != ray_idx[:-1]
        group_start = np.maximum.accumulate(
            np.where(is_new_ray, np.arange(len(ray_idx)), 0))
        ranks = np.arange(len(ray_idx)) - group_start

        max_rank = min(int(ranks.max()) + 1, config.max_hits_per_ray)
        for rank in range(max_rank):
            sel = ranks == rank
            if not sel.any():
                break
            rays = ray_idx[sel]
            ts = t_hit[sel]
            z_beam = config.sensor_height + ts[:, None] * tan_elev[None, :]
            hit = ((z_beam >= zmin[sel][:, None])
                   & (z_beam <= zmax[sel][:, None])
                   & ~assigned[rays])
            rows, cols = np.nonzero(hit)
            assigned[rays[rows], cols] = True
            out_t[rays[rows], cols] = ts[rows]
            out_z[rays[rows], cols] = z_beam[rows, cols]
            out_label[rays[rows], cols] = labels[sel][rows]

    if config.include_ground:
        descending = tan_elev < 0
        t_ground = np.full(n_ch, np.inf)
        t_ground[descending] = config.sensor_height / -tan_elev[descending]
        ground_ok = (~assigned) & (t_ground[None, :] <= config.max_range)
        rows, cols = np.nonzero(ground_ok)
        assigned[rows, cols] = True
        out_t[rows, cols] = t_ground[cols]
        out_z[rows, cols] = 0.0
        out_label[rows, cols] = int(PointLabel.GROUND)

    rows, cols = np.nonzero(assigned)
    if len(rows) == 0:
        return PointCloud.empty()
    t_final = out_t[rows, cols]
    z_final = out_z[rows, cols]

    # Range noise along the beam; horizontal and vertical components
    # scale together.
    noise = rng.normal(0.0, config.range_noise, size=len(rows))
    cos_e = np.cos(elevations[cols])
    t_noisy = t_final + noise * cos_e
    z_noisy = z_final + noise * np.sin(elevations[cols])

    points = np.stack([
        t_noisy * np.cos(azimuths[rows]),
        t_noisy * np.sin(azimuths[rows]),
        z_noisy,
    ], axis=1)
    timestamps = (azimuths[rows] + np.pi) / (2.0 * np.pi)
    point_labels = out_label[rows, cols]

    if config.dropout > 0:
        keep = rng.random(len(points)) >= config.dropout
        points, timestamps = points[keep], timestamps[keep]
        point_labels = point_labels[keep]

    cloud = PointCloud(points, timestamps, point_labels)
    if motion is not None:
        cloud = apply_self_motion_distortion(cloud, motion,
                                             config.scan_duration)
    return cloud
