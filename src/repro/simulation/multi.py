"""Multi-vehicle (K > 2) cooperative scenes.

The paper's framework is pairwise; real V2V networks have several CAVs in
range.  :func:`make_multi_frame` places K cooperating vehicles along the
road and scans each one, producing everything the multi-vehicle aligner
(:mod:`repro.core.multi`) needs: per-vehicle clouds, visibility, and all
ground-truth pairwise poses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.distortion import (
    MotionState,
    compensate_self_motion_distortion,
)
from repro.simulation.lidar import simulate_scan
from repro.simulation.scenario import (
    ScenarioConfig,
    VisibleObject,
    _clear_area,
    _partner_vehicle,
    _visible_objects,
    replace_world_vehicles,
)
from repro.simulation.world import WorldModel, generate_world

__all__ = ["MultiScenarioConfig", "MultiFrame", "make_multi_frame",
           "DEGRADATION_LEVELS"]

#: Sensor-impairment ladder for the fleet grid: per level, the factor
#: applied to ``range_noise`` and the *added* dropout probability.
#: Level 0 is exact-clean (configs untouched, so seeded scenes are
#: byte-identical to the pre-ladder generator).
DEGRADATION_LEVELS: tuple[tuple[float, float], ...] = (
    (1.0, 0.0),   # 0: clean
    (4.0, 0.25),  # 1: moderate — noisy ranges, a quarter of returns lost
    (8.0, 0.45),  # 2: heavy — long-baseline pairs should start failing
)


@dataclass(frozen=True)
class MultiScenarioConfig:
    """K-vehicle scene parameters.

    Attributes:
        scenario: the base two-vehicle template (world, sensors, noise);
            the ego uses ``ego_lidar``, every other CAV ``other_lidar``.
        num_vehicles: cooperating vehicle count (K >= 2).
        spacing: target along-road spacing between consecutive CAVs.
        same_direction_prob: per-vehicle direction draw (vehicle 0 always
            faces forward).
        density: multiplier over the world's object densities
            (buildings, trees, poles, parked and moving cars); 1.0
            leaves the scenario's world config untouched.
        degradation: sensor-impairment rung into
            :data:`DEGRADATION_LEVELS` (0 = clean).
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    num_vehicles: int = 3
    spacing: float = 25.0
    same_direction_prob: float = 0.7
    density: float = 1.0
    degradation: int = 0

    def __post_init__(self) -> None:
        if self.num_vehicles < 2:
            raise ValueError("num_vehicles must be >= 2")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        if self.density <= 0:
            raise ValueError("density must be positive")
        if not 0 <= self.degradation < len(DEGRADATION_LEVELS):
            raise ValueError(
                f"degradation must be in 0..{len(DEGRADATION_LEVELS) - 1}")

    def effective_scenario(self) -> ScenarioConfig:
        """The scenario with density and degradation applied.

        Density scales every world object class; degradation replaces
        both lidar models per :data:`DEGRADATION_LEVELS`.  At the
        defaults (density 1.0, level 0) the scenario is returned
        untouched, keeping pre-knob seeds byte-identical.
        """
        scenario = self.scenario
        if self.density != 1.0:
            world = scenario.world.resolved()
            world = replace(
                world,
                building_density=world.building_density * self.density,
                tree_density=world.tree_density * self.density,
                pole_density=world.pole_density * self.density,
                parked_density=world.parked_density * self.density,
                traffic_density=world.traffic_density * self.density,
                override_densities=True)
            scenario = replace(scenario, world=world)
        if self.degradation != 0:
            noise_factor, extra_dropout = \
                DEGRADATION_LEVELS[self.degradation]

            def impair(lidar):
                return replace(
                    lidar,
                    range_noise=lidar.range_noise * noise_factor,
                    dropout=min(0.95, lidar.dropout + extra_dropout))
            scenario = replace(scenario,
                               ego_lidar=impair(scenario.ego_lidar),
                               other_lidar=impair(scenario.other_lidar))
        return scenario


@dataclass(frozen=True)
class MultiFrame:
    """One synchronized K-vehicle observation.

    Attributes:
        world: shared world (world frame).
        poses: per-vehicle planar poses (vehicle 0 = ego/reference).
        clouds: per-vehicle scans, each in its own frame.
        motions: per-vehicle twists.
        visible: per-vehicle ground-truth observations (own frames).
    """

    world: WorldModel
    poses: tuple[SE2, ...]
    clouds: tuple[PointCloud, ...]
    motions: tuple[MotionState, ...]
    visible: tuple[tuple[VisibleObject, ...], ...]

    @property
    def num_vehicles(self) -> int:
        return len(self.poses)

    def gt_relative(self, target: int, source: int) -> SE2:
        """Ground-truth transform mapping vehicle ``source``'s frame into
        vehicle ``target``'s frame."""
        return self.poses[target].inverse() @ self.poses[source]

    def candidate_pairs(self, max_range: float = 90.0,
                        ) -> tuple[tuple[int, int], ...]:
        """Connectivity graph: pairs whose overlap plausibly exists.

        Two scans can only co-register when their fields of view
        overlap, which for road scenes is governed by inter-vehicle
        distance; pairs farther apart than ``max_range`` are excluded
        so the aligner never burns a stage-1 match on a hopeless edge.
        In a deployment the same gate falls out of the V2V radio range.
        """
        pairs = []
        for i in range(self.num_vehicles):
            for j in range(i + 1, self.num_vehicles):
                a, b = self.poses[i], self.poses[j]
                if np.hypot(a.tx - b.tx, a.ty - b.ty) <= max_range:
                    pairs.append((i, j))
        return tuple(pairs)


def make_multi_frame(config: MultiScenarioConfig | None = None,
                     rng: np.random.Generator | int | None = None) -> MultiFrame:
    """Generate one K-vehicle frame."""
    config = config or MultiScenarioConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    scenario = config.effective_scenario()
    world = generate_world(scenario.world, rng)
    road = world.road
    half = world.extent
    lane = scenario.world.road_half_width / 2.0

    k = config.num_vehicles
    margin = min(config.spacing * k + 20.0, half)
    base_s = rng.uniform(-half + margin, half - margin)

    poses: list[SE2] = []
    motions: list[MotionState] = []
    forwards: list[bool] = []
    for i in range(k):
        forward = True if i == 0 \
            else bool(rng.random() < config.same_direction_prob)
        s = base_s + i * config.spacing * rng.uniform(0.8, 1.2)
        lateral = (-lane if forward else lane) \
            + rng.normal(0.0, scenario.lane_jitter)
        base = road.pose_at(s, lateral)
        heading = base.theta if forward else base.theta + np.pi
        poses.append(SE2(float(wrap_to_pi(
            heading + rng.normal(0.0, np.deg2rad(4.0)))),
            base.tx, base.ty))
        motions.append(MotionState(
            velocity_x=float(rng.uniform(*scenario.speed_range)),
            yaw_rate=float(rng.normal(0.0, scenario.yaw_rate_std))))
        forwards.append(forward)

    world = _clear_area(world, [np.array([p.tx, p.ty]) for p in poses])

    # Every CAV's body is visible to every *other* CAV.
    bodies = [_partner_vehicle(rng, pose, motion.speed, -(i + 1))
              for i, (pose, motion) in enumerate(zip(poses, motions))]

    clouds: list[PointCloud] = []
    visible: list[tuple[VisibleObject, ...]] = []
    comp_err = scenario.motion_compensation_error
    for i, (pose, motion) in enumerate(zip(poses, motions)):
        lidar = scenario.ego_lidar if i == 0 else scenario.other_lidar
        others = tuple(body for j, body in enumerate(bodies) if j != i)
        world_i = replace_world_vehicles(world, world.vehicles + others)
        cloud = simulate_scan(world_i, pose, lidar, rng=rng, motion=motion)
        if comp_err < 1.0:
            estimate = MotionState(motion.velocity_x * (1.0 - comp_err),
                                   motion.velocity_y * (1.0 - comp_err),
                                   motion.yaw_rate * (1.0 - comp_err))
            cloud = compensate_self_motion_distortion(
                cloud, estimate, lidar.scan_duration)
        residual = MotionState(motion.velocity_x * comp_err,
                               motion.velocity_y * comp_err,
                               motion.yaw_rate * comp_err)
        clouds.append(cloud)
        visible.append(_visible_objects(
            cloud, world_i.vehicles, pose, scenario.min_visible_points,
            -(i + 1), residual, lidar.scan_duration))

    return MultiFrame(world=world, poses=tuple(poses),
                      clouds=tuple(clouds), motions=tuple(motions),
                      visible=tuple(visible))
