"""Road centerline model.

A gently curving road represented by a piecewise-constant-curvature
centerline.  Curvature both matches real drives and, importantly for the
matching problem, breaks the translational self-similarity of a straight
corridor: sliding the scene along a curved road changes what the sensors
see, so feature matching cannot alias one stretch of road onto another.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2

__all__ = ["RoadModel", "make_road"]


class RoadModel:
    """A sampled road centerline with arc-length parameterization.

    Attributes:
        s: (N,) arc-length samples (monotonic, meters).
        xy: (N, 2) centerline positions.
        heading: (N,) tangent headings (radians).
    """

    def __init__(self, s: np.ndarray, xy: np.ndarray,
                 heading: np.ndarray) -> None:
        s = np.asarray(s, dtype=float)
        xy = np.asarray(xy, dtype=float)
        heading = np.asarray(heading, dtype=float)
        if len(s) < 2 or xy.shape != (len(s), 2) or heading.shape != s.shape:
            raise ValueError("inconsistent road sample arrays")
        if np.any(np.diff(s) <= 0):
            raise ValueError("arc length must be strictly increasing")
        self.s = s
        self.xy = xy
        self.heading = heading

    @property
    def length(self) -> float:
        return float(self.s[-1] - self.s[0])

    @property
    def s_min(self) -> float:
        return float(self.s[0])

    @property
    def s_max(self) -> float:
        return float(self.s[-1])

    def pose_at(self, s: float, lateral: float = 0.0) -> SE2:
        """Pose at arc length ``s``, offset ``lateral`` meters to the left
        of the travel direction (negative = right)."""
        s = float(np.clip(s, self.s_min, self.s_max))
        x = float(np.interp(s, self.s, self.xy[:, 0]))
        y = float(np.interp(s, self.s, self.xy[:, 1]))
        # Interpolate heading via its unwrapped form (precomputed
        # monotone-ish; piecewise-constant curvature keeps it smooth).
        h = float(np.interp(s, self.s, self.heading))
        nx, ny = -np.sin(h), np.cos(h)  # left normal
        return SE2(h, x + lateral * nx, y + lateral * ny)

    def point_at(self, s: float, lateral: float = 0.0) -> np.ndarray:
        pose = self.pose_at(s, lateral)
        return np.array([pose.tx, pose.ty])

    def frames_at(self, s: np.ndarray, lateral: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`pose_at`: ``(tx, ty, theta)`` arrays.

        Element ``i`` is bit-identical to ``pose_at(s[i], lateral[i])``
        (``np.clip``/``np.interp``/the trig are all elementwise, and the
        heading is wrapped the same way ``SE2.__post_init__`` does), so
        callers placing many objects can evaluate the road frame once
        instead of per object.
        """
        s = np.clip(np.asarray(s, dtype=float), self.s_min, self.s_max)
        lateral = np.asarray(lateral, dtype=float)
        x = np.interp(s, self.s, self.xy[:, 0])
        y = np.interp(s, self.s, self.xy[:, 1])
        h = np.interp(s, self.s, self.heading)
        nx, ny = -np.sin(h), np.cos(h)  # left normal
        return x + lateral * nx, y + lateral * ny, wrap_to_pi(h)


def make_road(length: float = 300.0,
              block_length: float = 80.0,
              max_curvature: float = 0.004,
              rng: np.random.Generator | int | None = None,
              step: float = 1.0) -> RoadModel:
    """Generate a piecewise-constant-curvature road through the origin.

    Args:
        length: total road length; arc length spans [-length/2, length/2].
        block_length: curvature changes every ~block_length meters.
        max_curvature: |kappa| bound (0.004 = 250 m turn radius).
        rng: generator or seed.
        step: sampling resolution in meters.

    Returns:
        A :class:`RoadModel` whose s=0 pose is the origin heading +x.
    """
    if length <= 0 or block_length <= 0 or step <= 0:
        raise ValueError("length, block_length and step must be positive")
    if max_curvature < 0:
        raise ValueError("max_curvature must be >= 0")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    half = length / 2.0
    s = np.arange(-half, half + step, step)
    n_blocks = int(np.ceil(length / block_length)) + 1
    block_kappa = rng.uniform(-max_curvature, max_curvature, size=n_blocks)
    kappa = block_kappa[((s + half) / block_length).astype(int)]

    # Integrate outward from s = 0 so the origin pose is exact.
    zero_idx = int(np.argmin(np.abs(s)))
    heading = np.zeros_like(s)
    heading[zero_idx:] = np.concatenate(
        [[0.0], np.cumsum(kappa[zero_idx:-1] * step)])
    heading[:zero_idx] = -np.cumsum(
        kappa[zero_idx - 1::-1] * step)[::-1]

    xy = np.zeros((len(s), 2))
    cos_h, sin_h = np.cos(heading), np.sin(heading)
    xy[zero_idx:, 0] = np.concatenate(
        [[0.0], np.cumsum(cos_h[zero_idx:-1] * step)])
    xy[zero_idx:, 1] = np.concatenate(
        [[0.0], np.cumsum(sin_h[zero_idx:-1] * step)])
    xy[:zero_idx, 0] = -np.cumsum(cos_h[zero_idx - 1::-1] * step)[::-1]
    xy[:zero_idx, 1] = -np.cumsum(sin_h[zero_idx - 1::-1] * step)[::-1]
    return RoadModel(s, xy, heading)
