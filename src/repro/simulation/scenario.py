"""Two-vehicle frame-pair construction.

A *frame pair* is the unit of evaluation in the paper: one synchronized
pair of lidar scans from the ego and the other car, with ground-truth
relative pose and per-vehicle ground-truth object boxes.  This module
places the two cooperating vehicles on the generated road, gives each a
motion state (producing *different* self-motion distortion in the two
scans — the effect stage 2 corrects), scans the world from both
viewpoints with possibly heterogeneous sensors, and records which world
vehicles each car actually observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.boxes.box import Box3D
from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud, PointLabel
from repro.pointcloud.distortion import (
    MotionState,
    _pose_batch,
    compensate_self_motion_distortion,
)
from repro.simulation.lidar import LidarConfig, simulate_scan
from repro.simulation.world import (
    ScenarioKind,
    SimVehicle,
    WorldConfig,
    WorldModel,
    generate_world,
    share_static_geometry,
)

__all__ = ["VisibleObject", "ScenarioConfig", "FramePair", "make_frame_pair",
           "observe_frame", "EGO_VEHICLE_ID", "OTHER_VEHICLE_ID"]

# Reserved identities for the two cooperating vehicles themselves.
EGO_VEHICLE_ID = -1
OTHER_VEHICLE_ID = -2


@dataclass(frozen=True)
class VisibleObject:
    """A ground-truth vehicle as seen from one sensor.

    Attributes:
        vehicle_id: stable world identity (or the reserved partner ids).
        box: ground-truth 3-D box in the observing sensor's frame.
        num_points: lidar returns on the object in this scan — the raw
            visibility signal detection profiles use.
    """

    vehicle_id: int
    box: Box3D
    num_points: int


@dataclass(frozen=True)
class ScenarioConfig:
    """Frame-pair generation parameters.

    Attributes:
        world: world generation config (scenario kind, densities).
        ego_lidar / other_lidar: per-vehicle sensor models.  The defaults
            differ (channel count and FOV), reproducing the paper's
            heterogeneous-sensor setting.
        distance: target inter-vehicle distance in meters.
        same_direction_prob: probability the other car travels the same
            way (vs oncoming).
        speed_range: vehicle speeds, m/s.
        yaw_rate_std: random heading rate, rad/s (mild curving).
        lane_jitter: lateral placement noise, meters.
        min_visible_points: returns needed to count a vehicle as observed.
        motion_compensation_error: every real lidar pipeline de-skews
            scans with onboard odometry; this is the *fraction* of the
            self-motion distortion that survives imperfect compensation
            (0 = perfect de-skew, 1 = raw distorted scans).  The residual
            is the misalignment source the paper's stage-2 box alignment
            corrects.
    """

    world: WorldConfig = field(default_factory=WorldConfig)
    ego_lidar: LidarConfig = field(default_factory=LidarConfig)
    other_lidar: LidarConfig = field(default_factory=lambda: LidarConfig(
        num_channels=40, elevation_min_deg=-22.0, elevation_max_deg=18.0,
        azimuth_steps=1500, sensor_height=2.1))
    distance: float = 40.0
    same_direction_prob: float = 0.6
    speed_range: tuple[float, float] = (3.0, 14.0)
    yaw_rate_std: float = 0.05
    lane_jitter: float = 0.4
    min_visible_points: int = 8
    motion_compensation_error: float = 0.3

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ValueError("distance must be positive")
        if not (0 <= self.same_direction_prob <= 1):
            raise ValueError("same_direction_prob must be in [0, 1]")


@dataclass(frozen=True)
class FramePair:
    """One synchronized two-vehicle observation.

    Attributes:
        world: the generated world (world frame).
        ego_pose / other_pose: vehicle planar poses in the world frame.
        gt_relative: ground-truth transform mapping other-frame
            coordinates into the ego frame (``X_ego^-1 @ X_other``).
        ego_cloud / other_cloud: scans in each vehicle's own frame,
            heights above ground, self-motion distortion applied.
        ego_motion / other_motion: the twists used for distortion.
        ego_visible / other_visible: ground-truth vehicles observed by
            each car (own frame), including the partner vehicle.
        scenario_kind: world flavor, for bucketing.
    """

    world: WorldModel
    ego_pose: SE2
    other_pose: SE2
    gt_relative: SE2
    ego_cloud: PointCloud
    other_cloud: PointCloud
    ego_motion: MotionState
    other_motion: MotionState
    ego_visible: tuple[VisibleObject, ...]
    other_visible: tuple[VisibleObject, ...]
    scenario_kind: ScenarioKind

    @property
    def distance(self) -> float:
        """Inter-vehicle distance in meters."""
        return float(np.hypot(self.ego_pose.tx - self.other_pose.tx,
                              self.ego_pose.ty - self.other_pose.ty))

    @property
    def common_vehicle_ids(self) -> set[int]:
        """World vehicles observed by *both* cars (partner bodies
        excluded: a car never observes itself, so they can't be common)."""
        ego_ids = {v.vehicle_id for v in self.ego_visible
                   if v.vehicle_id >= 0}
        other_ids = {v.vehicle_id for v in self.other_visible
                     if v.vehicle_id >= 0}
        return ego_ids & other_ids

    @property
    def num_common_vehicles(self) -> int:
        return len(self.common_vehicle_ids)


def _partner_vehicle(rng: np.random.Generator, pose: SE2, speed: float,
                     vehicle_id: int) -> SimVehicle:
    """The physical body of a cooperating vehicle, visible to its partner."""
    length = rng.uniform(4.6, 5.0)
    width = rng.uniform(1.9, 2.1)
    height = rng.uniform(1.6, 1.9)
    box = Box3D(pose.tx, pose.ty, height / 2.0, length, width, height,
                pose.theta)
    return SimVehicle(box=box, velocity=speed, vehicle_id=vehicle_id)


def _clear_area(world: WorldModel, positions: list[np.ndarray],
                radius: float = 7.0) -> WorldModel:
    """Drop world vehicles overlapping the cooperating cars' placements."""
    kept = tuple(v for v in world.vehicles
                 if all(np.hypot(v.box.center_x - p[0],
                                 v.box.center_y - p[1]) > radius
                        for p in positions))
    return replace_world_vehicles(world, kept)


def replace_world_vehicles(world: WorldModel,
                           vehicles: tuple[SimVehicle, ...]) -> WorldModel:
    """A copy of the world with a different vehicle set.

    The copy shares the source's static-geometry cache (the obstacle
    tuples are reused verbatim), so per-frame vehicle swaps do not
    rebuild the cached arrays — see ``WorldModel.static_geometry``.
    """
    new = WorldModel(buildings=world.buildings, trees=world.trees,
                     poles=world.poles, vehicles=vehicles,
                     extent=world.extent, road=world.road)
    return share_static_geometry(world, new)


def _distort_box(box: Box3D, residual_motion: MotionState,
                 scan_duration: float) -> Box3D:
    """Displace a ground-truth box the way the observer's residual scan
    distortion displaces the points on it.

    A detector infers boxes from the (imperfectly de-skewed) scan, so its
    output inherits the residual warp at the object's bearing: the object
    was swept at time ``t = (azimuth + pi) / 2pi`` of the sweep, when the
    sensor had drifted by the (uncompensated part of the) motion.
    """
    azimuth = float(np.arctan2(box.center_y, box.center_x))
    t = (azimuth + np.pi) / (2.0 * np.pi) * scan_duration
    drift = residual_motion.pose_at(t)
    warped = drift.inverse()  # stored frame = sweep-start frame
    center = warped.apply(np.array([box.center_x, box.center_y]))
    return Box3D(float(center[0]), float(center[1]), box.center_z,
                 box.length, box.width, box.height,
                 float(wrap_to_pi(box.yaw + warped.theta)))


def _visible_objects(cloud: PointCloud, vehicles: tuple[SimVehicle, ...],
                     sensor_pose: SE2, min_points: int,
                     exclude_id: int,
                     residual_motion: MotionState | None = None,
                     scan_duration: float = 0.1) -> tuple[VisibleObject, ...]:
    """Ground-truth boxes (sensor frame) for vehicles with enough returns."""
    if len(cloud) == 0:
        return ()
    inv = sensor_pose.inverse()
    vehicle_mask = (cloud.labels == int(PointLabel.VEHICLE)
                    if cloud.labels is not None
                    else np.ones(len(cloud), dtype=bool))
    vehicle_points = cloud.points[vehicle_mask]
    if len(vehicle_points) == 0:
        return ()
    px = vehicle_points[:, 0]
    py = vehicle_points[:, 1]
    # Vehicles farther from the sensor than the farthest return (plus
    # their own circumradius, the box inflation and a slack that dwarfs
    # distortion drift and rounding) cannot contain any point — skip
    # their transform and containment test outright.
    r_max = float(np.sqrt(np.max(px * px + py * py)))
    visible: list[VisibleObject] = []
    for vehicle in vehicles:
        if vehicle.vehicle_id == exclude_id:
            continue
        reach = (r_max + 5.0
                 + 0.5 * float(np.hypot(vehicle.box.length + 0.4,
                                        vehicle.box.width + 0.4)))
        if (np.hypot(vehicle.box.center_x - sensor_pose.tx,
                     vehicle.box.center_y - sensor_pose.ty) > reach):
            continue
        local_box = vehicle.box.transform(inv)
        if residual_motion is not None:
            local_box = _distort_box(local_box, residual_motion,
                                     scan_duration)
        # Tolerate range noise with a slightly inflated test box.
        test_box = Box3D(local_box.center_x, local_box.center_y,
                         local_box.center_z, local_box.length + 0.4,
                         local_box.width + 0.4, local_box.height + 0.4,
                         local_box.yaw)
        # Only points within the box's BEV circumradius can be inside;
        # the 1e-6 slack dwarfs the rotation's rounding, so the exact
        # containment test over the near subset counts identically.
        radius = (0.5 * float(np.hypot(test_box.length, test_box.width))
                  + 1e-6)
        near = ((px - test_box.center_x) ** 2
                + (py - test_box.center_y) ** 2) <= radius * radius
        count = int(np.count_nonzero(test_box.contains(
            vehicle_points[near])))
        if count >= min_points:
            visible.append(VisibleObject(vehicle.vehicle_id, local_box,
                                         count))
    return tuple(visible)


def _reference_visible_objects(
        cloud: PointCloud, vehicles: tuple[SimVehicle, ...],
        sensor_pose: SE2, min_points: int, exclude_id: int,
        residual_motion: MotionState | None = None,
        scan_duration: float = 0.1) -> tuple[VisibleObject, ...]:
    """Pre-rework :func:`_visible_objects`: every vehicle tested against
    every vehicle point.

    Kept as the behavioral specification for the reach/circumradius
    prefilters (identical visible set — ``tests/test_sim_equivalence.py``
    enforces this).
    """
    if len(cloud) == 0:
        return ()
    inv = sensor_pose.inverse()
    vehicle_mask = (cloud.labels == int(PointLabel.VEHICLE)
                    if cloud.labels is not None
                    else np.ones(len(cloud), dtype=bool))
    vehicle_points = cloud.points[vehicle_mask]
    visible: list[VisibleObject] = []
    for vehicle in vehicles:
        if vehicle.vehicle_id == exclude_id:
            continue
        local_box = vehicle.box.transform(inv)
        if residual_motion is not None:
            local_box = _distort_box(local_box, residual_motion,
                                     scan_duration)
        if len(vehicle_points) == 0:
            continue
        # Tolerate range noise with a slightly inflated test box.
        test_box = Box3D(local_box.center_x, local_box.center_y,
                         local_box.center_z, local_box.length + 0.4,
                         local_box.width + 0.4, local_box.height + 0.4,
                         local_box.yaw)
        count = int(np.count_nonzero(test_box.contains(vehicle_points)))
        if count >= min_points:
            visible.append(VisibleObject(vehicle.vehicle_id, local_box,
                                         count))
    return tuple(visible)


def make_frame_pair(config: ScenarioConfig | None = None,
                    rng: np.random.Generator | int | None = None,
                    world: WorldModel | None = None,
                    min_common: int = 0) -> FramePair | None:
    """Generate one two-vehicle frame pair.

    Args:
        config: scenario parameters.
        rng: generator or seed.
        world: reuse a pre-generated world (vehicles near the cooperating
            cars are still cleared); a fresh one is generated when None.
        min_common: when > 0, return None as soon as the pair is certain
            to fail the dataset's common-vehicle selection rule (see
            :func:`observe_frame`); 0 (the default) always builds the
            full pair.

    Returns:
        A :class:`FramePair` with scans, ground truth and visibility, or
        None if the ``min_common`` screen rejected the pair early.
    """
    config = config or ScenarioConfig()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if world is None:
        world = generate_world(config.world, rng)

    half = world.extent
    lane = config.world.road_half_width / 2.0
    # Ego somewhere mid-corridor so both cars keep landmarks around them.
    margin = min(config.distance + 20.0, half)
    ego_s = rng.uniform(-half + margin, half - margin)

    same_direction = rng.random() < config.same_direction_prob
    along = rng.choice([-1.0, 1.0])
    other_s = ego_s + along * config.distance

    if world.road is not None:
        ego_base = world.road.pose_at(
            ego_s, -lane + rng.normal(0.0, config.lane_jitter))
        ego_pose = SE2(wrap_to_pi(ego_base.theta
                                  + rng.normal(0.0, np.deg2rad(4.0))),
                       ego_base.tx, ego_base.ty)
        other_lat = (-lane if same_direction else lane) \
            + rng.normal(0.0, config.lane_jitter)
        other_base = world.road.pose_at(other_s, other_lat)
        other_heading = other_base.theta if same_direction \
            else other_base.theta + np.pi
        other_pose = SE2(wrap_to_pi(other_heading
                                    + rng.normal(0.0, np.deg2rad(4.0))),
                         other_base.tx, other_base.ty)
    else:
        # Hand-built worlds without a road: straight x-axis placement.
        ego_pose = SE2(rng.normal(0.0, np.deg2rad(4.0)),
                       ego_s, -lane + rng.normal(0.0, config.lane_jitter))
        other_y = (-lane if same_direction else lane) \
            + rng.normal(0.0, config.lane_jitter)
        other_yaw = (0.0 if same_direction else np.pi) \
            + rng.normal(0.0, np.deg2rad(4.0))
        other_pose = SE2(float(wrap_to_pi(other_yaw)), float(other_s),
                         float(other_y))

    world = _clear_area(world, [np.array([ego_pose.tx, ego_pose.ty]),
                                np.array([other_pose.tx, other_pose.ty])])

    ego_speed = rng.uniform(*config.speed_range)
    other_speed = rng.uniform(*config.speed_range)
    ego_motion = MotionState(velocity_x=float(ego_speed),
                             velocity_y=0.0,
                             yaw_rate=float(rng.normal(0.0,
                                                       config.yaw_rate_std)))
    other_motion = MotionState(velocity_x=float(other_speed),
                               velocity_y=0.0,
                               yaw_rate=float(rng.normal(0.0,
                                                         config.yaw_rate_std)))

    return observe_frame(world, ego_pose, other_pose, ego_motion,
                         other_motion, config, rng, min_common=min_common)


def _compensate_on_grid(cloud: PointCloud, motion: MotionState,
                        scan_duration: float,
                        azimuth_steps: int) -> PointCloud:
    """:func:`compensate_self_motion_distortion`, with the sweep poses
    evaluated once on the scan's azimuth grid and gathered per point.

    :func:`simulate_scan` timestamps points with exact azimuth-grid
    values, so the per-point pose batch collapses to ``azimuth_steps``
    entries — bit-identical output, a fraction of the trig.  Falls back
    to the general routine if the timestamps turn out not to sit on the
    expected grid (e.g. a resampled or merged cloud).
    """
    if len(cloud) == 0 or cloud.timestamps is None:
        return compensate_self_motion_distortion(cloud, motion,
                                                 scan_duration)
    n_az = azimuth_steps
    azimuths = -np.pi + 2.0 * np.pi * (np.arange(n_az) + 0.5) / n_az
    grid_ts = (azimuths + np.pi) / (2.0 * np.pi)
    # Grid timestamps are ~(row + 0.5) / n_az, so the inverse map is a
    # rounding, not a search; the exact-match check below still decides
    # whether the grid fast path applies.
    idx = np.rint(cloud.timestamps * n_az - 0.5).astype(np.int64)
    idx_c = np.clip(idx, 0, n_az - 1)
    if not np.array_equal(grid_ts[idx_c], cloud.timestamps):
        return compensate_self_motion_distortion(cloud, motion,
                                                 scan_duration)
    thetas_g, trans_g = _pose_batch(motion, grid_ts, scan_duration)
    cos_g, sin_g = np.cos(thetas_g), np.sin(thetas_g)
    cos_t, sin_t = cos_g.take(idx_c), sin_g.take(idx_c)
    px = np.ascontiguousarray(cloud.points[:, 0])
    py = np.ascontiguousarray(cloud.points[:, 1])
    tx = np.ascontiguousarray(trans_g[:, 0])
    ty = np.ascontiguousarray(trans_g[:, 1])
    new_points = np.empty_like(cloud.points)
    new_points[:, 0] = (cos_t * px - sin_t * py) + tx.take(idx_c)
    new_points[:, 1] = (sin_t * px + cos_t * py) + ty.take(idx_c)
    new_points[:, 2] = cloud.points[:, 2]
    return PointCloud(new_points, cloud.timestamps, cloud.labels)


def observe_frame(world: WorldModel, ego_pose: SE2, other_pose: SE2,
                  ego_motion: MotionState, other_motion: MotionState,
                  config: ScenarioConfig,
                  rng: np.random.Generator | int | None = None,
                  min_common: int = 0) -> FramePair | None:
    """Scan a given two-vehicle configuration into a :class:`FramePair`.

    This is the observation half of :func:`make_frame_pair`, exposed so
    sequence generators (:mod:`repro.simulation.sequence`) can evolve the
    vehicle configuration themselves and re-observe each frame.

    ``min_common`` > 0 enables the dataset's rejection screen: common
    vehicles are an intersection of the two visible sets, so once the
    ego side alone has fewer than ``min_common`` world vehicles the pair
    is certain to be rejected and the partner scan is skipped (returns
    None).  The ego side consumes the same RNG draws either way and
    per-attempt generators are independent, so enabling the screen
    changes no surviving pair's bytes.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    ego_body = _partner_vehicle(rng, ego_pose, ego_motion.speed,
                                EGO_VEHICLE_ID)
    other_body = _partner_vehicle(rng, other_pose, other_motion.speed,
                                  OTHER_VEHICLE_ID)

    # Each car scans the world plus its partner's body (never its own).
    world_for_ego = replace_world_vehicles(
        world, world.vehicles + (other_body,))
    world_for_other = replace_world_vehicles(
        world, world.vehicles + (ego_body,))

    # Odometry-based de-skew (standard lidar preprocessing): compensate
    # with a slightly-wrong motion estimate, leaving the configured
    # fraction of the distortion in the data.
    comp_err = config.motion_compensation_error
    ego_residual = MotionState(ego_motion.velocity_x * comp_err,
                               ego_motion.velocity_y * comp_err,
                               ego_motion.yaw_rate * comp_err)
    other_residual = MotionState(other_motion.velocity_x * comp_err,
                                 other_motion.velocity_y * comp_err,
                                 other_motion.yaw_rate * comp_err)

    # Ego side first, through visibility: nothing between the two scan
    # calls draws randomness, so finishing the ego pipeline before the
    # partner scan leaves every RNG draw at its reference position.
    ego_cloud = simulate_scan(world_for_ego, ego_pose, config.ego_lidar,
                              rng=rng, motion=ego_motion)
    if comp_err < 1.0:
        ego_est = MotionState(ego_motion.velocity_x * (1.0 - comp_err),
                              ego_motion.velocity_y * (1.0 - comp_err),
                              ego_motion.yaw_rate * (1.0 - comp_err))
        ego_cloud = _compensate_on_grid(
            ego_cloud, ego_est, config.ego_lidar.scan_duration,
            config.ego_lidar.azimuth_steps)
    ego_visible = _visible_objects(ego_cloud, world_for_ego.vehicles,
                                   ego_pose, config.min_visible_points,
                                   EGO_VEHICLE_ID, ego_residual,
                                   config.ego_lidar.scan_duration)
    if min_common > 0 and sum(
            1 for v in ego_visible if v.vehicle_id >= 0) < min_common:
        return None

    other_cloud = simulate_scan(world_for_other, other_pose,
                                config.other_lidar, rng=rng,
                                motion=other_motion)
    if comp_err < 1.0:
        other_est = MotionState(other_motion.velocity_x * (1.0 - comp_err),
                                other_motion.velocity_y * (1.0 - comp_err),
                                other_motion.yaw_rate * (1.0 - comp_err))
        other_cloud = _compensate_on_grid(
            other_cloud, other_est, config.other_lidar.scan_duration,
            config.other_lidar.azimuth_steps)
    other_visible = _visible_objects(other_cloud, world_for_other.vehicles,
                                     other_pose, config.min_visible_points,
                                     OTHER_VEHICLE_ID, other_residual,
                                     config.other_lidar.scan_duration)

    gt_relative = ego_pose.inverse() @ other_pose
    return FramePair(world=world, ego_pose=ego_pose, other_pose=other_pose,
                     gt_relative=gt_relative, ego_cloud=ego_cloud,
                     other_cloud=other_cloud, ego_motion=ego_motion,
                     other_motion=other_motion, ego_visible=ego_visible,
                     other_visible=other_visible,
                     scenario_kind=config.world.kind)
