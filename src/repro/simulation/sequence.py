"""Drive sequences: consecutive frame pairs of one evolving scene.

The paper evaluates independent frame pairs; a deployed system sees a
*stream*.  :class:`DriveSequence` evolves one world over time — the two
cooperating vehicles follow the road at their speeds, traffic vehicles
advance along their headings — and re-observes a frame pair at each step,
so temporal components (:mod:`repro.core.temporal`) can be evaluated on
physically consistent streams with per-frame ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2
from repro.pointcloud.distortion import MotionState
from repro.simulation.scenario import (
    FramePair,
    ScenarioConfig,
    _clear_area,
    observe_frame,
)
from repro.simulation.world import (
    SimVehicle,
    WorldModel,
    generate_world,
)
from repro.simulation.scenario import replace_world_vehicles

__all__ = ["SequenceConfig", "DriveSequence"]


@dataclass(frozen=True)
class SequenceConfig:
    """Sequence generation parameters.

    Attributes:
        scenario: the per-frame scenario template (world, sensors,
            distortion...).
        num_frames: sequence length.
        frame_dt: time between frames (seconds); 0.1 s = every sweep.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    num_frames: int = 10
    frame_dt: float = 0.1

    def __post_init__(self) -> None:
        if self.num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        if self.frame_dt <= 0:
            raise ValueError("frame_dt must be positive")


def _advance_vehicle(vehicle: SimVehicle, dt: float) -> SimVehicle:
    """Move a traffic vehicle along its heading at its speed."""
    if not vehicle.is_moving:
        return vehicle
    dx = vehicle.velocity * dt * np.cos(vehicle.box.yaw)
    dy = vehicle.velocity * dt * np.sin(vehicle.box.yaw)
    return SimVehicle(vehicle.box.with_center(vehicle.box.center_x + dx,
                                              vehicle.box.center_y + dy),
                      vehicle.velocity, vehicle.vehicle_id)


class DriveSequence:
    """Generates consecutive frame pairs of one evolving scene.

    Both cooperating vehicles track the road centerline at their sampled
    speeds (arc-length integration), so headings follow curves naturally.

    Example:
        >>> seq = DriveSequence(SequenceConfig(num_frames=5), rng=3)
        >>> frames = list(seq)           # doctest: +SKIP
    """

    def __init__(self, config: SequenceConfig | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        self.config = config or SequenceConfig()
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        scenario = self.config.scenario
        self._world = generate_world(scenario.world, rng)
        road = self._world.road
        if road is None:
            raise ValueError("drive sequences need a road-based world")

        half = self._world.extent
        travel = (scenario.speed_range[1] * self.config.num_frames
                  * self.config.frame_dt)
        margin = min(scenario.distance + travel + 20.0, half)
        self._ego_s = float(rng.uniform(-half + margin, half - margin))
        self._same_direction = rng.random() < scenario.same_direction_prob
        along = rng.choice([-1.0, 1.0])
        self._other_s = self._ego_s + float(along * scenario.distance)
        self._lane = scenario.world.road_half_width / 2.0
        self._ego_lat = -self._lane + rng.normal(0.0, scenario.lane_jitter)
        self._other_lat = ((-self._lane if self._same_direction
                            else self._lane)
                           + rng.normal(0.0, scenario.lane_jitter))
        self._ego_speed = float(rng.uniform(*scenario.speed_range))
        self._other_speed = float(rng.uniform(*scenario.speed_range))
        self._frame_index = 0

    # ------------------------------------------------------------------
    def _pose_of(self, s: float, lateral: float, forward: bool) -> SE2:
        base = self._world.road.pose_at(s, lateral)
        heading = base.theta if forward else base.theta + np.pi
        return SE2(float(wrap_to_pi(heading)), base.tx, base.ty)

    def __iter__(self):
        for _ in range(self.config.num_frames):
            yield self.next_frame()

    def next_frame(self) -> FramePair:
        """Observe the current configuration, then advance time."""
        if self._frame_index >= self.config.num_frames:
            raise StopIteration("sequence exhausted")
        scenario = self.config.scenario
        ego_pose = self._pose_of(self._ego_s, self._ego_lat, True)
        other_pose = self._pose_of(self._other_s, self._other_lat,
                                   self._same_direction)
        world = _clear_area(self._world,
                            [np.array([ego_pose.tx, ego_pose.ty]),
                             np.array([other_pose.tx, other_pose.ty])])
        ego_motion = MotionState(velocity_x=self._ego_speed)
        other_motion = MotionState(velocity_x=self._other_speed)
        frame = observe_frame(world, ego_pose, other_pose, ego_motion,
                              other_motion, scenario,
                              rng=np.random.default_rng(
                                  self._rng.integers(0, 2 ** 31)))

        # Advance the scene.
        dt = self.config.frame_dt
        self._ego_s += self._ego_speed * dt
        self._other_s += (self._other_speed * dt
                          if self._same_direction
                          else -self._other_speed * dt)
        self._world = replace_world_vehicles(
            self._world,
            tuple(_advance_vehicle(v, dt) for v in self._world.vehicles))
        self._frame_index += 1
        return frame

    # ------------------------------------------------------------------
    def ego_odometry_step(self) -> SE2:
        """The ego vehicle's pose increment per frame, in its own frame
        (what onboard odometry would report)."""
        dt = self.config.frame_dt
        return MotionState(velocity_x=self._ego_speed).pose_at(dt)

    def other_odometry_step(self) -> SE2:
        """The other vehicle's per-frame pose increment, its own frame."""
        dt = self.config.frame_dt
        return MotionState(velocity_x=self._other_speed).pose_at(dt)
