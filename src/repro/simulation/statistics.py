"""Dataset characterization (the paper's Sec. V dataset discussion).

The paper characterizes V2V4Real (20K frames, 19 h of driving, 12K
usable frames after the common-car selection).  This module computes the
analogous statistics for the simulated dataset — the numbers a user
needs to know whether the substitute covers the regime they care about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bev.projection import height_map
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import percentile_summary
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

__all__ = ["DatasetStatistics", "compute_dataset_statistics",
           "run_dataset_stats", "format_dataset_stats"]


@dataclass(frozen=True)
class DatasetStatistics:
    """Dataset-level summary.

    Attributes:
        num_pairs: pairs characterized.
        selection_rate: fraction of raw generations passing the paper's
            common-car selection (their 12K / 20K analog).
        distance_percentiles: inter-vehicle distance distribution (m).
        common_car_percentiles: commonly-observed-car distribution.
        points_per_scan_mean: lidar returns per scan.
        bv_sparsity_mean: fraction of empty BV cells (paper's central
            difficulty).
        scenario_counts: pairs per scenario flavor.
        oncoming_fraction: pairs with |relative yaw| > 90 degrees.
    """

    num_pairs: int
    selection_rate: float
    distance_percentiles: dict[int, float]
    common_car_percentiles: dict[int, float]
    points_per_scan_mean: float
    bv_sparsity_mean: float
    scenario_counts: dict[str, int]
    oncoming_fraction: float


def compute_dataset_statistics(dataset: V2VDatasetSim,
                               max_pairs: int | None = None) -> DatasetStatistics:
    """Characterize (a slice of) a dataset."""
    n = len(dataset) if max_pairs is None else min(max_pairs, len(dataset))
    distances, commons, points, sparsities = [], [], [], []
    scenario_counts: dict[str, int] = {}
    oncoming = 0
    for index in range(n):
        pair = dataset[index].pair
        distances.append(pair.distance)
        commons.append(pair.num_common_vehicles)
        points.append(len(pair.ego_cloud))
        points.append(len(pair.other_cloud))
        sparsities.append(height_map(pair.ego_cloud, 0.8, 76.8).sparsity())
        kind = str(pair.scenario_kind.value)
        scenario_counts[kind] = scenario_counts.get(kind, 0) + 1
        if abs(np.degrees(pair.gt_relative.theta)) > 90.0:
            oncoming += 1

    return DatasetStatistics(
        num_pairs=n,
        selection_rate=dataset.selection_rate(sample=min(n, 12)),
        distance_percentiles=percentile_summary(distances),
        common_car_percentiles=percentile_summary(commons),
        points_per_scan_mean=float(np.mean(points)),
        bv_sparsity_mean=float(np.mean(sparsities)),
        scenario_counts=scenario_counts,
        oncoming_fraction=oncoming / max(n, 1),
    )


def run_dataset_stats(num_pairs: int = 12, seed: int = 2024, *,
                      workers: int = 1) -> DatasetStatistics:
    del workers  # characterization is a single pass; not sharded
    dataset = V2VDatasetSim(DatasetConfig(num_pairs=num_pairs, seed=seed))
    return compute_dataset_statistics(dataset)


def format_dataset_stats(result: DatasetStatistics) -> str:
    d = result.distance_percentiles
    c = result.common_car_percentiles
    return "\n".join([
        f"Dataset characterization over {result.num_pairs} pairs "
        "(V2V4Real substitute):",
        f"  selection rate (>= 2 common cars on first draw): "
        f"{result.selection_rate * 100:.0f} %  (paper: 12K of 20K = 60 %)",
        f"  inter-vehicle distance (m): p10={d[10]:.0f} p50={d[50]:.0f} "
        f"p90={d[90]:.0f}",
        f"  commonly observed cars:     p10={c[10]:.0f} p50={c[50]:.0f} "
        f"p90={c[90]:.0f}",
        f"  lidar returns per scan:     "
        f"{result.points_per_scan_mean:,.0f}",
        f"  BV image sparsity:          "
        f"{result.bv_sparsity_mean * 100:.1f} % empty cells",
        f"  scenario mix:               {result.scenario_counts}",
        f"  oncoming pairs (|yaw|>90):  "
        f"{result.oncoming_fraction * 100:.0f} %",
    ])


register(ExperimentSpec(
    name="dataset-stats", runner=run_dataset_stats,
    formatter=format_dataset_stats,
    description="simulated-dataset characterization",
    paper_artifact="Sec. V", parallelizable=False))
