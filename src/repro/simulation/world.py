"""Procedural street-world generation.

A world is a flat ground plane populated with the object classes that
matter to BB-Align: tall static landmarks (building walls, tree crowns,
poles) that the BV image matching keys on, and vehicles (parked and
moving) that stage 2 aligns.  Worlds are generated along a straight
two-lane road on the x-axis — the dominant geometry of the V2V4Real
drives — with scenario flavors controlling landmark and traffic density.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.boxes.box import Box3D
from repro.geometry.angles import wrap_to_pi
from repro.simulation.road import RoadModel, make_road

__all__ = ["Building", "Tree", "Pole", "SimVehicle", "WorldModel",
           "WorldConfig", "ScenarioKind", "generate_world"]


@dataclass(frozen=True)
class Building:
    """An axis-oriented rectangular building.

    Attributes:
        center_x, center_y: footprint center.
        size_x, size_y: footprint extents.
        yaw: footprint rotation (radians).
        height: roof height above ground.
    """

    center_x: float
    center_y: float
    size_x: float
    size_y: float
    yaw: float
    height: float

    def wall_segments(self) -> np.ndarray:
        """(4, 2, 2) array of wall segments (corner -> next corner)."""
        half = np.array([[0.5, 0.5], [-0.5, 0.5], [-0.5, -0.5], [0.5, -0.5]])
        local = half * np.array([self.size_x, self.size_y])
        c, s = np.cos(self.yaw), np.sin(self.yaw)
        rot = np.array([[c, -s], [s, c]])
        corners = local @ rot.T + np.array([self.center_x, self.center_y])
        return np.stack([corners, np.roll(corners, -1, axis=0)], axis=1)


@dataclass(frozen=True)
class Tree:
    """A tree: trunk (thin cylinder) plus crown (wide cylinder).

    Attributes:
        x, y: trunk position.
        trunk_radius: trunk cylinder radius.
        crown_radius: crown cylinder radius.
        crown_base: height where the crown starts.
        height: total height.
    """

    x: float
    y: float
    trunk_radius: float
    crown_radius: float
    crown_base: float
    height: float


@dataclass(frozen=True)
class Pole:
    """A utility/light pole — thin, tall, a crisp BV landmark."""

    x: float
    y: float
    radius: float
    height: float


@dataclass(frozen=True)
class SimVehicle:
    """A vehicle in the world.

    Attributes:
        box: 3-D bounding box in world coordinates (center z at half
            height, i.e. the box sits on the ground).
        velocity: planar speed along the box yaw (m/s); 0 for parked cars.
        vehicle_id: stable identity for common-car bookkeeping.
    """

    box: Box3D
    velocity: float
    vehicle_id: int

    @property
    def is_moving(self) -> bool:
        return abs(self.velocity) > 0.1


@dataclass(frozen=True)
class WorldModel:
    """Everything the lidar simulator can see.

    ``road`` is the centerline the corridor was generated around (None
    for hand-built worlds); ``extent`` is half the corridor arc length.
    """

    buildings: tuple[Building, ...]
    trees: tuple[Tree, ...]
    poles: tuple[Pole, ...]
    vehicles: tuple[SimVehicle, ...]
    extent: float
    road: "RoadModel | None" = None

    def vehicle_boxes(self) -> list[Box3D]:
        return [v.box for v in self.vehicles]


class ScenarioKind(str, enum.Enum):
    """Scenario flavors mirroring the V2V4Real drive mix."""

    URBAN = "urban"          # dense buildings and traffic
    SUBURBAN = "suburban"    # moderate landmarks, light traffic
    HIGHWAY = "highway"      # sparse landmarks (the hard case), fast traffic
    OPEN = "open"            # almost no landmarks — recovery should fail


@dataclass(frozen=True)
class WorldConfig:
    """Generation knobs.

    Densities are per 100 m of road corridor (both sides combined).

    Attributes:
        kind: scenario flavor; presets override densities unless the
            caller sets ``override_densities``.
        corridor_length: total road length to populate (meters).
        road_half_width: lane center offset from the road axis.
        building_density: buildings per 100 m.
        tree_density: trees per 100 m.
        pole_density: poles per 100 m.
        parked_density: parked cars per 100 m.
        traffic_density: moving cars per 100 m.
        override_densities: use the explicit densities instead of the
            ``kind`` preset.
    """

    kind: ScenarioKind = ScenarioKind.SUBURBAN
    corridor_length: float = 300.0
    road_half_width: float = 3.5
    building_density: float = 8.0
    tree_density: float = 6.0
    pole_density: float = 2.0
    parked_density: float = 3.0
    traffic_density: float = 4.0
    override_densities: bool = False

    def resolved(self) -> "WorldConfig":
        """Apply the ``kind`` preset unless densities are overridden."""
        if self.override_densities:
            return self
        presets = {
            ScenarioKind.URBAN: dict(building_density=14.0, tree_density=5.0,
                                     pole_density=3.0, parked_density=6.0,
                                     traffic_density=8.0),
            ScenarioKind.SUBURBAN: dict(building_density=8.0, tree_density=7.0,
                                        pole_density=2.0, parked_density=3.0,
                                        traffic_density=4.0),
            ScenarioKind.HIGHWAY: dict(building_density=1.5, tree_density=3.0,
                                       pole_density=1.5, parked_density=0.0,
                                       traffic_density=6.0),
            ScenarioKind.OPEN: dict(building_density=0.2, tree_density=0.5,
                                    pole_density=0.3, parked_density=0.0,
                                    traffic_density=1.0),
        }
        values = presets[self.kind]
        return WorldConfig(kind=self.kind,
                           corridor_length=self.corridor_length,
                           road_half_width=self.road_half_width,
                           override_densities=True, **values)


_CAR_LENGTH_RANGE = (4.2, 5.2)
_CAR_WIDTH_RANGE = (1.8, 2.1)
_CAR_HEIGHT_RANGE = (1.5, 1.9)


def _make_car(rng: np.random.Generator, x: float, y: float, yaw: float,
              velocity: float, vehicle_id: int) -> SimVehicle:
    length = rng.uniform(*_CAR_LENGTH_RANGE)
    width = rng.uniform(*_CAR_WIDTH_RANGE)
    height = rng.uniform(*_CAR_HEIGHT_RANGE)
    box = Box3D(x, y, height / 2.0, length, width, height, yaw)
    return SimVehicle(box=box, velocity=velocity, vehicle_id=vehicle_id)


def generate_world(config: WorldConfig | None = None,
                   rng: np.random.Generator | int | None = None) -> WorldModel:
    """Generate a random street world around a curved road.

    The road is a piecewise-constant-curvature centerline through the
    origin (see :mod:`repro.simulation.road`).  The corridor is split into
    blocks of ~60-90 m, each with its own density multiplier and building
    style, so scenery varies along the drive the way real streets do —
    both properties (curvature and block variation) are what prevents one
    stretch of road from aliasing onto another during image matching.

    Objects are placed in road coordinates (arc length s, signed lateral
    offset) and mapped to world coordinates through the centerline frame.

    Args:
        config: generation parameters (scenario presets applied).
        rng: generator or seed.

    Returns:
        A :class:`WorldModel` carrying the generated road.
    """
    config = (config or WorldConfig()).resolved()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    road = make_road(length=config.corridor_length, rng=rng)
    half = config.corridor_length / 2.0
    scale = config.corridor_length / 100.0

    # Blocks: density and style vary along the corridor.
    block_len = rng.uniform(55.0, 90.0)
    n_blocks = int(np.ceil(config.corridor_length / block_len)) + 1
    block_density = np.exp(rng.normal(0.0, 0.55, size=n_blocks))
    block_height = rng.uniform(0.6, 1.6, size=n_blocks)

    def block_of(s: float) -> int:
        return min(int((s + half) / block_len), n_blocks - 1)

    def place(s: float, lateral: float, yaw_jitter: float = 0.0):
        pose = road.pose_at(s, lateral)
        return pose.tx, pose.ty, wrap_to_pi(pose.theta + yaw_jitter)

    buildings: list[Building] = []
    n_buildings = rng.poisson(config.building_density * scale)
    for _ in range(n_buildings):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        setback = rng.uniform(6.0, 25.0)
        size_s = rng.uniform(8.0, 28.0)
        size_n = rng.uniform(6.0, 20.0)
        lateral = side * (config.road_half_width + setback + size_n / 2.0)
        x, y, yaw = place(s_pos, lateral, rng.normal(0.0, np.deg2rad(8.0)))
        height = rng.uniform(4.0, 15.0) * block_height[block_of(s_pos)]
        main = Building(x, y, size_s, size_n, yaw, height)
        buildings.append(main)
        # Facade articulation: annex wings at jittered offsets create the
        # corner/height-step structure real BV images are full of — and
        # that keypoint matching needs to break the translational
        # self-similarity of a bare straight wall.
        for _ in range(rng.integers(0, 3)):
            a_s = s_pos + rng.uniform(-size_s / 2.0, size_s / 2.0)
            a_lat = lateral - side * rng.uniform(0.3, 0.7) * size_n
            ax, ay, ayaw = place(a_s, a_lat,
                                 rng.normal(0.0, np.deg2rad(12.0)))
            buildings.append(Building(ax, ay,
                                      rng.uniform(3.0, 9.0),
                                      rng.uniform(3.0, 8.0),
                                      ayaw, height * rng.uniform(0.4, 0.9)))

    # Fences and free-standing walls: thin, car-height structures along
    # and across property lines, at many orientations.
    n_fences = rng.poisson(config.building_density * scale * 0.8)
    for _ in range(n_fences):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        along_road = rng.random() < 0.5
        length = rng.uniform(6.0, 25.0)
        lateral = side * (config.road_half_width + rng.uniform(1.5, 15.0))
        jitter = (rng.normal(0.0, np.deg2rad(5.0)) if along_road
                  else rng.normal(np.pi / 2.0, np.deg2rad(5.0)))
        x, y, yaw = place(s_pos, lateral, jitter)
        buildings.append(Building(x, y, length, 0.25, yaw,
                                  rng.uniform(1.4, 2.4)))

    trees: list[Tree] = []
    n_trees = rng.poisson(config.tree_density * scale)
    for _ in range(n_trees):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        pt = road.point_at(s_pos, side * (config.road_half_width
                                          + rng.uniform(2.0, 12.0)))
        trees.append(Tree(x=float(pt[0]), y=float(pt[1]),
                          trunk_radius=rng.uniform(0.15, 0.35),
                          crown_radius=rng.uniform(1.2, 3.0),
                          crown_base=rng.uniform(1.8, 3.0),
                          height=rng.uniform(5.0, 12.0)))
    # Bushes/hedges: low discrete blobs near the road edge.
    n_bushes = rng.poisson(config.tree_density * scale * 0.8)
    for _ in range(n_bushes):
        side = rng.choice([-1.0, 1.0])
        pt = road.point_at(rng.uniform(-half, half),
                           side * (config.road_half_width
                                   + rng.uniform(0.8, 6.0)))
        trees.append(Tree(x=float(pt[0]), y=float(pt[1]),
                          trunk_radius=0.1,
                          crown_radius=rng.uniform(0.5, 1.4),
                          crown_base=0.0,
                          height=rng.uniform(0.8, 2.2)))

    poles: list[Pole] = []
    n_poles = rng.poisson(config.pole_density * scale)
    for _ in range(n_poles):
        side = rng.choice([-1.0, 1.0])
        pt = road.point_at(rng.uniform(-half, half),
                           side * (config.road_half_width
                                   + rng.uniform(0.5, 2.0)))
        poles.append(Pole(x=float(pt[0]), y=float(pt[1]),
                          radius=rng.uniform(0.1, 0.2),
                          height=rng.uniform(6.0, 10.0)))

    vehicles: list[SimVehicle] = []
    vehicle_id = 0
    n_parked = rng.poisson(config.parked_density * scale)
    for _ in range(n_parked):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = side * (config.road_half_width + rng.uniform(0.3, 1.2))
        jitter = rng.normal(0.0, np.deg2rad(3.0))
        if side < 0:
            jitter = jitter + np.pi
        x, y, yaw = place(s_pos, lateral, jitter)
        vehicles.append(_make_car(rng, x, y, float(yaw), 0.0, vehicle_id))
        vehicle_id += 1

    n_moving = rng.poisson(config.traffic_density * scale)
    lane_offset = config.road_half_width / 2.0
    for _ in range(n_moving):
        direction = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = -direction * lane_offset  # right-hand traffic
        jitter = 0.0 if direction > 0 else np.pi
        x, y, yaw = place(s_pos, lateral, jitter)
        speed = rng.uniform(5.0, 18.0)
        vehicles.append(_make_car(rng, x, y, float(yaw),
                                  float(speed), vehicle_id))
        vehicle_id += 1

    # Remove vehicle-vehicle overlaps (keep earlier = parked first).
    kept: list[SimVehicle] = []
    for vehicle in vehicles:
        clash = any(
            np.hypot(vehicle.box.center_x - other.box.center_x,
                     vehicle.box.center_y - other.box.center_y) < 6.0
            for other in kept)
        if not clash:
            kept.append(vehicle)

    return WorldModel(buildings=tuple(buildings), trees=tuple(trees),
                      poles=tuple(poles), vehicles=tuple(kept),
                      extent=half, road=road)
