"""Procedural street-world generation.

A world is a flat ground plane populated with the object classes that
matter to BB-Align: tall static landmarks (building walls, tree crowns,
poles) that the BV image matching keys on, and vehicles (parked and
moving) that stage 2 aligns.  Worlds are generated along a straight
two-lane road on the x-axis — the dominant geometry of the V2V4Real
drives — with scenario flavors controlling landmark and traffic density.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.boxes.box import Box3D
from repro.geometry.angles import wrap_to_pi
from repro.pointcloud.cloud import PointLabel
from repro.simulation.road import RoadModel, make_road

__all__ = ["Building", "Tree", "Pole", "SimVehicle", "WorldModel",
           "WorldConfig", "ScenarioKind", "generate_world",
           "share_static_geometry"]


@dataclass(frozen=True)
class Building:
    """An axis-oriented rectangular building.

    Attributes:
        center_x, center_y: footprint center.
        size_x, size_y: footprint extents.
        yaw: footprint rotation (radians).
        height: roof height above ground.
    """

    center_x: float
    center_y: float
    size_x: float
    size_y: float
    yaw: float
    height: float

    def wall_segments(self) -> np.ndarray:
        """(4, 2, 2) array of wall segments (corner -> next corner)."""
        half = np.array([[0.5, 0.5], [-0.5, 0.5], [-0.5, -0.5], [0.5, -0.5]])
        local = half * np.array([self.size_x, self.size_y])
        c, s = np.cos(self.yaw), np.sin(self.yaw)
        rot = np.array([[c, -s], [s, c]])
        corners = local @ rot.T + np.array([self.center_x, self.center_y])
        return np.stack([corners, np.roll(corners, -1, axis=0)], axis=1)


@dataclass(frozen=True)
class Tree:
    """A tree: trunk (thin cylinder) plus crown (wide cylinder).

    Attributes:
        x, y: trunk position.
        trunk_radius: trunk cylinder radius.
        crown_radius: crown cylinder radius.
        crown_base: height where the crown starts.
        height: total height.
    """

    x: float
    y: float
    trunk_radius: float
    crown_radius: float
    crown_base: float
    height: float


@dataclass(frozen=True)
class Pole:
    """A utility/light pole — thin, tall, a crisp BV landmark."""

    x: float
    y: float
    radius: float
    height: float


@dataclass(frozen=True)
class SimVehicle:
    """A vehicle in the world.

    Attributes:
        box: 3-D bounding box in world coordinates (center z at half
            height, i.e. the box sits on the ground).
        velocity: planar speed along the box yaw (m/s); 0 for parked cars.
        vehicle_id: stable identity for common-car bookkeeping.
    """

    box: Box3D
    velocity: float
    vehicle_id: int

    @property
    def is_moving(self) -> bool:
        return abs(self.velocity) > 0.1


class _StaticGeometry:
    """World-frame obstacle arrays for everything that never moves.

    Built once per world by :meth:`WorldModel.static_geometry` and reused
    by every scan: the per-scan work reduces to one stacked rigid
    transform instead of per-object Python loops.  Walls are stored as
    (B, 8, 2) per-building corner runs (4 segments x 2 endpoints) so the
    sensor-frame transform can be applied as a stacked ``(B, 8, 2) @
    (2, 2)`` matmul — bit-identical to the per-building ``SE2.apply``
    calls the reference simulator makes.  Circles likewise keep the
    (C, 1, 2) single-point shape of the reference per-object transforms.
    """

    __slots__ = ("wall_points", "wall_zmax", "wall_label",
                 "circle_points", "circle_radii",
                 "circ_zmin", "circ_zmax", "circ_label")

    def __init__(self, wall_points: np.ndarray, wall_zmax: np.ndarray,
                 wall_label: np.ndarray, circle_points: np.ndarray,
                 circle_radii: np.ndarray, circ_zmin: np.ndarray,
                 circ_zmax: np.ndarray, circ_label: np.ndarray) -> None:
        self.wall_points = wall_points        # (B, 8, 2) world frame
        self.wall_zmax = wall_zmax            # (4B,)
        self.wall_label = wall_label          # (4B,) int32
        self.circle_points = circle_points    # (C, 1, 2) world frame
        self.circle_radii = circle_radii      # (C,)
        self.circ_zmin = circ_zmin            # (C,)
        self.circ_zmax = circ_zmax            # (C,)
        self.circ_label = circ_label          # (C,) int32


class _GeometryCacheCell:
    """One-slot mutable holder for a lazily built :class:`_StaticGeometry`.

    The indirection lets frozen :class:`WorldModel` copies that share the
    same static objects (see :func:`share_static_geometry`) also share the
    cache *before* it is built — whichever copy scans first fills it for
    all of them.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: _StaticGeometry | None = None


def _build_static_geometry(world: "WorldModel") -> _StaticGeometry:
    buildings = world.buildings
    if buildings:
        # All buildings' wall segments at once.  The per-building
        # (4, 2) @ (2, 2) corner rotation of Building.wall_segments()
        # becomes one batched (B, 4, 2) @ (B, 2, 2) matmul, which runs
        # the same per-slice GEMM — corners come out bit-identical.
        attrs = np.array([(b.center_x, b.center_y, b.size_x, b.size_y,
                           b.yaw, b.height) for b in buildings])
        half = np.array([[0.5, 0.5], [-0.5, 0.5], [-0.5, -0.5], [0.5, -0.5]])
        local = half[None, :, :] * attrs[:, None, 2:4]
        c, s = np.cos(attrs[:, 4]), np.sin(attrs[:, 4])
        rot_t = np.empty((len(buildings), 2, 2))
        rot_t[:, 0, 0] = c
        rot_t[:, 0, 1] = s
        rot_t[:, 1, 0] = -s
        rot_t[:, 1, 1] = c
        corners = local @ rot_t + attrs[:, None, 0:2]        # (B, 4, 2)
        wall_points = np.stack(
            [corners, np.roll(corners, -1, axis=1)], axis=2).reshape(-1, 8, 2)
        wall_zmax = np.repeat(attrs[:, 5], 4)
    else:
        wall_points = np.empty((0, 8, 2))
        wall_zmax = np.empty(0)
    wall_label = np.full(4 * len(buildings), int(PointLabel.BUILDING),
                         dtype=np.int32)

    # Circles: two per tree (trunk below the crown base, crown above it),
    # one per pole — interleaved exactly like the reference's append
    # order (trunk, crown per tree, then poles).
    n_trees, n_poles = len(world.trees), len(world.poles)
    if n_trees or n_poles:
        tree_attrs = np.array([(t.x, t.y, t.trunk_radius, t.crown_radius,
                                t.crown_base, t.height) for t in world.trees]
                              ).reshape(n_trees, 6)
        pole_attrs = np.array([(p.x, p.y, p.radius, p.height)
                               for p in world.poles]).reshape(n_poles, 4)
        centers = np.concatenate([np.repeat(tree_attrs[:, 0:2], 2, axis=0),
                                  pole_attrs[:, 0:2]])
        radii = np.concatenate([tree_attrs[:, 2:4].reshape(-1),
                                pole_attrs[:, 2]])
        zeros = np.zeros(n_trees)
        circ_zmin = np.concatenate([
            np.stack([zeros, tree_attrs[:, 4]], axis=1).reshape(-1),
            np.zeros(n_poles)])
        circ_zmax = np.concatenate([tree_attrs[:, 4:6].reshape(-1),
                                    pole_attrs[:, 3]])
        circ_label = np.concatenate([
            np.full(2 * n_trees, int(PointLabel.TREE), dtype=np.int32),
            np.full(n_poles, int(PointLabel.POLE), dtype=np.int32)])
        circle_points = centers.reshape(-1, 1, 2)
    else:
        circle_points = np.empty((0, 1, 2))
        radii = circ_zmin = circ_zmax = np.empty(0)
        circ_label = np.empty(0, dtype=np.int32)
    return _StaticGeometry(
        wall_points, wall_zmax, wall_label, circle_points,
        radii, circ_zmin, circ_zmax, circ_label)


@dataclass(frozen=True)
class WorldModel:
    """Everything the lidar simulator can see.

    ``road`` is the centerline the corridor was generated around (None
    for hand-built worlds); ``extent`` is half the corridor arc length.

    Static geometry caching: buildings, trees and poles never move, so
    the simulator caches their concatenated world-frame arrays on the
    instance (lazily, on first scan).  The model is frozen, which makes
    the cache trivially valid for its lifetime: "modifying" a world means
    constructing a new :class:`WorldModel`, which starts with a fresh,
    empty cache.  Copies that share the same ``buildings``/``trees``/
    ``poles`` tuples (e.g. vehicle-set swaps) can share the cache through
    :func:`share_static_geometry`.  The cache never pickles — a world
    sent to a worker process rebuilds it on first use.
    """

    buildings: tuple[Building, ...]
    trees: tuple[Tree, ...]
    poles: tuple[Pole, ...]
    vehicles: tuple[SimVehicle, ...]
    extent: float
    road: "RoadModel | None" = None

    def vehicle_boxes(self) -> list[Box3D]:
        return [v.box for v in self.vehicles]

    def _geometry_cell(self) -> _GeometryCacheCell:
        cell = self.__dict__.get("_static_geometry_cell")
        if cell is None:
            cell = _GeometryCacheCell()
            object.__setattr__(self, "_static_geometry_cell", cell)
        return cell

    def static_geometry(self) -> _StaticGeometry:
        """The cached world-frame arrays for buildings/trees/poles."""
        cell = self._geometry_cell()
        if cell.value is None:
            cell.value = _build_static_geometry(self)
        return cell.value

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_static_geometry_cell", None)
        return state


def share_static_geometry(source: WorldModel, dest: WorldModel) -> WorldModel:
    """Let ``dest`` reuse ``source``'s static-geometry cache.

    Only legal — and only applied — when the two worlds carry the *same*
    static object tuples (identity, not equality): that is the
    invalidation contract.  Returns ``dest`` for chaining.
    """
    if (dest.buildings is source.buildings and dest.trees is source.trees
            and dest.poles is source.poles):
        object.__setattr__(dest, "_static_geometry_cell",
                           source._geometry_cell())
    return dest


class ScenarioKind(str, enum.Enum):
    """Scenario flavors mirroring the V2V4Real drive mix."""

    URBAN = "urban"          # dense buildings and traffic
    SUBURBAN = "suburban"    # moderate landmarks, light traffic
    HIGHWAY = "highway"      # sparse landmarks (the hard case), fast traffic
    OPEN = "open"            # almost no landmarks — recovery should fail


@dataclass(frozen=True)
class WorldConfig:
    """Generation knobs.

    Densities are per 100 m of road corridor (both sides combined).

    Attributes:
        kind: scenario flavor; presets override densities unless the
            caller sets ``override_densities``.
        corridor_length: total road length to populate (meters).
        road_half_width: lane center offset from the road axis.
        building_density: buildings per 100 m.
        tree_density: trees per 100 m.
        pole_density: poles per 100 m.
        parked_density: parked cars per 100 m.
        traffic_density: moving cars per 100 m.
        override_densities: use the explicit densities instead of the
            ``kind`` preset.
    """

    kind: ScenarioKind = ScenarioKind.SUBURBAN
    corridor_length: float = 300.0
    road_half_width: float = 3.5
    building_density: float = 8.0
    tree_density: float = 6.0
    pole_density: float = 2.0
    parked_density: float = 3.0
    traffic_density: float = 4.0
    override_densities: bool = False

    def resolved(self) -> "WorldConfig":
        """Apply the ``kind`` preset unless densities are overridden."""
        if self.override_densities:
            return self
        presets = {
            ScenarioKind.URBAN: dict(building_density=14.0, tree_density=5.0,
                                     pole_density=3.0, parked_density=6.0,
                                     traffic_density=8.0),
            ScenarioKind.SUBURBAN: dict(building_density=8.0, tree_density=7.0,
                                        pole_density=2.0, parked_density=3.0,
                                        traffic_density=4.0),
            ScenarioKind.HIGHWAY: dict(building_density=1.5, tree_density=3.0,
                                       pole_density=1.5, parked_density=0.0,
                                       traffic_density=6.0),
            ScenarioKind.OPEN: dict(building_density=0.2, tree_density=0.5,
                                    pole_density=0.3, parked_density=0.0,
                                    traffic_density=1.0),
        }
        values = presets[self.kind]
        return WorldConfig(kind=self.kind,
                           corridor_length=self.corridor_length,
                           road_half_width=self.road_half_width,
                           override_densities=True, **values)


_CAR_LENGTH_RANGE = (4.2, 5.2)
_CAR_WIDTH_RANGE = (1.8, 2.1)
_CAR_HEIGHT_RANGE = (1.5, 1.9)


def _make_car(rng: np.random.Generator, x: float, y: float, yaw: float,
              velocity: float, vehicle_id: int) -> SimVehicle:
    length = rng.uniform(*_CAR_LENGTH_RANGE)
    width = rng.uniform(*_CAR_WIDTH_RANGE)
    height = rng.uniform(*_CAR_HEIGHT_RANGE)
    box = Box3D(x, y, height / 2.0, length, width, height, yaw)
    return SimVehicle(box=box, velocity=velocity, vehicle_id=vehicle_id)


def generate_world(config: WorldConfig | None = None,
                   rng: np.random.Generator | int | None = None) -> WorldModel:
    """Generate a random street world around a curved road.

    The road is a piecewise-constant-curvature centerline through the
    origin (see :mod:`repro.simulation.road`).  The corridor is split into
    blocks of ~60-90 m, each with its own density multiplier and building
    style, so scenery varies along the drive the way real streets do —
    both properties (curvature and block variation) are what prevents one
    stretch of road from aliasing onto another during image matching.

    Objects are placed in road coordinates (arc length s, signed lateral
    offset) and mapped to world coordinates through the centerline frame.

    Args:
        config: generation parameters (scenario presets applied).
        rng: generator or seed.

    Returns:
        A :class:`WorldModel` carrying the generated road.
    """
    config = (config or WorldConfig()).resolved()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    road = make_road(length=config.corridor_length, rng=rng)
    half = config.corridor_length / 2.0
    scale = config.corridor_length / 100.0

    # Blocks: density and style vary along the corridor.
    block_len = rng.uniform(55.0, 90.0)
    n_blocks = int(np.ceil(config.corridor_length / block_len)) + 1
    block_density = np.exp(rng.normal(0.0, 0.55, size=n_blocks))
    block_height = rng.uniform(0.6, 1.6, size=n_blocks)

    def block_of(s: float) -> int:
        return min(int((s + half) / block_len), n_blocks - 1)

    # Placement is deferred: ``road.pose_at`` consumes no randomness, so
    # the loops below draw in the reference order while only *recording*
    # (s, lateral, yaw_jitter) placement requests plus the remaining
    # constructor arguments.  All road frames are then evaluated in one
    # batched :meth:`RoadModel.frames_at` call (bit-identical per
    # element to the per-object ``pose_at``), and the objects built from
    # the results — ``_reference_generate_world`` is the spec.
    req_s: list[float] = []
    req_lat: list[float] = []
    req_jit: list[float] = []

    def request(s: float, lateral: float, yaw_jitter: float = 0.0) -> int:
        req_s.append(s)
        req_lat.append(lateral)
        req_jit.append(yaw_jitter)
        return len(req_s) - 1

    building_req: list[tuple[int, float, float, float]] = []
    n_buildings = rng.poisson(config.building_density * scale)
    for _ in range(n_buildings):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        setback = rng.uniform(6.0, 25.0)
        size_s = rng.uniform(8.0, 28.0)
        size_n = rng.uniform(6.0, 20.0)
        lateral = side * (config.road_half_width + setback + size_n / 2.0)
        at = request(s_pos, lateral, rng.normal(0.0, np.deg2rad(8.0)))
        height = rng.uniform(4.0, 15.0) * block_height[block_of(s_pos)]
        building_req.append((at, size_s, size_n, height))
        # Facade articulation: annex wings at jittered offsets create the
        # corner/height-step structure real BV images are full of — and
        # that keypoint matching needs to break the translational
        # self-similarity of a bare straight wall.
        for _ in range(rng.integers(0, 3)):
            a_s = s_pos + rng.uniform(-size_s / 2.0, size_s / 2.0)
            a_lat = lateral - side * rng.uniform(0.3, 0.7) * size_n
            a_at = request(a_s, a_lat, rng.normal(0.0, np.deg2rad(12.0)))
            building_req.append((a_at,
                                 rng.uniform(3.0, 9.0),
                                 rng.uniform(3.0, 8.0),
                                 height * rng.uniform(0.4, 0.9)))

    # Fences and free-standing walls: thin, car-height structures along
    # and across property lines, at many orientations.
    n_fences = rng.poisson(config.building_density * scale * 0.8)
    for _ in range(n_fences):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        along_road = rng.random() < 0.5
        length = rng.uniform(6.0, 25.0)
        lateral = side * (config.road_half_width + rng.uniform(1.5, 15.0))
        jitter = (rng.normal(0.0, np.deg2rad(5.0)) if along_road
                  else rng.normal(np.pi / 2.0, np.deg2rad(5.0)))
        at = request(s_pos, lateral, jitter)
        building_req.append((at, length, 0.25, rng.uniform(1.4, 2.4)))

    tree_req: list[tuple[int, float, float, float, float]] = []
    n_trees = rng.poisson(config.tree_density * scale)
    for _ in range(n_trees):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        at = request(s_pos, side * (config.road_half_width
                                    + rng.uniform(2.0, 12.0)))
        tree_req.append((at,
                         rng.uniform(0.15, 0.35),
                         rng.uniform(1.2, 3.0),
                         rng.uniform(1.8, 3.0),
                         rng.uniform(5.0, 12.0)))
    # Bushes/hedges: low discrete blobs near the road edge.
    n_bushes = rng.poisson(config.tree_density * scale * 0.8)
    for _ in range(n_bushes):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        at = request(s_pos, side * (config.road_half_width
                                    + rng.uniform(0.8, 6.0)))
        tree_req.append((at, 0.1, rng.uniform(0.5, 1.4), 0.0,
                         rng.uniform(0.8, 2.2)))

    pole_req: list[tuple[int, float, float]] = []
    n_poles = rng.poisson(config.pole_density * scale)
    for _ in range(n_poles):
        side = rng.choice([-1.0, 1.0])
        at = request(rng.uniform(-half, half),
                     side * (config.road_half_width
                             + rng.uniform(0.5, 2.0)))
        pole_req.append((at, rng.uniform(0.1, 0.2),
                         rng.uniform(6.0, 10.0)))

    car_req: list[tuple[int, float, float, float, float, int]] = []
    vehicle_id = 0
    n_parked = rng.poisson(config.parked_density * scale)
    for _ in range(n_parked):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = side * (config.road_half_width + rng.uniform(0.3, 1.2))
        jitter = rng.normal(0.0, np.deg2rad(3.0))
        if side < 0:
            jitter = jitter + np.pi
        at = request(s_pos, lateral, jitter)
        car_req.append((at,
                        rng.uniform(*_CAR_LENGTH_RANGE),
                        rng.uniform(*_CAR_WIDTH_RANGE),
                        rng.uniform(*_CAR_HEIGHT_RANGE),
                        0.0, vehicle_id))
        vehicle_id += 1

    n_moving = rng.poisson(config.traffic_density * scale)
    lane_offset = config.road_half_width / 2.0
    for _ in range(n_moving):
        direction = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = -direction * lane_offset  # right-hand traffic
        jitter = 0.0 if direction > 0 else np.pi
        at = request(s_pos, lateral, jitter)
        speed = rng.uniform(5.0, 18.0)
        car_req.append((at,
                        rng.uniform(*_CAR_LENGTH_RANGE),
                        rng.uniform(*_CAR_WIDTH_RANGE),
                        rng.uniform(*_CAR_HEIGHT_RANGE),
                        float(speed), vehicle_id))
        vehicle_id += 1

    if req_s:
        txs, tys, theta = road.frames_at(np.asarray(req_s),
                                         np.asarray(req_lat))
        yaws = wrap_to_pi(theta + np.asarray(req_jit))
    else:
        txs = tys = yaws = np.empty(0)

    buildings = [Building(float(txs[at]), float(tys[at]), size_s, size_n,
                          float(yaws[at]), height)
                 for at, size_s, size_n, height in building_req]
    trees = [Tree(x=float(txs[at]), y=float(tys[at]), trunk_radius=trunk,
                  crown_radius=crown, crown_base=base, height=height)
             for at, trunk, crown, base, height in tree_req]
    poles = [Pole(x=float(txs[at]), y=float(tys[at]), radius=radius,
                  height=height)
             for at, radius, height in pole_req]
    vehicles = [SimVehicle(box=Box3D(float(txs[at]), float(tys[at]),
                                     height / 2.0, length, width, height,
                                     float(yaws[at])),
                           velocity=velocity, vehicle_id=vid)
                for at, length, width, height, velocity, vid in car_req]

    # Remove vehicle-vehicle overlaps (keep earlier = parked first).
    kept: list[SimVehicle] = []
    for vehicle in vehicles:
        clash = any(
            np.hypot(vehicle.box.center_x - other.box.center_x,
                     vehicle.box.center_y - other.box.center_y) < 6.0
            for other in kept)
        if not clash:
            kept.append(vehicle)

    return WorldModel(buildings=tuple(buildings), trees=tuple(trees),
                      poles=tuple(poles), vehicles=tuple(kept),
                      extent=half, road=road)


def _reference_generate_world(config: WorldConfig | None = None,
                              rng: np.random.Generator | int | None = None
                              ) -> WorldModel:
    """Pre-rework :func:`generate_world`: one ``pose_at`` per object.

    Kept as the behavioral specification for the batched-placement fast
    path — same RNG draw sequence, bit-identical worlds
    (``tests/test_sim_equivalence.py`` enforces this).
    """
    config = (config or WorldConfig()).resolved()
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    road = make_road(length=config.corridor_length, rng=rng)
    half = config.corridor_length / 2.0
    scale = config.corridor_length / 100.0

    # Blocks: density and style vary along the corridor.
    block_len = rng.uniform(55.0, 90.0)
    n_blocks = int(np.ceil(config.corridor_length / block_len)) + 1
    block_density = np.exp(rng.normal(0.0, 0.55, size=n_blocks))
    block_height = rng.uniform(0.6, 1.6, size=n_blocks)

    def block_of(s: float) -> int:
        return min(int((s + half) / block_len), n_blocks - 1)

    def place(s: float, lateral: float, yaw_jitter: float = 0.0):
        pose = road.pose_at(s, lateral)
        return pose.tx, pose.ty, wrap_to_pi(pose.theta + yaw_jitter)

    buildings: list[Building] = []
    n_buildings = rng.poisson(config.building_density * scale)
    for _ in range(n_buildings):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        setback = rng.uniform(6.0, 25.0)
        size_s = rng.uniform(8.0, 28.0)
        size_n = rng.uniform(6.0, 20.0)
        lateral = side * (config.road_half_width + setback + size_n / 2.0)
        x, y, yaw = place(s_pos, lateral, rng.normal(0.0, np.deg2rad(8.0)))
        height = rng.uniform(4.0, 15.0) * block_height[block_of(s_pos)]
        main = Building(x, y, size_s, size_n, yaw, height)
        buildings.append(main)
        for _ in range(rng.integers(0, 3)):
            a_s = s_pos + rng.uniform(-size_s / 2.0, size_s / 2.0)
            a_lat = lateral - side * rng.uniform(0.3, 0.7) * size_n
            ax, ay, ayaw = place(a_s, a_lat,
                                 rng.normal(0.0, np.deg2rad(12.0)))
            buildings.append(Building(ax, ay,
                                      rng.uniform(3.0, 9.0),
                                      rng.uniform(3.0, 8.0),
                                      ayaw, height * rng.uniform(0.4, 0.9)))

    n_fences = rng.poisson(config.building_density * scale * 0.8)
    for _ in range(n_fences):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        along_road = rng.random() < 0.5
        length = rng.uniform(6.0, 25.0)
        lateral = side * (config.road_half_width + rng.uniform(1.5, 15.0))
        jitter = (rng.normal(0.0, np.deg2rad(5.0)) if along_road
                  else rng.normal(np.pi / 2.0, np.deg2rad(5.0)))
        x, y, yaw = place(s_pos, lateral, jitter)
        buildings.append(Building(x, y, length, 0.25, yaw,
                                  rng.uniform(1.4, 2.4)))

    trees: list[Tree] = []
    n_trees = rng.poisson(config.tree_density * scale)
    for _ in range(n_trees):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        if rng.random() > min(block_density[block_of(s_pos)], 1.6):
            continue
        pt = road.point_at(s_pos, side * (config.road_half_width
                                          + rng.uniform(2.0, 12.0)))
        trees.append(Tree(x=float(pt[0]), y=float(pt[1]),
                          trunk_radius=rng.uniform(0.15, 0.35),
                          crown_radius=rng.uniform(1.2, 3.0),
                          crown_base=rng.uniform(1.8, 3.0),
                          height=rng.uniform(5.0, 12.0)))
    n_bushes = rng.poisson(config.tree_density * scale * 0.8)
    for _ in range(n_bushes):
        side = rng.choice([-1.0, 1.0])
        pt = road.point_at(rng.uniform(-half, half),
                           side * (config.road_half_width
                                   + rng.uniform(0.8, 6.0)))
        trees.append(Tree(x=float(pt[0]), y=float(pt[1]),
                          trunk_radius=0.1,
                          crown_radius=rng.uniform(0.5, 1.4),
                          crown_base=0.0,
                          height=rng.uniform(0.8, 2.2)))

    poles: list[Pole] = []
    n_poles = rng.poisson(config.pole_density * scale)
    for _ in range(n_poles):
        side = rng.choice([-1.0, 1.0])
        pt = road.point_at(rng.uniform(-half, half),
                           side * (config.road_half_width
                                   + rng.uniform(0.5, 2.0)))
        poles.append(Pole(x=float(pt[0]), y=float(pt[1]),
                          radius=rng.uniform(0.1, 0.2),
                          height=rng.uniform(6.0, 10.0)))

    vehicles: list[SimVehicle] = []
    vehicle_id = 0
    n_parked = rng.poisson(config.parked_density * scale)
    for _ in range(n_parked):
        side = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = side * (config.road_half_width + rng.uniform(0.3, 1.2))
        jitter = rng.normal(0.0, np.deg2rad(3.0))
        if side < 0:
            jitter = jitter + np.pi
        x, y, yaw = place(s_pos, lateral, jitter)
        vehicles.append(_make_car(rng, x, y, float(yaw), 0.0, vehicle_id))
        vehicle_id += 1

    n_moving = rng.poisson(config.traffic_density * scale)
    lane_offset = config.road_half_width / 2.0
    for _ in range(n_moving):
        direction = rng.choice([-1.0, 1.0])
        s_pos = rng.uniform(-half, half)
        lateral = -direction * lane_offset  # right-hand traffic
        jitter = 0.0 if direction > 0 else np.pi
        x, y, yaw = place(s_pos, lateral, jitter)
        speed = rng.uniform(5.0, 18.0)
        vehicles.append(_make_car(rng, x, y, float(yaw),
                                  float(speed), vehicle_id))
        vehicle_id += 1

    # Remove vehicle-vehicle overlaps (keep earlier = parked first).
    kept: list[SimVehicle] = []
    for vehicle in vehicles:
        clash = any(
            np.hypot(vehicle.box.center_x - other.box.center_x,
                     vehicle.box.center_y - other.box.center_y) < 6.0
            for other in kept)
        if not clash:
            kept.append(vehicle)

    return WorldModel(buildings=tuple(buildings), trees=tuple(trees),
                      poles=tuple(poles), vehicles=tuple(kept),
                      extent=half, road=road)
