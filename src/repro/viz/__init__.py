"""Headless visualization: ASCII and PGM renderers.

No display stack is assumed (or available offline); these renderers
produce terminal ASCII art for quick inspection and binary PGM images for
anything that wants a real picture (every image viewer reads PGM).
Covers the paper's qualitative figures: BV images (Fig. 4 b/e), MIMs
(Fig. 4 c/f), match visualizations (Fig. 4 g), and BEV scene views with
boxes (Figs. 1, 5, 6).
"""

from repro.viz.ascii_art import render_bv_ascii, render_scene_ascii
from repro.viz.pgm import save_pgm
from repro.viz.render import (
    render_bv_image,
    render_match_image,
    render_mim_image,
    render_scene_image,
)

__all__ = [
    "render_bv_ascii",
    "render_bv_image",
    "render_match_image",
    "render_mim_image",
    "render_scene_ascii",
    "render_scene_image",
    "save_pgm",
]
