"""Terminal ASCII renderers for quick inspection."""

from __future__ import annotations

import numpy as np

from repro.bev.projection import BVImage
from repro.simulation.world import WorldModel

__all__ = ["render_bv_ascii", "render_scene_ascii"]

_RAMP = " .:-=+*#%@"


def render_bv_ascii(bv: BVImage | np.ndarray, width: int = 80) -> str:
    """Render a BV image as ASCII art (downsampled to ``width`` columns).

    Row 0 of the image (smallest y) is printed last so +y points up, the
    usual map orientation.
    """
    image = bv.image if isinstance(bv, BVImage) else np.asarray(bv,
                                                                dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    width = max(4, min(width, image.shape[1]))
    # Terminal cells are ~2x taller than wide; halve rows to compensate.
    step = image.shape[1] / width
    rows = int(image.shape[0] / step / 2)
    rows = max(rows, 2)

    peak = float(image.max())
    lines = []
    for r in range(rows):
        r0 = int(r * image.shape[0] / rows)
        r1 = max(int((r + 1) * image.shape[0] / rows), r0 + 1)
        line = []
        for c in range(width):
            c0 = int(c * image.shape[1] / width)
            c1 = max(int((c + 1) * image.shape[1] / width), c0 + 1)
            block = image[r0:r1, c0:c1].max()
            level = 0 if peak <= 0 else int(block / peak * (len(_RAMP) - 1))
            line.append(_RAMP[level])
        lines.append("".join(line))
    return "\n".join(reversed(lines))


def render_scene_ascii(world: WorldModel, half_extent: float = 60.0,
                       width: int = 80,
                       center: tuple[float, float] = (0.0, 0.0)) -> str:
    """Top-down ASCII map of a world: B = building, T = tree, p = pole,
    c = car, # = fence-like thin structure."""
    height = width // 2
    grid = np.full((height, width), " ", dtype="<U1")

    def mark(x: float, y: float, char: str) -> None:
        col = int((x - center[0] + half_extent) / (2 * half_extent) * width)
        row = int((y - center[1] + half_extent) / (2 * half_extent) * height)
        if 0 <= row < height and 0 <= col < width:
            grid[row, col] = char

    for building in world.buildings:
        char = "#" if min(building.size_x, building.size_y) < 1.0 else "B"
        for wall in building.wall_segments():
            n = max(int(np.linalg.norm(wall[1] - wall[0])), 2)
            for t in np.linspace(0, 1, n):
                point = wall[0] + t * (wall[1] - wall[0])
                mark(point[0], point[1], char)
    for tree in world.trees:
        mark(tree.x, tree.y, "T")
    for pole in world.poles:
        mark(pole.x, pole.y, "p")
    for vehicle in world.vehicles:
        mark(vehicle.box.center_x, vehicle.box.center_y, "c")
    mark(center[0], center[1], "E")

    return "\n".join("".join(row) for row in reversed(grid))
