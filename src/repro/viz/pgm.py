"""Binary PGM (P5) writer — the zero-dependency image format."""

from __future__ import annotations

import pathlib

import numpy as np

__all__ = ["save_pgm"]


def save_pgm(image: np.ndarray, path: str | pathlib.Path) -> pathlib.Path:
    """Write a 2-D array as an 8-bit binary PGM.

    Float images are min-max normalized to 0..255; uint8 images are
    written as-is.  Returns the written path.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if image.dtype != np.uint8:
        lo, hi = float(image.min()), float(image.max())
        scale = 255.0 / (hi - lo) if hi > lo else 0.0
        image = ((image - lo) * scale).astype(np.uint8)
    path = pathlib.Path(path)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode()
    path.write_bytes(header + image.tobytes())
    return path
