"""Raster renderers (uint8 arrays, savable via :func:`repro.viz.save_pgm`).

These regenerate the paper's qualitative figures from simulation data:
BV images and MIMs (Fig. 4), side-by-side match visualizations with
correspondence lines (Fig. 4 g), and BEV scene views with box outlines
(Figs. 1, 5, 6).
"""

from __future__ import annotations

import numpy as np

from repro.bev.mim import MIMResult
from repro.bev.projection import BVImage
from repro.boxes.box import Box2D
from repro.features.matching import MatchResult
from repro.pointcloud.cloud import PointCloud

__all__ = ["render_bv_image", "render_mim_image", "render_match_image",
           "render_scene_image"]


def render_bv_image(bv: BVImage) -> np.ndarray:
    """BV image as uint8, gamma-lifted so sparse structure is visible."""
    image = bv.image
    peak = float(image.max())
    if peak <= 0:
        return np.zeros(image.shape, dtype=np.uint8)
    normalized = np.sqrt(image / peak)  # gamma 0.5
    return (normalized * 255).astype(np.uint8)


def render_mim_image(mim: MIMResult) -> np.ndarray:
    """MIM as uint8: orientation index mapped over the gray ramp,
    amplitude-masked so empty regions stay black (Fig. 4 c/f look)."""
    valid = mim.valid_mask()
    levels = ((mim.mim.astype(float) + 1.0)
              / mim.num_orientations * 255.0)
    image = np.where(valid, levels, 0.0)
    return image.astype(np.uint8)


def _draw_line(image: np.ndarray, p0: np.ndarray, p1: np.ndarray,
               value: int) -> None:
    """Bresenham-ish line by dense sampling (good enough for overlays)."""
    n = int(max(abs(p1[0] - p0[0]), abs(p1[1] - p0[1]), 1)) * 2
    for t in np.linspace(0.0, 1.0, n):
        x = int(round(p0[0] + t * (p1[0] - p0[0])))
        y = int(round(p0[1] + t * (p1[1] - p0[1])))
        if 0 <= y < image.shape[0] and 0 <= x < image.shape[1]:
            image[y, x] = value


def render_match_image(bv_left: BVImage, bv_right: BVImage,
                       matches: MatchResult,
                       inlier_mask: np.ndarray | None = None,
                       max_lines: int = 60) -> np.ndarray:
    """Side-by-side BV images with correspondence lines (Fig. 4 g).

    Inlier matches (when a mask is given) draw at full white; outliers at
    mid gray.  Returns a single uint8 image.
    """
    left = render_bv_image(bv_left)
    right = render_bv_image(bv_right)
    height = max(left.shape[0], right.shape[0])
    gap = 8
    canvas = np.zeros((height, left.shape[1] + gap + right.shape[1]),
                      dtype=np.uint8)
    canvas[:left.shape[0], :left.shape[1]] = left
    canvas[:right.shape[0], left.shape[1] + gap:] = right

    offset = left.shape[1] + gap
    count = min(len(matches), max_lines)
    for i in range(count):
        src = matches.src_xy[i]
        dst = matches.dst_xy[i] + [offset, 0]
        is_inlier = bool(inlier_mask[i]) if inlier_mask is not None else True
        _draw_line(canvas, src, dst, 255 if is_inlier else 96)
    return canvas


def render_scene_image(clouds: list[PointCloud],
                       boxes: list[list[Box2D]] | None = None,
                       cell_size: float = 0.4,
                       half_extent: float = 60.0) -> np.ndarray:
    """Fused BEV scene view (Figs. 1/5): each cloud gets its own gray
    level; box outlines draw at full white.

    Args:
        clouds: point clouds already expressed in one common frame.
        boxes: per-source box lists (same frame), outlines overlaid.
        cell_size: raster resolution.
        half_extent: view covers [-half_extent, half_extent]^2.
    """
    size = int(round(2 * half_extent / cell_size))
    canvas = np.zeros((size, size), dtype=np.uint8)
    levels = np.linspace(120, 200, max(len(clouds), 1)).astype(np.uint8)
    for cloud, level in zip(clouds, levels):
        xy = cloud.xy
        keep = ((np.abs(xy[:, 0]) < half_extent)
                & (np.abs(xy[:, 1]) < half_extent))
        cols = ((xy[keep, 0] + half_extent) / cell_size).astype(int)
        rows = ((xy[keep, 1] + half_extent) / cell_size).astype(int)
        np.clip(cols, 0, size - 1, out=cols)
        np.clip(rows, 0, size - 1, out=rows)
        canvas[rows, cols] = np.maximum(canvas[rows, cols], level)

    if boxes:
        for box_list in boxes:
            for box in box_list:
                corners = box.corners()
                pix = (corners + half_extent) / cell_size
                for k in range(4):
                    _draw_line(canvas, pix[k], pix[(k + 1) % 4], 255)
    return canvas
