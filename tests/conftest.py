"""Shared fixtures.

Expensive simulation artifacts (worlds, scans, frame pairs, extracted
features) are session-scoped: they are deterministic, read-only in every
test that uses them, and dominate suite runtime if rebuilt per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.lidar import LidarConfig, simulate_scan
from repro.simulation.scenario import ScenarioConfig, make_frame_pair
from repro.simulation.world import WorldConfig, generate_world


@pytest.fixture(scope="session")
def small_world():
    """A deterministic suburban world."""
    return generate_world(WorldConfig(corridor_length=240.0), rng=42)


@pytest.fixture(scope="session")
def small_scan(small_world):
    """One lidar scan of the shared world from the origin."""
    from repro.geometry.se2 import SE2
    return simulate_scan(small_world, SE2(0.0, 0.0, -1.75),
                         LidarConfig(), rng=0)


@pytest.fixture(scope="session")
def frame_pair():
    """A deterministic mid-range frame pair."""
    return make_frame_pair(ScenarioConfig(distance=25.0), rng=7)


@pytest.fixture(scope="session")
def far_frame_pair():
    """A deterministic long-range frame pair."""
    return make_frame_pair(ScenarioConfig(distance=60.0), rng=11)


@pytest.fixture(scope="session")
def bv_matcher():
    return BVMatcher(BBAlignConfig())


@pytest.fixture(scope="session")
def pair_features(bv_matcher, frame_pair):
    """Stage-1 features for both vehicles of the shared pair."""
    ego = bv_matcher.extract_from_cloud(frame_pair.ego_cloud)
    other = bv_matcher.extract_from_cloud(frame_pair.other_cloud)
    return ego, other


@pytest.fixture(scope="session")
def tiny_dataset():
    """A 4-pair dataset for dataset-API tests."""
    return V2VDatasetSim(DatasetConfig(num_pairs=4, seed=99))


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
