"""End-to-end integration: simulator -> detectors -> BB-Align -> metrics.

These are the paper's headline behaviours exercised across module
boundaries on deterministic small datasets.
"""

import numpy as np
import pytest

from repro.baselines.vips import vips_graph_matching
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.detection.simulated import COBEVT_PROFILE, SimulatedDetector
from repro.metrics.pose_error import pose_errors
from repro.noise.pose_noise import PoseNoiseModel
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.scenario import ScenarioConfig, make_frame_pair
from repro.simulation.world import ScenarioKind, WorldConfig


@pytest.fixture(scope="module")
def sweep_outcomes():
    from repro.experiments.common import run_pose_recovery_sweep
    dataset = V2VDatasetSim(DatasetConfig(num_pairs=20, seed=2024))
    return run_pose_recovery_sweep(dataset, include_vips=True)


class TestHeadlineAccuracy:
    def test_majority_of_successes_under_1m_1deg(self, sweep_outcomes):
        """Paper: < 1 m and < 1 deg in ~80 % of (close-range, successful)
        cases."""
        successes = [o for o in sweep_outcomes
                     if o.success and o.distance < 70.0]
        assert len(successes) >= 3
        good = [o for o in successes
                if o.errors.translation < 1.0 and o.errors.rotation_deg < 1.0]
        assert len(good) / len(successes) >= 0.6

    def test_beats_vips_baseline(self, sweep_outcomes):
        """Paper Fig. 7: BB-Align dominates graph matching on translation."""
        n = len(sweep_outcomes)
        bb_good = sum(o.success and o.errors.translation < 1.0
                      for o in sweep_outcomes)
        vips_good = sum(o.vips_errors is not None
                        and o.vips_errors.translation < 1.0
                        for o in sweep_outcomes)
        assert bb_good > vips_good

    def test_success_criterion_filters_bad_estimates(self, sweep_outcomes):
        """Flagged-successful recoveries must be much better on average
        than flagged-failed ones (the point of the inlier thresholds)."""
        good = [o.errors.translation for o in sweep_outcomes if o.success]
        bad = [o.errors.translation for o in sweep_outcomes if not o.success]
        if good and bad:
            assert np.median(good) <= np.median(bad) + 0.1

    def test_stage2_improves_median_translation(self, sweep_outcomes):
        """Paper Fig. 14 direction: box alignment reduces translation
        error of successful recoveries."""
        successes = [o for o in sweep_outcomes if o.success]
        assert successes
        with_box = np.median([o.errors.translation for o in successes])
        without = np.median([o.stage1_errors.translation
                             for o in successes])
        assert with_box <= without + 0.05


class TestPoseErrorSeverityIndependence:
    def test_recovery_without_prior_pose(self):
        """BB-Align uses no prior pose, so its output is identical no
        matter how corrupted the GPS pose was — the paper's 'any
        severity' claim."""
        pair = make_frame_pair(ScenarioConfig(distance=20.0), rng=21)
        detector = SimulatedDetector(COBEVT_PROFILE)
        ego_dets = detector.detect(pair.ego_visible, 1)
        other_dets = detector.detect(pair.other_visible, 2)
        aligner = BBAlign()
        result = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                 [d.box for d in ego_dets],
                                 [d.box for d in other_dets], rng=0)
        # The recovery never saw the corrupted pose; verify it is close
        # to truth regardless of what the noise model would have done.
        noise = PoseNoiseModel(sigma_translation=50.0,
                               sigma_rotation_deg=180.0)
        _ = noise.corrupt(pair.gt_relative, rng=0)  # arbitrarily severe
        errors = pose_errors(result.transform, pair.gt_relative)
        assert errors.translation < 1.5


class TestScenarioDifficulty:
    def test_open_scenes_fail_more(self):
        """Paper: unsuccessful recoveries concentrate where landmarks are
        scarce."""
        def success_of(kind, seed):
            pair = make_frame_pair(ScenarioConfig(
                world=WorldConfig(kind=kind), distance=30.0), rng=seed)
            detector = SimulatedDetector()
            ego_dets = detector.detect(pair.ego_visible, seed)
            other_dets = detector.detect(pair.other_visible, seed + 1)
            result = BBAlign().recover(pair.ego_cloud, pair.other_cloud,
                                       [d.box for d in ego_dets],
                                       [d.box for d in other_dets], rng=0)
            return result.stage1.inliers_bv

        urban = [success_of(ScenarioKind.URBAN, s) for s in (1, 2, 3)]
        openk = [success_of(ScenarioKind.OPEN, s) for s in (1, 2, 3)]
        assert np.median(urban) > np.median(openk)


class TestBandwidth:
    def test_message_size_much_smaller_than_raw(self, sweep_outcomes):
        ratios = [o.raw_cloud_bytes / o.message_bytes
                  for o in sweep_outcomes]
        assert np.median(ratios) > 3.0
