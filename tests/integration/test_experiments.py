"""Integration tests for the experiment drivers (small scale).

Each figure/table module must run end to end, produce the documented
structure, and render its paper-style text without error.
"""

import numpy as np
import pytest

from repro.experiments.bandwidth import format_bandwidth, run_bandwidth
from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.experiments.fig7_comparison import compute_fig7, format_fig7
from repro.experiments.fig8_common_cars import compute_fig8, format_fig8
from repro.experiments.fig9_inliers import compute_fig9, format_fig9
from repro.experiments.fig10_distance import compute_fig10, format_fig10
from repro.experiments.fig11_bv_distance import compute_fig11, format_fig11
from repro.experiments.fig12_box_common_cars import compute_fig12, format_fig12
from repro.experiments.fig14_ablation import compute_fig14, format_fig14
from repro.experiments.success_rate import (
    compute_success_rate,
    format_success_rate,
)


@pytest.fixture(scope="module")
def outcomes():
    dataset = default_dataset(6, seed=77)
    return run_pose_recovery_sweep(dataset, include_vips=True)


class TestFigureAggregations:
    def test_fig7(self, outcomes):
        result = compute_fig7(outcomes)
        assert result.num_pairs == 6
        assert 0.0 <= result.bb_fraction_under_1m <= 1.0
        text = format_fig7(result)
        assert "BB-Align" in text and "VIPS" in text

    def test_fig8(self, outcomes):
        result = compute_fig8(outcomes)
        assert sum(result.bucket_counts.values()) == 6
        assert format_fig8(result)

    def test_fig9(self, outcomes):
        result = compute_fig9(outcomes)
        assert set(result.by_bv_inliers)  # buckets exist
        assert format_fig9(result)

    def test_fig10(self, outcomes):
        result = compute_fig10(outcomes)
        assert "[0,70) m" in result.translation
        assert format_fig10(result)

    def test_fig11(self, outcomes):
        result = compute_fig11(outcomes)
        assert len(result.translation) == 4
        assert format_fig11(result)

    def test_fig12(self, outcomes):
        result = compute_fig12(outcomes)
        assert format_fig12(result)

    def test_fig14(self, outcomes):
        result = compute_fig14(outcomes)
        assert set(result.translation) == {"with box align",
                                           "w/o box align"}
        for summary in result.translation.values():
            assert set(summary) == {10, 25, 50, 75, 90}
        assert format_fig14(result)

    def test_success_rate(self, outcomes):
        result = compute_success_rate(outcomes)
        assert 0.0 <= result.overall <= 1.0
        assert format_success_rate(result)


class TestBandwidthExperiment:
    def test_runs(self):
        result = run_bandwidth(num_pairs=2, seed=5)
        assert result.reduction_factor_dense > 1.0
        assert result.reduction_factor_encoded \
            > result.reduction_factor_dense
        assert format_bandwidth(result)


class TestTable1SmallScale:
    def test_runs_and_shows_recovery_gain(self):
        from repro.experiments.table1_detection import (
            format_table1,
            run_table1,
        )
        result = run_table1(num_pairs=6, seed=31)
        assert result.num_pairs >= 3
        text = format_table1(result)
        assert "Early Fusion" in text and "coBEVT" in text
        # Recovery must help overall AP@0.5 summed over methods.
        gain = 0.0
        for name in {"Early Fusion", "Late Fusion", "F-Cooper", "coBEVT"}:
            noisy = result.results[(name, "noisy")].overall[0.5].ap
            recovered = result.results[(name, "recovered")].overall[0.5].ap
            if not (np.isnan(noisy) or np.isnan(recovered)):
                gain += recovered - noisy
        assert gain > 0.0


class TestThresholdDerivation:
    def test_derived_thresholds_plausible(self, outcomes):
        """The Fig. 9 calibration rule yields thresholds in the ballpark
        of the configured defaults (the defaults were derived this way on
        a larger sweep)."""
        from repro.core.config import SuccessCriteria
        from repro.experiments.fig9_inliers import derive_success_thresholds
        bv, box = derive_success_thresholds(outcomes,
                                            target_accuracy=0.8)
        assert bv >= 0 and box >= 0
        # Applying the derived thresholds must select an accurate subset.
        selected = [o for o in outcomes
                    if o.inliers_bv > bv and o.inliers_box > box]
        if len(selected) >= 3:
            import numpy as np
            accuracy = np.mean([o.errors.translation < 1.0
                                for o in selected])
            assert accuracy >= 0.6

    def test_rejects_bad_target(self, outcomes):
        import pytest
        from repro.experiments.fig9_inliers import derive_success_thresholds
        with pytest.raises(ValueError):
            derive_success_thresholds(outcomes, target_accuracy=0.0)
