"""Tiny-scale integration runs of every extension experiment.

The benchmarks run these at measurement scale; here each runs at the
smallest meaningful size so ``pytest tests/`` exercises every driver's
full code path and structural contract.
"""

import numpy as np

from repro.experiments.ablations import format_ablations, run_ablations
from repro.experiments.icp_study import format_icp_study, run_icp_study
from repro.experiments.multi_study import (
    format_multi_study,
    run_multi_study,
)
from repro.experiments.noise_sweep import (
    format_noise_sweep,
    run_noise_sweep,
)
from repro.experiments.submap_study import (
    format_submap_study,
    run_submap_study,
)
from repro.experiments.tracking_study import (
    format_tracking_study,
    run_tracking_study,
)


class TestAblations:
    def test_runs_all_variants(self):
        result = run_ablations(num_pairs=3, seed=5)
        names = [row.name for row in result.rows]
        assert names[0] == "full system"
        assert len(names) == 8
        for row in result.rows:
            assert 0.0 <= row.success_rate <= 1.0
        assert "variant" in format_ablations(result)


class TestIcpStudy:
    def test_structure_and_bandwidth_claim(self):
        result = run_icp_study(num_pairs=3, seed=5)
        assert result.icp_bytes_mean > result.bb_bytes_mean
        assert 0.0 <= result.cold_icp_under_1m <= 1.0
        assert "ICP" in format_icp_study(result)


class TestTrackingStudy:
    def test_coverage_bounds(self):
        result = run_tracking_study(num_pairs=1, seed=5,
                                    frames_per_sequence=4)
        assert 0.0 <= result.raw_coverage <= 1.0
        assert 0.0 <= result.tracked_coverage <= 1.0
        assert "tracker" in format_tracking_study(result)


class TestMultiStudy:
    def test_graph_at_least_direct(self):
        result = run_multi_study(num_pairs=1, seed=5, num_vehicles=3)
        assert result.graph_coverage >= result.direct_coverage - 1e-9
        assert "pose-graph" in format_multi_study(result)


class TestSubmapStudy:
    def test_structure(self):
        result = run_submap_study(num_pairs=2, seed=5)
        assert result.num_scenes == 2
        assert result.submap_median_inliers >= 0
        assert "submap" in format_submap_study(result).lower()


class TestNoiseSweep:
    def test_recovered_flat_corrupted_falls(self):
        result = run_noise_sweep(num_pairs=4, seed=5)
        corrupted = list(result.corrupted_ap.values())
        recovered = list(result.recovered_ap.values())
        valid_c = [v for v in corrupted if not np.isnan(v)]
        valid_r = [v for v in recovered if not np.isnan(v)]
        if len(valid_c) >= 2:
            assert valid_c[0] >= valid_c[-1] - 1e-9
        assert len(valid_r) == len(recovered)
        assert "severity" in format_noise_sweep(result)
