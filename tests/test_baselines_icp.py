"""Tests for the 2-D ICP baseline."""

import numpy as np
import pytest

from repro.baselines.icp import icp_2d
from repro.geometry.se2 import SE2


class TestIcp:
    def test_recovers_small_offset(self, rng):
        gt = SE2(np.deg2rad(3.0), 0.5, -0.3)
        target = rng.uniform(-20, 20, (500, 2))
        source = gt.inverse().apply(target)
        result = icp_2d(source, target, rng=rng)
        assert result.converged
        assert result.transform.translation_distance(gt) < 0.05
        assert result.transform.rotation_distance(gt) < 0.01

    def test_initial_guess_extends_basin(self, rng):
        gt = SE2(np.deg2rad(5.0), 6.0, 2.0)
        target = rng.uniform(-20, 20, (400, 2))
        source = gt.inverse().apply(target)
        cold = icp_2d(source, target, rng=rng)
        warm = icp_2d(source, target,
                      initial=SE2(np.deg2rad(4.0), 5.5, 1.8), rng=rng)
        warm_err = warm.transform.translation_distance(gt)
        cold_err = cold.transform.translation_distance(gt)
        assert warm_err < 0.1
        assert warm_err <= cold_err + 1e-9

    def test_large_offset_diverges_without_init(self, rng):
        """The paper's argument against raw ICP for V2V: a big pose error
        exceeds the convergence basin."""
        gt = SE2(np.deg2rad(40.0), 25.0, 10.0)
        target = rng.uniform(-30, 30, (300, 2))
        source = gt.inverse().apply(target)
        result = icp_2d(source, target, rng=rng)
        assert result.transform.translation_distance(gt) > 1.0

    def test_too_few_points(self, rng):
        result = icp_2d(np.zeros((2, 2)), np.zeros((2, 2)), rng=rng)
        assert not result.converged
        assert result.iterations == 0

    def test_subsampling_cap(self, rng):
        gt = SE2(0.01, 0.2, 0.1)
        target = rng.uniform(-20, 20, (10_000, 2))
        source = gt.inverse().apply(target)
        result = icp_2d(source, target, max_points=500, rng=rng)
        assert result.transform.translation_distance(gt) < 0.2

    def test_reports_rmse_and_pairs(self, rng):
        gt = SE2(0.0, 0.3, 0.0)
        target = rng.uniform(-10, 10, (200, 2))
        source = gt.inverse().apply(target) + rng.normal(0, 0.02, (200, 2))
        result = icp_2d(source, target, rng=rng)
        assert result.num_correspondences > 100
        assert 0 < result.rmse < 0.2
