"""Tests for the VIPS spectral graph-matching baseline."""

import numpy as np
import pytest

from repro.baselines.vips import VipsConfig, vips_graph_matching
from repro.geometry.se2 import SE2


def make_scene(rng, gt, n_common, n_ego_extra=0, n_other_extra=0,
               noise=0.05, spread=35.0):
    common = rng.uniform(-spread, spread, (n_common, 2))
    ego = np.vstack([common,
                     rng.uniform(-spread, spread, (n_ego_extra, 2))])
    other = np.vstack([gt.inverse().apply(common),
                       rng.uniform(-spread, spread, (n_other_extra, 2))])
    ego = ego + rng.normal(0, noise, ego.shape)
    other = other + rng.normal(0, noise, other.shape)
    return other, ego


class TestVipsRecovery:
    def test_exact_recovery_dense_scene(self, rng):
        gt = SE2(0.7, 12.0, -5.0)
        other, ego = make_scene(rng, gt, n_common=8, noise=0.02)
        result = vips_graph_matching(other, ego)
        assert result.success
        assert result.transform.translation_distance(gt) < 0.3
        assert result.transform.rotation_distance(gt) < 0.05

    def test_robust_to_unshared_objects(self, rng):
        gt = SE2(-0.4, 5.0, 8.0)
        other, ego = make_scene(rng, gt, n_common=6, n_ego_extra=3,
                                n_other_extra=3, noise=0.05)
        result = vips_graph_matching(other, ego)
        assert result.success
        assert result.transform.translation_distance(gt) < 0.5

    @pytest.mark.parametrize("seed", range(5))
    def test_many_scenes(self, seed):
        rng = np.random.default_rng(seed)
        gt = SE2(rng.uniform(-np.pi, np.pi), *rng.uniform(-20, 20, 2))
        other, ego = make_scene(rng, gt, n_common=int(rng.integers(4, 9)),
                                n_ego_extra=2, n_other_extra=2)
        result = vips_graph_matching(other, ego)
        if result.success:
            assert result.transform.translation_distance(gt) < 1.5


class TestVipsFailureModes:
    def test_too_few_objects_fails(self, rng):
        """The paper's sparse-traffic failure mode."""
        result = vips_graph_matching(rng.uniform(-10, 10, (2, 2)),
                                     rng.uniform(-10, 10, (2, 2)))
        assert not result.success

    def test_no_common_objects_gives_poor_or_no_result(self, rng):
        gt = SE2(0.3, 10.0, 0.0)
        other = rng.uniform(-30, 30, (6, 2))
        ego = rng.uniform(-30, 30, (6, 2))  # unrelated
        result = vips_graph_matching(other, ego)
        if result.success:
            # Whatever it found cannot be an accurate pose.
            assert result.transform.translation_distance(gt) > 1.0

    def test_symmetric_pattern_ambiguous(self):
        """Perfectly regular traffic (a uniform grid) admits multiple
        consistent matchings — the paper's eigendecomposition instability
        in its purest form.  The estimate may be wrong, but must not
        crash."""
        grid_x, grid_y = np.meshgrid([0.0, 10.0, 20.0], [0.0, 10.0])
        pattern = np.stack([grid_x.ravel(), grid_y.ravel()], 1)
        gt = SE2(0.0, 10.0, 0.0)  # shift by one grid period!
        result = vips_graph_matching(gt.inverse().apply(pattern), pattern)
        assert result.success  # finds *a* consistent matching


class TestVipsConfig:
    def test_min_matches_enforced(self, rng):
        gt = SE2(0.1, 1.0, 1.0)
        other, ego = make_scene(rng, gt, n_common=3)
        strict = vips_graph_matching(other, ego,
                                     VipsConfig(min_matches=5))
        assert not strict.success

    def test_candidate_cap_path(self, rng):
        """Large scenes exercise the unary-profile candidate pruning."""
        gt = SE2(0.2, 3.0, -2.0)
        other, ego = make_scene(rng, gt, n_common=25, noise=0.02)
        result = vips_graph_matching(other, ego,
                                     VipsConfig(max_candidates=200))
        assert result.success
        assert result.transform.translation_distance(gt) < 0.5

    def test_eigenvector_score_reported(self, rng):
        gt = SE2(0.1, 2.0, 2.0)
        other, ego = make_scene(rng, gt, n_common=6)
        result = vips_graph_matching(other, ego)
        assert result.success
        assert result.eigenvector_score > 0
