"""The shared bev FFT backend (``repro.bev._fft``).

The batched-pair extraction path rests on one numerical fact: a batched
``(B, H, W)`` transform is bitwise-identical to ``B`` independent
``(H, W)`` transforms.  These tests pin that fact for both directions
and both precisions, plus the workers bookkeeping and the numpy
fallback used when SciPy is absent.
"""

import numpy as np
import pytest

from repro.bev import _fft


@pytest.fixture(autouse=True)
def _restore_workers():
    previous = _fft.get_fft_workers()
    yield
    _fft.set_fft_workers(previous)


class TestBatchedBitwiseIdentity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_forward_batch_matches_slices(self, dtype):
        rng = np.random.default_rng(7)
        stack = rng.standard_normal((3, 48, 48)).astype(dtype)
        batched = _fft.fft2(stack)
        for i in range(len(stack)):
            single = _fft.fft2(stack[i])
            assert single.dtype == batched.dtype
            assert np.array_equal(
                batched[i].view(np.float64 if dtype is np.float64
                                else np.float32),
                single.view(np.float64 if dtype is np.float64
                            else np.float32))

    @pytest.mark.parametrize("dtype", [np.complex128, np.complex64])
    def test_inverse_batch_matches_slices(self, dtype):
        rng = np.random.default_rng(9)
        stack = (rng.standard_normal((4, 32, 64))
                 + 1j * rng.standard_normal((4, 32, 64))).astype(dtype)
        batched = _fft.ifft2(stack)
        for i in range(len(stack)):
            assert np.array_equal(batched[i], _fft.ifft2(stack[i].copy()))

    def test_roundtrip(self):
        rng = np.random.default_rng(3)
        image = rng.standard_normal((40, 40))
        back = _fft.ifft2(_fft.fft2(image))
        np.testing.assert_allclose(back.real, image, atol=1e-12)

    def test_overwrite_same_values(self):
        rng = np.random.default_rng(5)
        spec = (rng.standard_normal((24, 24))
                + 1j * rng.standard_normal((24, 24)))
        expected = _fft.ifft2(spec.copy(), overwrite=False)
        overwritten = _fft.ifft2(spec.copy(), overwrite=True)
        assert np.array_equal(expected, overwritten)


class TestWorkersSetting:
    def test_set_returns_previous_and_takes_effect(self):
        first = _fft.set_fft_workers(2)
        assert _fft.get_fft_workers() == 2
        assert _fft.set_fft_workers(first) == 2
        assert _fft.get_fft_workers() == first

    def test_transforms_identical_across_workers(self):
        """The workers count is a scheduling knob; pocketfft's split
        must not change a single bit of the result."""
        rng = np.random.default_rng(11)
        image = rng.standard_normal((64, 64))
        baseline = _fft.fft2(image)
        _fft.set_fft_workers(2)
        assert np.array_equal(_fft.fft2(image), baseline)
        _fft.set_fft_workers(None)
        assert np.array_equal(_fft.fft2(image), baseline)


class TestNumpyFallback:
    def test_fallback_used_when_scipy_missing(self, monkeypatch):
        monkeypatch.setattr(_fft, "_sp_fft", None)
        rng = np.random.default_rng(13)
        image = rng.standard_normal((16, 16))
        spec = _fft.fft2(image)
        assert np.array_equal(spec, np.fft.fft2(image))
        assert np.array_equal(_fft.ifft2(spec), np.fft.ifft2(spec))

    def test_fallback_batch_matches_slices(self, monkeypatch):
        monkeypatch.setattr(_fft, "_sp_fft", None)
        rng = np.random.default_rng(15)
        stack = rng.standard_normal((2, 16, 16))
        batched = _fft.fft2(stack)
        for i in range(len(stack)):
            assert np.array_equal(batched[i], _fft.fft2(stack[i]))
