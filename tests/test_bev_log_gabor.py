"""Tests for repro.bev.log_gabor (paper Eq. 6-8)."""

import numpy as np
import pytest

from repro.bev.log_gabor import LogGaborBank, LogGaborConfig


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = LogGaborConfig()
        assert cfg.num_scales == 4
        assert cfg.num_orientations == 12

    def test_orientations_spacing(self):
        cfg = LogGaborConfig(num_orientations=6)
        orientations = cfg.orientations
        assert len(orientations) == 6
        assert orientations[0] == 0.0
        np.testing.assert_allclose(np.diff(orientations), np.pi / 6)

    def test_wavelengths_geometric(self):
        cfg = LogGaborConfig(min_wavelength=3.0, mult=2.0, num_scales=3)
        np.testing.assert_allclose(cfg.wavelengths, [3.0, 6.0, 12.0])

    @pytest.mark.parametrize("kwargs", [
        dict(num_scales=0),
        dict(num_orientations=1),
        dict(min_wavelength=1.0),
        dict(mult=0.9),
        dict(sigma_on_f=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LogGaborConfig(**kwargs)


class TestBank:
    def test_rejects_tiny_images(self):
        with pytest.raises(ValueError):
            LogGaborBank(2)

    def test_amplitude_shape(self):
        bank = LogGaborBank(32)
        amp = bank.amplitude(np.random.default_rng(0).random((32, 32)), 0, 0)
        assert amp.shape == (32, 32)
        assert np.all(amp >= 0)

    def test_rejects_wrong_image_size(self):
        bank = LogGaborBank(32)
        with pytest.raises(ValueError):
            bank.orientation_amplitude_sum(np.zeros((16, 16)))

    def test_constant_image_has_zero_response(self):
        # Zero DC gain: a flat image excites nothing.
        bank = LogGaborBank(32)
        sums = bank.orientation_amplitude_sum(np.full((32, 32), 7.0))
        assert sums.max() < 1e-9

    def test_oriented_stripes_excite_matching_filter(self):
        """A vertical stripe pattern (energy along the x-frequency axis)
        must maximize the amplitude of the orientation-0 filter."""
        size = 64
        cfg = LogGaborConfig(num_scales=3, num_orientations=6)
        bank = LogGaborBank(size, cfg)
        x = np.arange(size)
        stripes = np.tile(np.sin(2 * np.pi * x / 8.0), (size, 1))
        sums = bank.orientation_amplitude_sum(stripes)
        central = sums[:, 16:48, 16:48].mean(axis=(1, 2))
        assert int(np.argmax(central)) == 0

    def test_rotated_stripes_shift_winning_orientation(self):
        size = 96
        cfg = LogGaborConfig(num_scales=3, num_orientations=6)
        bank = LogGaborBank(size, cfg)
        yy, xx = np.meshgrid(np.arange(size), np.arange(size),
                             indexing="ij")
        # Stripes whose gradient direction is 60 degrees.
        angle = np.pi / 3
        phase = (np.cos(angle) * xx + np.sin(angle) * yy)
        image = np.sin(2 * np.pi * phase / 8.0)
        sums = bank.orientation_amplitude_sum(image)
        central = sums[:, 24:72, 24:72].mean(axis=(1, 2))
        # 60 degrees = bin 2 of 6 (30-degree spacing).
        assert int(np.argmax(central)) == 2

    def test_amplitudes_by_orientation_consistency(self):
        rng_img = np.random.default_rng(3).random((32, 32))
        bank = LogGaborBank(32)
        per = bank.amplitudes_by_orientation(rng_img)
        summed = bank.orientation_amplitude_sum(rng_img)
        manual = np.sum(per[5], axis=0)
        np.testing.assert_allclose(manual, summed[5], atol=1e-9)
