"""Tests for repro.bev.mim (paper Eq. 9-10)."""

import numpy as np
import pytest

from repro.bev.log_gabor import LogGaborConfig
from repro.bev.mim import compute_mim
from repro.bev.projection import height_map
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


def wall_cloud(alpha_deg: float) -> PointCloud:
    """A single long wall rotated by alpha about the origin."""
    t = np.linspace(-30, 30, 400)
    layers = [np.stack([t, np.full_like(t, 5.0), np.full_like(t, 8 * f)], 1)
              for f in np.linspace(0.2, 1, 6)]
    pts = np.vstack(layers)
    xy = SE2(np.deg2rad(alpha_deg), 0, 0).apply(pts[:, :2])
    return PointCloud(np.column_stack([xy, pts[:, 2]]))


class TestComputeMim:
    def test_output_shapes(self):
        bv = height_map(wall_cloud(0.0), 0.4, 51.2)
        result = compute_mim(bv)
        assert result.mim.shape == bv.image.shape
        assert result.max_amplitude.shape == bv.image.shape
        assert result.num_orientations == 12

    def test_values_in_orientation_range(self):
        bv = height_map(wall_cloud(20.0), 0.4, 51.2)
        result = compute_mim(bv)
        assert result.mim.min() >= 0
        assert result.mim.max() < 12

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            compute_mim(np.zeros((10, 20)))

    def test_accepts_raw_array(self):
        result = compute_mim(np.random.default_rng(0).random((32, 32)),
                             LogGaborConfig(num_scales=2,
                                            num_orientations=4))
        assert result.num_orientations == 4

    def test_wall_orientation_dominates_mim(self):
        """The MIM value at wall pixels must track the wall direction:
        rotating the world by one orientation bin shifts the dominant MIM
        value by one bin (+alpha convention — what the descriptor's
        rotation normalization relies on)."""
        bin_width_deg = 180 / 12

        def dominant(alpha_deg):
            bv = height_map(wall_cloud(alpha_deg), 0.4, 51.2)
            result = compute_mim(bv)
            mask = result.valid_mask(0.2)
            values, counts = np.unique(result.mim[mask], return_counts=True)
            return int(values[np.argmax(counts)])

        base = dominant(0.0)
        plus_one = dominant(bin_width_deg)
        assert (plus_one - base) % 12 == 1

    def test_valid_mask_excludes_empty_regions(self):
        bv = height_map(wall_cloud(0.0), 0.4, 51.2)
        result = compute_mim(bv)
        mask = result.valid_mask(0.1)
        # Valid pixels concentrate near the wall; far corners are invalid.
        assert not mask[:20, :20].any()
        assert 0 < mask.sum() < mask.size

    def test_valid_mask_empty_image(self):
        result = compute_mim(np.zeros((32, 32)))
        assert not result.valid_mask().any()

    def test_max_amplitude_matches_argmax(self):
        bv = height_map(wall_cloud(33.0), 0.4, 51.2)
        result = compute_mim(bv)
        assert np.all(result.max_amplitude <= result.total_amplitude + 1e-9)
        assert np.all(result.max_amplitude >= 0)

    def test_deterministic(self):
        bv = height_map(wall_cloud(10.0), 0.4, 51.2)
        a = compute_mim(bv)
        b = compute_mim(bv)
        np.testing.assert_array_equal(a.mim, b.mim)
