"""Tests for repro.bev.phase_congruency."""

import numpy as np
import pytest

from repro.bev.log_gabor import LogGaborConfig
from repro.bev.phase_congruency import compute_phase_congruency


def step_edge(size=64, column=32):
    image = np.zeros((size, size))
    image[:, column:] = 1.0
    return image


class TestPhaseCongruency:
    def test_shapes(self):
        cfg = LogGaborConfig(num_scales=3, num_orientations=6)
        result = compute_phase_congruency(step_edge(), cfg)
        assert result.pc.shape == (6, 64, 64)
        assert result.max_moment.shape == (64, 64)
        assert result.min_moment.shape == (64, 64)

    def test_values_bounded(self):
        result = compute_phase_congruency(step_edge())
        assert result.pc.min() >= 0.0
        assert result.pc.max() <= 1.0 + 1e-9
        assert result.min_moment.min() >= 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            compute_phase_congruency(np.zeros((10, 20)))

    def test_edge_has_high_max_moment(self):
        """A step edge is a 1-D feature: strong maximum moment at the
        edge, weak elsewhere."""
        result = compute_phase_congruency(step_edge(column=32))
        on_edge = result.max_moment[20:44, 30:34].mean()
        off_edge = result.max_moment[20:44, 8:16].mean()
        assert on_edge > 3 * off_edge

    def test_edge_has_low_min_moment(self):
        """A pure edge has congruency in only one orientation, so its
        minimum moment stays small relative to a corner's."""
        edge = compute_phase_congruency(step_edge(column=32))
        corner_img = np.zeros((64, 64))
        corner_img[32:, 32:] = 1.0  # L-corner at (32, 32)
        corner = compute_phase_congruency(corner_img)
        corner_peak = corner.min_moment[28:36, 28:36].max()
        edge_line = edge.min_moment[20:44, 30:34].max()
        assert corner_peak > edge_line

    def test_flat_image_no_response(self):
        result = compute_phase_congruency(np.full((32, 32), 5.0))
        assert result.max_moment.max() < 1e-6

    def test_orientation_map_range(self):
        result = compute_phase_congruency(step_edge())
        assert result.orientation.min() >= 0.0
        assert result.orientation.max() < np.pi + 1e-9


class TestPcKeypoints:
    def test_corner_detected(self):
        from repro.features.pc_keypoints import detect_pc_keypoints
        image = np.zeros((64, 64))
        image[32:, 32:] = 1.0
        kp = detect_pc_keypoints(image)
        assert len(kp) >= 1
        dists = np.linalg.norm(kp.xy - [32, 32], axis=1)
        assert dists.min() < 4.0

    def test_empty_image(self):
        from repro.features.pc_keypoints import detect_pc_keypoints
        assert len(detect_pc_keypoints(np.zeros((32, 32)))) == 0

    def test_validation(self):
        from repro.features.pc_keypoints import PcKeypointConfig
        with pytest.raises(ValueError):
            PcKeypointConfig(relative_threshold=0.0)

    def test_rejects_non_square(self):
        from repro.features.pc_keypoints import detect_pc_keypoints
        with pytest.raises(ValueError):
            detect_pc_keypoints(np.zeros((16, 32)))
