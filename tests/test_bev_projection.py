"""Tests for repro.bev.projection (paper Eq. 4 and coordinate maps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bev.projection import BVImage, density_map, height_map
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


class TestHeightMap:
    def test_single_point_sets_pixel(self):
        cloud = PointCloud(np.array([[0.1, 0.1, 3.0]]))
        bv = height_map(cloud, cell_size=1.0, lidar_range=4.0,
                        max_height=None)
        assert bv.size == 8
        assert bv.image.max() == pytest.approx(3.0)
        # x=0.1 -> col 4, y=0.1 -> row 4
        assert bv.image[4, 4] == pytest.approx(3.0)

    def test_max_per_cell(self):
        pts = np.array([[0.1, 0.1, 1.0], [0.2, 0.2, 5.0], [0.3, 0.1, 2.0]])
        bv = height_map(PointCloud(pts), 1.0, 4.0, max_height=None)
        assert bv.image[4, 4] == pytest.approx(5.0)

    def test_out_of_range_ignored(self):
        pts = np.array([[100.0, 0.0, 3.0]])
        bv = height_map(PointCloud(pts), 1.0, 4.0)
        assert bv.image.max() == 0.0

    def test_min_height_clamps_below(self):
        pts = np.array([[0.1, 0.1, -2.0]])
        bv = height_map(PointCloud(pts), 1.0, 4.0, min_height=0.0)
        assert bv.image.min() == 0.0

    def test_max_height_clamps_above(self):
        pts = np.array([[0.1, 0.1, 50.0]])
        bv = height_map(PointCloud(pts), 1.0, 4.0, max_height=5.0)
        assert bv.image.max() == pytest.approx(5.0)

    def test_rejects_max_below_min(self):
        with pytest.raises(ValueError):
            height_map(PointCloud.empty(), 1.0, 4.0, min_height=2.0,
                       max_height=1.0)

    def test_empty_cloud(self):
        bv = height_map(PointCloud.empty(), 0.4, 10.0)
        assert bv.image.max() == 0.0

    def test_ground_points_invisible(self):
        # Eq. 4 discussion: ground hits (z=0) leave cells at 0 intensity.
        pts = np.array([[1.0, 1.0, 0.0]])
        bv = height_map(PointCloud(pts), 1.0, 4.0)
        assert bv.image.max() == 0.0

    def test_image_size_formula(self):
        bv = height_map(PointCloud.empty(), 0.4, 51.2)
        assert bv.size == 256


class TestDensityMap:
    def test_counts_points(self):
        pts = np.tile([[0.1, 0.1, 1.0]], (7, 1))
        bv = density_map(PointCloud(pts), 1.0, 4.0, log_scale=False)
        assert bv.image[4, 4] == pytest.approx(7.0)

    def test_log_scale(self):
        pts = np.tile([[0.1, 0.1, 1.0]], (7, 1))
        bv = density_map(PointCloud(pts), 1.0, 4.0, log_scale=True)
        assert bv.image[4, 4] == pytest.approx(np.log1p(7.0))


class TestBVImage:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            BVImage(np.zeros((4, 5)), 1.0, 2.0)

    def test_world_pixel_roundtrip(self):
        bv = BVImage(np.zeros((64, 64)), 0.5, 16.0)
        xy = np.array([[3.3, -7.1], [0.0, 0.0]])
        back = bv.pixel_to_world(bv.world_to_pixel(xy))
        np.testing.assert_allclose(back, xy, atol=1e-9)

    def test_sparsity(self):
        img = np.zeros((10, 10))
        img[0, 0] = 1.0
        assert BVImage(img, 1.0, 5.0).sparsity() == pytest.approx(0.99)

    def test_occupancy(self):
        img = np.zeros((4, 4))
        img[1, 2] = 2.0
        occ = BVImage(img, 1.0, 2.0).occupancy()
        assert occ.sum() == 1 and occ[1, 2]

    def test_message_size(self):
        bv = BVImage(np.zeros((192, 192)), 0.8, 76.8)
        assert bv.message_size_bytes(8) == 192 * 192

    @given(st.floats(-3, 3), st.floats(-30, 30), st.floats(-30, 30))
    @settings(max_examples=40, deadline=None)
    def test_pixel_world_transform_conjugation(self, theta, tx, ty):
        """The pixel<->world transform conversion must commute with the
        coordinate mapping: world_to_pixel(T_world(p)) ==
        T_pix(world_to_pixel(p))."""
        bv = BVImage(np.zeros((128, 128)), 0.4, 25.6)
        t_world = SE2(theta, tx, ty)
        t_pix = bv.world_transform_to_pixel(t_world)
        pts = np.array([[1.0, 2.0], [-5.0, 7.0], [0.0, 0.0]])
        lhs = bv.world_to_pixel(t_world.apply(pts))
        rhs = t_pix.apply(bv.world_to_pixel(pts))
        np.testing.assert_allclose(lhs, rhs, atol=1e-6)

    @given(st.floats(-3, 3), st.floats(-30, 30), st.floats(-30, 30))
    @settings(max_examples=40, deadline=None)
    def test_transform_conversion_roundtrip(self, theta, tx, ty):
        bv = BVImage(np.zeros((128, 128)), 0.4, 25.6)
        t_world = SE2(theta, tx, ty)
        back = bv.pixel_transform_to_world(
            bv.world_transform_to_pixel(t_world))
        assert back.is_close(t_world, atol_translation=1e-6,
                             atol_rotation=1e-9)
