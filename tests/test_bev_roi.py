"""Overlap-ROI culling: window geometry, fallbacks, and extraction.

The window math has two contracts the pipeline leans on (see
``repro/bev/roi.py``): the *size* is a function of the quantized scalar
distance only (so the two cars of a pair always batch), and every
fallback path degrades to the uncropped full image rather than failing.
The extraction-level tests check that ROI keypoints are reported in
full-frame coordinates and that the cropped window pixels equal the
corresponding full-image region.
"""

import math

import numpy as np
import pytest

from repro.bev.projection import height_map
from repro.bev.roi import RoiCullConfig, RoiWindow, roi_window
from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.pointcloud.cloud import PointCloud

CELL = 0.8
RANGE = 76.8
SIZE = 192  # 2 * RANGE / CELL


def window(prior, **overrides):
    config = RoiCullConfig(enabled=True, **overrides)
    return roi_window(prior, cell_size=CELL, lidar_range=RANGE,
                      image_size=SIZE, config=config)


class TestWindowGeometry:
    def test_centered_at_half_translation(self):
        w = window((20.0, 0.0))
        assert w is not None
        # Window center in pixels should sit at world (10, 0).
        center_col = w.col0 + (w.size - 1) / 2.0
        expected = (10.0 + RANGE) / CELL - 0.5
        assert abs(center_col - expected) <= 0.5 + 1e-9

    def test_size_formula(self):
        cfg = RoiCullConfig(enabled=True)
        w = window((30.0, 0.0))
        d_q = round(30.0 / cfg.quantize) * cfg.quantize
        half = math.sqrt(cfg.useful_range ** 2 - 0.25 * d_q ** 2) + cfg.margin
        expected = max(int(math.ceil(2 * half / CELL / cfg.align))
                       * cfg.align, cfg.min_size)
        assert w.size == expected

    def test_symmetric_sizing_both_directions(self):
        """The two cars see inverse priors; sizes must match for every
        distance so pair extraction can always batch."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            t = rng.uniform(-70, 70, 2)
            wa = window(tuple(t))
            wb = window(tuple(-t))
            assert (wa is None) == (wb is None)
            if wa is not None:
                assert wa.size == wb.size

    def test_size_depends_only_on_quantized_distance(self):
        """Priors within one quantization step share a window size."""
        w1 = window((29.0, 0.0))
        w2 = window((0.0, 31.0))
        assert w1.size == w2.size

    def test_window_clamped_inside_image(self):
        w = window((70.0, 70.0))
        assert w is not None
        assert 0 <= w.row0 and w.row0 + w.size <= SIZE
        assert 0 <= w.col0 and w.col0 + w.size <= SIZE

    def test_min_size_floor_and_alignment(self):
        w = window((20.0, 0.0), min_size=160)
        assert w.size == 160
        w = window((20.0, 0.0), align=32)
        assert w.size % 32 == 0

    def test_offset_xy_maps_local_to_full(self):
        w = RoiWindow(row0=10, col0=24, size=64)
        assert np.array_equal(w.offset_xy, [24.0, 10.0])


class TestFallbacks:
    def test_disabled_config(self):
        cfg = RoiCullConfig(enabled=False)
        assert roi_window((10.0, 0.0), cell_size=CELL, lidar_range=RANGE,
                          image_size=SIZE, config=cfg) is None

    def test_no_prior(self):
        assert window(None) is None

    def test_nonfinite_prior(self):
        assert window((np.nan, 3.0)) is None
        assert window((np.inf, 0.0)) is None

    def test_window_as_large_as_image(self):
        # A tiny image cannot shrink: fall back to full frame.
        cfg = RoiCullConfig(enabled=True)
        assert roi_window((10.0, 0.0), cell_size=CELL, lidar_range=RANGE,
                          image_size=64, config=cfg) is None

    def test_empty_overlap_capped_to_min_window(self):
        cfg = RoiCullConfig(enabled=True)
        far = 2.0 * cfg.useful_range + 10.0
        w = window((far, 0.0))
        assert w is not None and w.size == cfg.min_size

    def test_empty_overlap_fallback_when_cap_disabled(self):
        cfg = RoiCullConfig(enabled=True)
        far = 2.0 * cfg.useful_range + 10.0
        assert window((far, 0.0), cap_empty_overlap=False) is None

    def test_absurd_prior_still_clamps(self):
        w = window((5000.0, -5000.0))
        assert w is not None
        assert 0 <= w.row0 and w.row0 + w.size <= SIZE
        assert 0 <= w.col0 and w.col0 + w.size <= SIZE


def _town_cloud(seed=0):
    rng = np.random.default_rng(seed)
    t = np.linspace(-60, 60, 800)
    parts = []
    for level in np.linspace(0.3, 1.0, 4):
        z = np.full_like(t, 6.0 * level)
        parts.append(np.stack([t, np.full_like(t, 12.0), z], 1))
        parts.append(np.stack([np.full_like(t, -20.0), t, z], 1))
        parts.append(np.stack([t, 0.4 * t - 30.0, z], 1))
    for _ in range(12):
        cx, cy = rng.uniform(-50, 50, 2)
        parts.append(np.stack([cx + rng.normal(0, 0.6, 40),
                               cy + rng.normal(0, 0.6, 40),
                               rng.uniform(1.0, 5.0, 40)], 1))
    return PointCloud(np.vstack(parts))


class TestRoiExtraction:
    @pytest.fixture()
    def matcher(self):
        return BVMatcher(BBAlignConfig(roi=RoiCullConfig(enabled=True)))

    @pytest.fixture()
    def bv(self):
        return height_map(_town_cloud(), CELL, RANGE)

    def test_keypoints_reported_in_full_frame(self, matcher, bv):
        prior = (24.0, -8.0)
        features = matcher.extract(bv, prior=prior)
        w = features.roi
        assert w is not None
        xy = features.keypoints.xy
        assert len(xy) > 0
        assert (xy[:, 0] >= w.col0).all()
        assert (xy[:, 0] < w.col0 + w.size).all()
        assert (xy[:, 1] >= w.row0).all()
        assert (xy[:, 1] < w.row0 + w.size).all()
        assert np.array_equal(features.descriptors.keypoint_xy,
                              xy[features.descriptors.keypoint_indices])

    def test_roi_keypoints_subset_of_interior_full_frame(self, matcher, bv):
        """Away from the crop border, cropping cannot invent keypoints:
        every ROI keypoint well inside the window must also be detected
        on the full image (the converse does not hold — NMS near the
        border sees different competition)."""
        uncropped = BVMatcher(BBAlignConfig()).extract(bv)
        features = matcher.extract(bv, prior=(24.0, -8.0))
        w = features.roi
        margin = 24  # descriptor patch half-diagonal, generous
        interior = ((features.keypoints.xy[:, 0] >= w.col0 + margin)
                    & (features.keypoints.xy[:, 0] < w.col0 + w.size - margin)
                    & (features.keypoints.xy[:, 1] >= w.row0 + margin)
                    & (features.keypoints.xy[:, 1] < w.row0 + w.size - margin))
        full = {tuple(p) for p in uncropped.keypoints.xy}
        inner = features.keypoints.xy[interior]
        hits = sum(tuple(p) in full for p in inner)
        assert len(inner) > 0
        assert hits >= 0.9 * len(inner)

    def test_no_prior_extracts_full_frame(self, matcher, bv):
        features = matcher.extract(bv)
        assert features.roi is None
        uncropped = BVMatcher(BBAlignConfig()).extract(bv)
        assert np.array_equal(features.keypoints.xy, uncropped.keypoints.xy)
        assert np.array_equal(features.descriptors.descriptors,
                              uncropped.descriptors.descriptors)

    def test_non_fast_detector_disables_culling(self, bv):
        matcher = BVMatcher(BBAlignConfig(
            keypoint_detector="harris", roi=RoiCullConfig(enabled=True)))
        features = matcher.extract(bv, prior=(24.0, -8.0))
        assert features.roi is None
