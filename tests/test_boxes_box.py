"""Tests for repro.boxes.box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boxes.box import Box2D, Box3D
from repro.geometry.polygon import is_counterclockwise
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3

YAWS = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False)


class TestBox2D:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Box2D(0, 0, 0.0, 1.0, 0.0)

    def test_corners_ccw_and_consistent_order(self):
        box = Box2D(0, 0, 4.0, 2.0, 0.0)
        corners = box.corners()
        assert corners.shape == (4, 2)
        assert is_counterclockwise(corners)
        # First corner is front-left: (+l/2, +w/2).
        np.testing.assert_allclose(corners[0], [2.0, 1.0])

    @given(YAWS)
    @settings(max_examples=30, deadline=None)
    def test_corners_rotate_with_yaw(self, yaw):
        box = Box2D(1.0, -2.0, 4.0, 2.0, yaw)
        corners = box.corners()
        # Corner distances from center are yaw-invariant.
        dists = np.linalg.norm(corners - box.center, axis=1)
        np.testing.assert_allclose(dists, box.diagonal / 2, atol=1e-9)

    def test_area_and_diagonal(self):
        box = Box2D(0, 0, 3.0, 4.0, 0.7)
        assert box.area == pytest.approx(12.0)
        assert box.diagonal == pytest.approx(5.0)

    @given(YAWS, st.floats(-20, 20), st.floats(-20, 20))
    @settings(max_examples=30, deadline=None)
    def test_transform_commutes_with_corners(self, theta, tx, ty):
        box = Box2D(2.0, 3.0, 4.5, 1.9, 0.4)
        t = SE2(theta, tx, ty)
        np.testing.assert_allclose(box.transform(t).corners(),
                                   t.apply(box.corners()), atol=1e-9)

    def test_contains(self):
        box = Box2D(0, 0, 4.0, 2.0, np.pi / 2)  # rotated: long axis on y
        inside = box.contains(np.array([[0.0, 1.9], [0.9, 0.0]]))
        outside = box.contains(np.array([[1.1, 0.0], [0.0, 2.1]]))
        assert inside.all()
        assert not outside.any()


class TestBox3D:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            Box3D(0, 0, 0, 4.0, 2.0, 0.0, 0.0)

    def test_to_bev_projection(self):
        box = Box3D(1, 2, 0.9, 4.0, 2.0, 1.8, 0.3)
        bev = box.to_bev()
        assert (bev.center_x, bev.center_y) == (1, 2)
        assert bev.length == 4.0 and bev.width == 2.0
        assert bev.yaw == pytest.approx(0.3)

    def test_corners_shape_and_heights(self):
        box = Box3D(0, 0, 0.9, 4.0, 2.0, 1.8, 0.0)
        corners = box.corners()
        assert corners.shape == (8, 3)
        np.testing.assert_allclose(corners[:4, 2], 0.0, atol=1e-12)
        np.testing.assert_allclose(corners[4:, 2], 1.8, atol=1e-12)

    def test_transform_se2_keeps_z(self):
        box = Box3D(5, 5, 0.9, 4.0, 2.0, 1.8, 0.0)
        moved = box.transform(SE2(np.pi / 2, 0.0, 0.0))
        assert moved.center_z == pytest.approx(0.9)
        assert moved.center_x == pytest.approx(-5.0)
        assert moved.center_y == pytest.approx(5.0)
        assert moved.yaw == pytest.approx(np.pi / 2)

    def test_transform_matches_corner_transform(self):
        box = Box3D(2, -1, 0.8, 4.5, 1.9, 1.6, 0.5)
        t = SE3.from_se2(SE2(0.9, 3.0, -4.0))
        np.testing.assert_allclose(box.transform(t).corners(),
                                   t.apply(box.corners()), atol=1e-9)

    def test_contains_3d(self):
        box = Box3D(0, 0, 1.0, 4.0, 2.0, 2.0, 0.0)
        assert box.contains(np.array([[0.0, 0.0, 1.0]]))[0]
        assert not box.contains(np.array([[0.0, 0.0, 2.5]]))[0]

    def test_volume(self):
        assert Box3D(0, 0, 1, 2.0, 3.0, 4.0, 0).volume == pytest.approx(24.0)

    def test_with_center(self):
        box = Box3D(0, 0, 1, 2.0, 3.0, 4.0, 0.5)
        moved = box.with_center(7.0, 8.0)
        assert (moved.center_x, moved.center_y) == (7.0, 8.0)
        assert moved.center_z == 1.0
        assert moved.yaw == box.yaw
