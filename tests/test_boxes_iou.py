"""Tests for repro.boxes.iou (rotated IoU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boxes.box import Box2D
from repro.boxes.iou import bev_iou, iou_matrix


class TestBevIou:
    def test_identical_boxes(self):
        box = Box2D(0, 0, 4.0, 2.0, 0.5)
        assert bev_iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        a = Box2D(0, 0, 4.0, 2.0, 0.0)
        b = Box2D(100, 0, 4.0, 2.0, 0.0)
        assert bev_iou(a, b) == 0.0

    def test_half_overlap_axis_aligned(self):
        a = Box2D(0, 0, 2.0, 2.0, 0.0)
        b = Box2D(1, 0, 2.0, 2.0, 0.0)
        # intersection 2, union 6.
        assert bev_iou(a, b) == pytest.approx(1 / 3)

    def test_rotation_of_both_preserves_iou(self):
        a = Box2D(0, 0, 4.0, 2.0, 0.0)
        b = Box2D(1, 0.5, 4.0, 2.0, 0.3)
        base = bev_iou(a, b)
        from repro.geometry.se2 import SE2
        t = SE2(1.1, 5.0, -3.0)
        assert bev_iou(a.transform(t), b.transform(t)) == pytest.approx(
            base, abs=1e-9)

    def test_rotated_cross(self):
        a = Box2D(0, 0, 4.0, 2.0, 0.0)
        b = Box2D(0, 0, 4.0, 2.0, np.pi / 2)
        # Cross of two 4x2 rectangles: intersection 4, union 12.
        assert bev_iou(a, b) == pytest.approx(4 / 12)

    def test_symmetry(self):
        a = Box2D(0.3, -0.2, 4.5, 1.9, 0.2)
        b = Box2D(1.0, 0.4, 4.2, 2.1, -0.4)
        assert bev_iou(a, b) == pytest.approx(bev_iou(b, a))

    @given(st.floats(-5, 5), st.floats(-5, 5), st.floats(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_iou_in_unit_range(self, dx, dy, yaw):
        a = Box2D(0, 0, 4.5, 1.9, 0.0)
        b = Box2D(dx, dy, 4.5, 1.9, yaw)
        assert 0.0 <= bev_iou(a, b) <= 1.0

    def test_contained_box(self):
        outer = Box2D(0, 0, 4.0, 4.0, 0.0)
        inner = Box2D(0, 0, 2.0, 2.0, 0.7)
        assert bev_iou(outer, inner) == pytest.approx(4 / 16)


class TestIouMatrix:
    def test_shape_and_values(self):
        a = [Box2D(0, 0, 4, 2, 0), Box2D(10, 0, 4, 2, 0)]
        b = [Box2D(0, 0, 4, 2, 0)]
        matrix = iou_matrix(a, b)
        assert matrix.shape == (2, 1)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[1, 0] == 0.0

    def test_empty_inputs(self):
        assert iou_matrix([], []).shape == (0, 0)
        assert iou_matrix([Box2D(0, 0, 1, 1, 0)], []).shape == (1, 0)

    def test_matches_pairwise_calls(self, rng):
        boxes_a = [Box2D(*rng.uniform(-5, 5, 2), 4.0, 2.0,
                         rng.uniform(-3, 3)) for _ in range(4)]
        boxes_b = [Box2D(*rng.uniform(-5, 5, 2), 4.0, 2.0,
                         rng.uniform(-3, 3)) for _ in range(3)]
        matrix = iou_matrix(boxes_a, boxes_b)
        for i, a in enumerate(boxes_a):
            for j, b in enumerate(boxes_b):
                assert matrix[i, j] == pytest.approx(bev_iou(a, b))
