"""Tests for repro.boxes.matching (stage-2 geometry)."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.boxes.matching import (
    corner_correspondences,
    match_boxes_by_overlap,
    pair_corners,
)
from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2


def car(x, y, yaw=0.0):
    return Box2D(x, y, 4.5, 1.9, yaw)


class TestOverlapMatching:
    def test_obvious_pairs(self):
        src = [car(0, 0), car(20, 0)]
        dst = [car(0.5, 0.2), car(20.3, -0.1)]
        matches = match_boxes_by_overlap(src, dst)
        assert {(m.src_index, m.dst_index) for m in matches} == {(0, 0), (1, 1)}

    def test_one_to_one(self):
        # Two source boxes overlapping one destination: only the better
        # one is matched.
        src = [car(0, 0), car(0.3, 0)]
        dst = [car(0.1, 0)]
        matches = match_boxes_by_overlap(src, dst)
        assert len(matches) == 1
        assert matches[0].src_index == 0

    def test_min_iou_threshold(self):
        src = [car(0, 0)]
        dst = [car(4.2, 0)]  # sliver of overlap
        none = match_boxes_by_overlap(src, dst, min_iou=0.2)
        some = match_boxes_by_overlap(src, dst, min_iou=0.01)
        assert not none and len(some) == 1

    def test_empty_inputs(self):
        assert match_boxes_by_overlap([], [car(0, 0)]) == []
        assert match_boxes_by_overlap([car(0, 0)], []) == []

    def test_matches_sorted_by_iou(self):
        src = [car(0, 0), car(20, 0)]
        dst = [car(0.05, 0), car(21.5, 0)]
        matches = match_boxes_by_overlap(src, dst)
        assert matches[0].iou >= matches[1].iou

    def test_rejects_bad_min_iou(self):
        with pytest.raises(ValueError):
            match_boxes_by_overlap([], [], min_iou=0.0)


class TestCornerPairing:
    def test_identical_boxes_zero_shift(self):
        box = car(3, 4, 0.7)
        src, dst = pair_corners(box, box)
        np.testing.assert_allclose(src, dst)

    def test_pi_flipped_detection_still_pairs(self):
        """A detector reporting yaw off by pi produces the same physical
        rectangle with a cyclically shifted corner sequence; pairing must
        still put physically-identical corners together."""
        a = car(0, 0, 0.2)
        b = Box2D(0, 0, 4.5, 1.9, 0.2 + np.pi)
        src, dst = pair_corners(a, b)
        np.testing.assert_allclose(src, dst, atol=1e-9)

    def test_pairing_recovers_small_offset(self):
        a = car(0, 0, 0.1)
        b = car(0.4, -0.3, 0.15)
        src, dst = pair_corners(a, b)
        # Paired corners must be the nearest-consistent assignment: the
        # total cost should be at most the zero-shift cost.
        zero_cost = np.sum((a.corners() - b.corners()) ** 2)
        assert np.sum((src - dst) ** 2) <= zero_cost + 1e-12


class TestCornerCorrespondences:
    def test_stacks_four_per_match(self):
        src_boxes = [car(0, 0), car(20, 0)]
        dst_boxes = [car(0.2, 0), car(20.2, 0)]
        matches = match_boxes_by_overlap(src_boxes, dst_boxes)
        src, dst = corner_correspondences(src_boxes, dst_boxes, matches)
        assert src.shape == (8, 2) and dst.shape == (8, 2)

    def test_empty_matches(self):
        src, dst = corner_correspondences([], [], [])
        assert src.shape == (0, 2)

    def test_end_to_end_recovers_residual_transform(self):
        """The stage-2 promise: corner correspondences from overlapped
        boxes recover the residual misalignment exactly (no noise)."""
        residual = SE2(np.deg2rad(2.0), 0.8, -0.5)
        dst_boxes = [car(5, 2, 0.1), car(-8, 4, 0.4), car(12, -3, -0.2)]
        src_boxes = [b.transform(residual.inverse()) for b in dst_boxes]
        matches = match_boxes_by_overlap(src_boxes, dst_boxes)
        assert len(matches) == 3
        src, dst = corner_correspondences(src_boxes, dst_boxes, matches)
        estimate = kabsch_2d(src, dst)
        assert estimate.is_close(residual, atol_translation=1e-9,
                                 atol_rotation=1e-9)
