"""Tests for repro.boxes.nms."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.boxes.nms import non_max_suppression


def car(x, y, yaw=0.0):
    return Box2D(x, y, 4.5, 1.9, yaw)


class TestNms:
    def test_keeps_all_disjoint(self):
        boxes = [car(0, 0), car(20, 0), car(40, 0)]
        kept = non_max_suppression(boxes, np.array([0.9, 0.8, 0.7]))
        assert sorted(kept) == [0, 1, 2]

    def test_suppresses_duplicates(self):
        boxes = [car(0, 0), car(0.1, 0.05)]
        kept = non_max_suppression(boxes, np.array([0.6, 0.9]))
        assert kept == [1]

    def test_keeps_highest_score(self):
        boxes = [car(0, 0), car(0.2, 0), car(30, 0)]
        kept = non_max_suppression(boxes, np.array([0.5, 0.95, 0.4]))
        assert kept[0] == 1
        assert 0 not in kept

    def test_result_order_descending_score(self):
        boxes = [car(0, 0), car(20, 0), car(40, 0)]
        scores = np.array([0.3, 0.9, 0.6])
        kept = non_max_suppression(boxes, scores)
        assert list(scores[kept]) == sorted(scores[kept], reverse=True)

    def test_empty(self):
        assert non_max_suppression([], np.array([])) == []

    def test_threshold_effect(self):
        boxes = [car(0, 0), car(2.0, 0)]  # moderate overlap
        loose = non_max_suppression(boxes, np.array([0.9, 0.8]),
                                    iou_threshold=0.6)
        strict = non_max_suppression(boxes, np.array([0.9, 0.8]),
                                     iou_threshold=0.1)
        assert len(loose) == 2
        assert len(strict) == 1

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            non_max_suppression([car(0, 0)], np.array([0.5, 0.6]))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            non_max_suppression([], np.array([]), iou_threshold=0.0)
