"""Tests for the benchmark-regression gate (tools/check_bench.py)."""

import importlib.util
import json
import pathlib
import sys

import pytest

_TOOL = (pathlib.Path(__file__).resolve().parent.parent
         / "tools" / "check_bench.py")
_spec = importlib.util.spec_from_file_location("check_bench", _TOOL)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


BENCH = {
    "schema_version": 1,
    "config": {"rng_seed": 7, "strict": False},
    "kernels": {
        "log_gabor_bank": {"before_ms": 200.0, "after_ms": 90.0,
                           "speedup": 2.2},
        "ransac_rigid_2d": {"before_ms": 4.4, "after_ms": 1.5,
                            "speedup": 2.9, "num_matches": 47},
    },
    "end_to_end": {"before_ms": 900.0, "after_ms": 300.0, "speedup": 3.0,
                   "inliers_bv": 23, "strict": False},
    "service": {"responded": 80, "sustained_rps": 10.0, "p99_ms": 500.0,
                "peak_rss_mb": 900.0},
}


@pytest.fixture()
def layout(tmp_path, monkeypatch):
    """A bench file and its identical committed baseline."""
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    bench = tmp_path / "BENCH_x.json"
    bench.write_text(json.dumps(BENCH))
    (baselines / "BENCH_x.json").write_text(json.dumps(BENCH))
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    return bench, baselines


def run(bench, baselines, *extra):
    return check_bench.main([str(bench), "--baselines-dir",
                             str(baselines), *extra])


def rewrite(bench, **overrides):
    data = json.loads(bench.read_text())
    for dotted, value in overrides.items():
        node = data
        *parents, leaf = dotted.split(".")
        for key in parents:
            node = node[key]
        node[leaf] = value
    bench.write_text(json.dumps(data))


class TestExitCodes:
    def test_identical_passes(self, layout, capsys):
        bench, baselines = layout
        assert run(bench, baselines) == 0
        assert "within budget" in capsys.readouterr().out

    def test_metric_drift_fails(self, layout, capsys):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.inliers_bv": 9})
        assert run(bench, baselines) == 2
        out = capsys.readouterr().out
        assert "FAIL" in out and "inliers_bv" in out

    def test_timing_drift_warns_by_default(self, layout, capsys):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.after_ms": 900.0})
        assert run(bench, baselines) == 0
        assert "WARN" in capsys.readouterr().out

    def test_timing_drift_fails_under_strict_flag(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.after_ms": 900.0})
        assert run(bench, baselines, "--strict") == 2

    def test_timing_drift_fails_under_strict_env(self, layout, monkeypatch):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.after_ms": 900.0})
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        assert run(bench, baselines) == 2

    def test_timing_within_budget_passes(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.after_ms": 360.0})  # 1.2x < 1.5x
        assert run(bench, baselines) == 0

    def test_speedup_drop_warns(self, layout, capsys):
        bench, baselines = layout
        rewrite(bench, **{"kernels.log_gabor_bank.speedup": 1.0})
        assert run(bench, baselines) == 0
        assert "speedup" in capsys.readouterr().out

    def test_missing_bench_file_is_usage_error(self, layout):
        _bench, baselines = layout
        assert run(baselines / "nope.json", baselines) == 1

    def test_missing_baseline_warns_and_passes(self, layout, capsys):
        bench, baselines = layout
        (baselines / "BENCH_x.json").unlink()
        assert run(bench, baselines) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_schema_drift_fails(self, layout, capsys):
        bench, baselines = layout
        data = json.loads(bench.read_text())
        del data["kernels"]["ransac_rigid_2d"]
        bench.write_text(json.dumps(data))
        assert run(bench, baselines) == 2
        assert "missing from current" in capsys.readouterr().out

    def test_strict_flag_never_masks_metric_drift(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.inliers_bv": 9})
        assert run(bench, baselines, "--strict") == 2


class TestServiceFields:
    def test_throughput_drop_warns_inverted(self, layout, capsys):
        """``*_rps`` is larger-is-better: halving it is a 2x slowdown."""
        bench, baselines = layout
        rewrite(bench, **{"service.sustained_rps": 5.0})
        assert run(bench, baselines) == 0
        assert "sustained_rps" in capsys.readouterr().out

    def test_throughput_gain_passes_clean(self, layout, capsys):
        bench, baselines = layout
        rewrite(bench, **{"service.sustained_rps": 20.0})
        assert run(bench, baselines) == 0
        assert "WARN" not in capsys.readouterr().out

    def test_memory_ceiling_growth_warns(self, layout, capsys):
        bench, baselines = layout
        rewrite(bench, **{"service.peak_rss_mb": 2000.0})
        assert run(bench, baselines) == 0
        assert "peak_rss_mb" in capsys.readouterr().out

    def test_memory_growth_fails_under_strict(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"service.peak_rss_mb": 2000.0})
        assert run(bench, baselines, "--strict") == 2

    def test_response_count_is_deterministic(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"service.responded": 79})
        assert run(bench, baselines) == 2


class TestClassification:
    def test_strict_field_is_ignored(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"end_to_end.strict": True,
                          "config.strict": True})
        assert run(bench, baselines) == 0

    def test_config_drift_is_metric_drift(self, layout):
        bench, baselines = layout
        rewrite(bench, **{"config.rng_seed": 8})
        assert run(bench, baselines) == 2

    def test_real_baselines_gate_their_own_bench_outputs(self, capsys):
        """The committed baselines must pass against the committed bench
        outputs (they are copies, per make bench-baseline)."""
        root = _TOOL.parent.parent
        results = root / "benchmarks" / "results"
        code = check_bench.main(
            [str(results / "BENCH_stage1.json"),
             str(results / "BENCH_pipeline.json"),
             "--baselines-dir", str(results / "baselines")])
        assert code == 0, capsys.readouterr().out
