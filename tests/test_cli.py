"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import all_specs, experiment_names


class TestParser:
    def test_every_experiment_registered(self):
        parser = build_parser()
        for name in experiment_names():
            args = parser.parse_args([name, "--pairs", "3"])
            assert args.command == name
            assert args.pairs == 3

    def test_runtime_flags(self):
        parser = build_parser()
        args = parser.parse_args(["fig7", "--workers", "4", "--timings"])
        assert args.workers == 4
        assert args.timings is True
        args = parser.parse_args(["fig7"])
        assert args.workers == 1
        assert args.timings is False
        assert args.profile is None

    def test_profile_flag(self):
        parser = build_parser()
        assert parser.parse_args(["fig7", "--profile"]).profile == 25
        assert parser.parse_args(["fig7", "--profile", "10"]).profile == 10

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in experiment_names():
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestExecution:
    def test_runs_small_experiment(self, capsys):
        assert main(["bandwidth", "--pairs", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Bandwidth" in out

    def test_writes_output_file(self, tmp_path, capsys):
        assert main(["bandwidth", "--pairs", "2", "--seed", "5",
                     "--output", str(tmp_path)]) == 0
        saved = tmp_path / "bandwidth.txt"
        assert saved.exists()
        assert "Bandwidth" in saved.read_text()

    def test_timings_report_printed(self, capsys):
        assert main(["dataset-stats", "--pairs", "2", "--timings"]) == 0
        out = capsys.readouterr().out
        assert "Sweep timings" in out

    def test_profile_report_printed(self, capsys):
        assert main(["bandwidth", "--pairs", "2", "--profile", "5"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "ncalls" in out

    def test_every_runner_accepts_standard_kwargs(self):
        """All registered runners share the uniform
        (num_pairs, seed, *, workers) contract the CLI relies on."""
        import inspect
        for spec in all_specs():
            params = inspect.signature(spec.runner).parameters
            assert "num_pairs" in params, spec.name
            assert "seed" in params, spec.name
            assert "workers" in params, spec.name
            assert params["workers"].kind is \
                inspect.Parameter.KEYWORD_ONLY, spec.name


class TestRemovedAlias:
    def test_experiments_table_gone(self):
        """The PR-1 ``cli.EXPERIMENTS`` shim is removed; the registry
        is the one lookup surface."""
        import repro.cli as cli
        with pytest.raises(AttributeError):
            cli.EXPERIMENTS

    def test_unknown_attribute_raises(self):
        import repro.cli as cli
        with pytest.raises(AttributeError):
            cli.NOPE


class TestExperimentOptions:
    def test_tier_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["bandwidth", "--tier", "keypoints",
                                  "--adaptive"])
        assert args.tier == "keypoints"
        assert args.adaptive is True

    def test_tier_flag_scoped_to_bandwidth(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig7", "--tier", "keypoints"])

    def test_rejects_unknown_tier(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["bandwidth", "--tier", "hologram"])

    def test_grid_path_via_cli(self, capsys):
        assert main(["bandwidth", "--pairs", "2", "--seed", "5",
                     "--tier", "boxes-only"]) == 0
        out = capsys.readouterr().out
        assert "Comms grid" in out
        assert "boxes-only" in out
