"""Tests for the command-line interface."""

import pathlib

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_registered(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name, "--pairs", "3"])
            assert args.command == name
            assert args.pairs == 3

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestExecution:
    def test_runs_small_experiment(self, capsys):
        assert main(["bandwidth", "--pairs", "2", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Bandwidth" in out

    def test_writes_output_file(self, tmp_path, capsys):
        assert main(["bandwidth", "--pairs", "2", "--seed", "5",
                     "--output", str(tmp_path)]) == 0
        saved = tmp_path / "bandwidth.txt"
        assert saved.exists()
        assert "Bandwidth" in saved.read_text()

    def test_every_runner_accepts_standard_kwargs(self):
        """All registered runners share the (num_pairs, seed) contract the
        CLI relies on."""
        import inspect
        for name, (runner, _, _) in EXPERIMENTS.items():
            params = inspect.signature(runner).parameters
            assert "num_pairs" in params, name
            assert "seed" in params, name
