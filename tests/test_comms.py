"""Tests for repro.comms (wire codecs and the V2V message)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bev.projection import BVImage, height_map
from repro.boxes.box import Box2D
from repro.comms import (
    V2VMessage,
    decode_boxes,
    decode_bv_image,
    encode_boxes,
    encode_bv_image,
)


class TestBVCodec:
    def test_roundtrip_structure(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        decoded = decode_bv_image(encode_bv_image(bv))
        assert decoded.size == bv.size
        assert decoded.cell_size == bv.cell_size
        assert decoded.lidar_range == bv.lidar_range
        # Occupancy is preserved exactly.
        np.testing.assert_array_equal(decoded.image > 0, bv.image > 0)

    def test_quantization_error_bounded(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        decoded = decode_bv_image(encode_bv_image(bv))
        scale = bv.image.max()
        error = np.abs(decoded.image - bv.image)
        assert error.max() <= scale / 255.0 + 1e-9

    def test_compression_beats_dense(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        encoded = encode_bv_image(bv)
        dense = bv.image.size  # one byte per pixel
        assert len(encoded) < dense / 2  # sparse images compress well

    def test_empty_image(self):
        bv = BVImage(np.zeros((64, 64)), 0.5, 16.0)
        decoded = decode_bv_image(encode_bv_image(bv))
        assert decoded.image.max() == 0.0

    def test_full_image(self):
        bv = BVImage(np.full((32, 32), 3.0), 0.5, 8.0)
        decoded = decode_bv_image(encode_bv_image(bv))
        np.testing.assert_allclose(decoded.image, 3.0, rtol=0.01)

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            decode_bv_image(b"XXXX" + b"\x00" * 20)

    def test_rejects_truncated(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        data = encode_bv_image(bv)
        with pytest.raises(ValueError):
            decode_bv_image(data[:len(data) // 2])

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random_sparse(self, seed):
        rng = np.random.default_rng(seed)
        image = np.zeros((48, 48))
        n = rng.integers(0, 300)
        rows = rng.integers(0, 48, n)
        cols = rng.integers(0, 48, n)
        image[rows, cols] = rng.uniform(0.1, 5.0, n)
        bv = BVImage(image, 0.4, 9.6)
        decoded = decode_bv_image(encode_bv_image(bv))
        np.testing.assert_array_equal(decoded.image > 0, image > 0)
        assert np.abs(decoded.image - image).max() <= 5.0 / 255 + 1e-9

    def test_long_zero_run_split(self):
        # > 65535 consecutive zeros exercises the run splitting.
        image = np.zeros((300, 300))
        image[-1, -1] = 1.0
        bv = BVImage(image, 0.5, 75.0)
        decoded = decode_bv_image(encode_bv_image(bv))
        assert decoded.image[-1, -1] > 0
        assert (decoded.image > 0).sum() == 1


class TestBoxCodec:
    def test_roundtrip(self):
        boxes = [Box2D(1.5, -2.25, 4.5, 1.9, 0.7),
                 Box2D(-10.0, 3.0, 5.0, 2.1, -1.2)]
        decoded = decode_boxes(encode_boxes(boxes))
        assert len(decoded) == 2
        for a, b in zip(boxes, decoded):
            assert a.center_x == pytest.approx(b.center_x, abs=1e-5)
            assert a.yaw == pytest.approx(b.yaw, abs=1e-5)

    def test_empty_list(self):
        assert decode_boxes(encode_boxes([])) == []

    def test_rejects_wrong_magic(self):
        with pytest.raises(ValueError):
            decode_boxes(b"YYYY\x00\x00")


class TestV2VMessage:
    def test_roundtrip(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        boxes = [Box2D(5.0, 2.0, 4.5, 1.9, 0.1)]
        message = V2VMessage(bv, boxes)
        parsed = V2VMessage.from_bytes(message.to_bytes())
        assert parsed.bv_image.size == bv.size
        assert len(parsed.boxes) == 1

    def test_size_far_below_raw_cloud(self, small_scan):
        from repro.core.pipeline import BBAlign
        bv = height_map(small_scan, 0.8, 76.8)
        message = V2VMessage(bv, [])
        assert message.size_bytes < BBAlign.raw_cloud_bytes(small_scan) / 10

    def test_recovery_works_on_decoded_message(self, frame_pair,
                                               bv_matcher):
        """End-to-end: stage 1 run on the *transmitted* (quantized,
        decoded) BV image still matches."""
        bv_other = bv_matcher.make_bv_image(frame_pair.other_cloud)
        message = V2VMessage(bv_other, [])
        received = V2VMessage.from_bytes(message.to_bytes())
        ego_features = bv_matcher.extract_from_cloud(frame_pair.ego_cloud)
        other_features = bv_matcher.extract(received.bv_image)
        result = bv_matcher.match(other_features, ego_features, rng=0)
        assert result.success
        err = result.transform.translation_distance(frame_pair.gt_relative)
        assert err < 1.5

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            V2VMessage.from_bytes(b"nope")


class TestCompressedCodec:
    def test_compressed_roundtrip(self, small_scan):
        from repro.bev.projection import height_map
        from repro.comms import decode_bv_image, encode_bv_image
        bv = height_map(small_scan, 0.8, 76.8)
        plain = encode_bv_image(bv)
        packed = encode_bv_image(bv, compress=True)
        assert len(packed) < len(plain)
        a = decode_bv_image(plain)
        b = decode_bv_image(packed)
        np.testing.assert_allclose(a.image, b.image)

    def test_corrupt_compressed_rejected(self, small_scan):
        from repro.bev.projection import height_map
        from repro.comms import decode_bv_image, encode_bv_image
        bv = height_map(small_scan, 0.8, 76.8)
        data = bytearray(encode_bv_image(bv, compress=True))
        data[40] ^= 0xFF
        with pytest.raises(ValueError):
            decode_bv_image(bytes(data))
