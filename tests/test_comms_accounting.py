"""Byte accounting: ambient counters and the standalone ledger."""

from repro.comms import CommLedger, record_received, record_sent
from repro.obs.metrics import MetricsRegistry, use_registry


class TestAmbientCounters:
    def test_record_sent_counts(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            record_sent("bv-image", 1800, 50000)
            record_sent("bv-image", 1900, 51000)
            record_sent("boxes-only", 150, 100)
        counters = registry.counters
        assert counters["comms/messages_sent"].value == 3
        assert counters["comms/bytes/encoded"].value == 3850
        assert counters["comms/bytes/payload"].value == 101100
        assert counters["comms/tier/bv-image/messages"].value == 2
        assert counters["comms/tier/bv-image/bytes"].value == 3700
        assert counters["comms/tier/boxes-only/messages"].value == 1

    def test_record_received_counts(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            record_received("keypoints", 1400, ok=True)
            record_received(None, 900, ok=False)
        counters = registry.counters
        assert counters["comms/messages_received"].value == 2
        assert counters["comms/bytes/received"].value == 2300
        assert counters["comms/decode/ok"].value == 1
        assert counters["comms/decode/error"].value == 1
        assert counters["comms/tier/keypoints/received"].value == 1

    def test_noop_without_registry(self):
        # Must not raise when no registry is installed.
        record_sent("bv-image", 10, 10)
        record_received(None, 10, ok=False)


class TestCommLedger:
    def test_totals_and_ratios(self):
        ledger = CommLedger()
        ledger.sent("bv-image", 2000, 50000)
        ledger.sent("bv-image", 1000, 40000)
        ledger.sent("boxes-only", 100, 80)
        ledger.received(2000, ok=True)
        ledger.received(64, ok=False)
        assert ledger.messages_sent == 3
        assert ledger.messages_received == 2
        assert ledger.encoded_bytes == 3100
        assert ledger.received_bytes == 2064
        assert ledger.decode_errors == 1
        assert ledger.mean_encoded_bytes == 3100 / 3
        assert ledger.compression_ratio == 90080 / 3100
        bv = ledger.tiers["bv-image"]
        assert bv.messages == 2
        assert bv.mean_encoded_bytes == 1500.0
        assert bv.compression_ratio == 30.0

    def test_empty_ledger_is_well_defined(self):
        ledger = CommLedger()
        assert ledger.mean_encoded_bytes == 0.0
        assert ledger.compression_ratio == 0.0
        assert ledger.snapshot()["messages_sent"] == 0

    def test_snapshot_is_json_ready(self):
        import json
        ledger = CommLedger()
        ledger.sent("keypoints", 1400, 9000)
        ledger.received(1400, ok=True)
        snapshot = ledger.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["tiers"]["keypoints"]["messages"] == 1
