"""LossyChannel impairment model: determinism and per-mode behavior."""

import numpy as np
import pytest

from repro.comms import Delivery, LossyChannel

PAYLOAD = bytes(range(256)) * 4


class TestLossless:
    def test_identity_delivery(self):
        channel = LossyChannel()
        delivery = channel.transmit(PAYLOAD)
        assert delivery.payload == PAYLOAD
        assert delivery.delivered
        assert not delivery.impaired

    def test_lossless_property(self):
        assert LossyChannel().lossless
        assert not LossyChannel(drop_rate=0.1).lossless

    def test_lossless_ignores_rng_state(self):
        """The zero-impairment control cell draws no randomness, so its
        outputs cannot depend on rng plumbing."""
        channel = LossyChannel()
        a = channel.transmit(PAYLOAD, rng=np.random.default_rng(1))
        b = channel.transmit(PAYLOAD, rng=np.random.default_rng(999))
        assert a == b == Delivery(payload=PAYLOAD)


class TestImpairments:
    def test_certain_drop(self):
        delivery = LossyChannel(drop_rate=1.0).transmit(PAYLOAD, rng=0)
        assert delivery.dropped
        assert delivery.payload is None
        assert not delivery.delivered
        assert delivery.impaired

    def test_certain_truncation_shortens(self):
        delivery = LossyChannel(truncation_rate=1.0).transmit(PAYLOAD, rng=0)
        assert delivery.truncated
        assert len(delivery.payload) < len(PAYLOAD)
        assert delivery.payload == PAYLOAD[:len(delivery.payload)]

    def test_certain_corruption_flips_every_byte(self):
        delivery = LossyChannel(corruption_rate=1.0).transmit(PAYLOAD, rng=0)
        assert delivery.corrupted_bytes == len(PAYLOAD)
        assert len(delivery.payload) == len(PAYLOAD)
        # XOR with a value in 1..255 changes every hit byte.
        assert all(a != b for a, b in zip(delivery.payload, PAYLOAD))

    def test_certain_staleness_delays(self):
        channel = LossyChannel(stale_rate=1.0, max_delay_frames=3)
        delivery = channel.transmit(PAYLOAD, rng=0)
        assert 1 <= delivery.delay_frames <= 3
        assert delivery.payload == PAYLOAD  # stale frames arrive intact


class TestDeterminism:
    def test_same_stream_same_delivery(self):
        channel = LossyChannel(drop_rate=0.3, truncation_rate=0.3,
                               corruption_rate=0.01, stale_rate=0.3)
        deliveries = [channel.transmit(PAYLOAD,
                                       rng=np.random.default_rng([7, i]))
                      for i in range(20)]
        again = [channel.transmit(PAYLOAD,
                                  rng=np.random.default_rng([7, i]))
                 for i in range(20)]
        assert deliveries == again

    def test_channel_seed_used_without_explicit_rng(self):
        a = LossyChannel(drop_rate=0.5, seed=3)
        b = LossyChannel(drop_rate=0.5, seed=3)
        assert [a.transmit(PAYLOAD) for _ in range(10)] \
            == [b.transmit(PAYLOAD) for _ in range(10)]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"drop_rate": -0.1}, {"drop_rate": 1.5},
        {"truncation_rate": 2.0}, {"corruption_rate": -1.0},
        {"stale_rate": 1.01},
    ])
    def test_rates_must_be_probabilities(self, kwargs):
        with pytest.raises(ValueError):
            LossyChannel(**kwargs)

    def test_max_delay_must_be_positive(self):
        with pytest.raises(ValueError):
            LossyChannel(max_delay_frames=0)
