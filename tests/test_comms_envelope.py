"""Service envelope (SQ01/SP01) round trips and validation."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.comms import (
    CodecError,
    ServiceRequest,
    ServiceResponse,
    Tier,
    TieredMessage,
    decode_request,
    decode_response,
    sniff_envelope,
    sniff_tier,
)
from repro.comms.codec import _frame
from repro.comms.envelope import _REQ_HEAD, REQUEST_MAGIC


def some_boxes(seed=0):
    rng = np.random.default_rng(seed)
    return [Box2D(*rng.uniform(-30, 30, 2), 4.5, 1.9,
                  rng.uniform(-3, 3)) for _ in range(4)]


class TestRequestRoundTrip:
    def test_indexed(self):
        request = ServiceRequest(request_id=41, index=17, deadline_ms=750)
        decoded = decode_request(request.encode())
        assert decoded == request
        assert decoded.kind == "indexed"

    def test_scan_pair(self):
        scans = TieredMessage(Tier.BOXES_ONLY, some_boxes())
        request = ServiceRequest(request_id=5, ego=scans, other=scans)
        decoded = decode_request(request.encode())
        assert decoded.kind == "scan-pair"
        assert decoded.request_id == 5
        assert decoded.ego.tier is Tier.BOXES_ONLY
        assert len(decoded.ego.boxes) == len(scans.boxes)
        # Boxes travel at float32 wire precision through the tier codec.
        for a, b in zip(decoded.other.boxes, scans.boxes):
            assert abs(a.center_x - b.center_x) < 1e-4
            assert abs(a.yaw - b.yaw) < 1e-6

    def test_request_id_and_deadline_survive(self):
        request = ServiceRequest(request_id=0xFFFFFFFF, index=0,
                                 deadline_ms=0xFFFFFFFF)
        decoded = decode_request(request.encode())
        assert decoded.request_id == 0xFFFFFFFF
        assert decoded.deadline_ms == 0xFFFFFFFF

    def test_exactly_one_body_enforced(self):
        scans = TieredMessage(Tier.BOXES_ONLY, [])
        with pytest.raises(ValueError):
            ServiceRequest(request_id=1)
        with pytest.raises(ValueError):
            ServiceRequest(request_id=1, index=0, ego=scans, other=scans)
        with pytest.raises(ValueError):
            ServiceRequest(request_id=1, ego=scans)

    def test_unknown_kind_rejected(self):
        header = _REQ_HEAD.pack(REQUEST_MAGIC, 1, 9, 0, 0)
        with pytest.raises(CodecError, match="kind"):
            decode_request(_frame(header, b"\x00\x00\x00\x00"))

    def test_oversized_index_block_rejected(self):
        header = _REQ_HEAD.pack(REQUEST_MAGIC, 1, 0, 0, 0)
        with pytest.raises(CodecError):
            decode_request(_frame(header, b"\x00" * 8))

    def test_scan_pair_length_mismatch_rejected(self):
        """A scan-pair block whose promised lengths disagree with the
        payload is rejected before the embedded decoders run."""
        scans = TieredMessage(Tier.BOXES_ONLY, some_boxes())
        request = ServiceRequest(request_id=5, ego=scans, other=scans)
        data = bytearray(request.encode())
        # Grow the claimed ego length; re-frame so the CRC is valid and
        # the *structural* check has to catch it.
        head_len = _REQ_HEAD.size
        payload = bytes(data[head_len + 4:])
        bad = bytearray(payload)
        bad[0] ^= 0x01
        with pytest.raises(CodecError):
            decode_request(_frame(bytes(data[:head_len]), bytes(bad)))


class TestResponseRoundTrip:
    @pytest.mark.parametrize("status,degradation,reason", [
        ("ok", "full", None),
        ("ok", "boxes-only", "stage1-low-inliers"),
        ("deadline", None, "deadline-exceeded"),
        ("exhausted", None, "worker-crash"),
        ("shed", None, "service-shutdown"),
    ])
    def test_round_trip(self, status, degradation, reason):
        response = ServiceResponse(
            request_id=12, status=status, success=status == "ok",
            failure_reason=reason, degradation=degradation,
            inliers_bv=7, inliers_box=3, tx=1.25, ty=-0.5, theta=0.125)
        assert decode_response(response.encode()) == response

    def test_pose_is_exact(self):
        """Poses cross the wire as float64 — byte-exact, which the
        service's sweep-parity guarantee depends on."""
        tx, ty, theta = 0.1 + 0.2, -1.0 / 3.0, np.pi / 7
        response = ServiceResponse(
            request_id=1, status="ok", success=True, failure_reason=None,
            degradation="full", inliers_bv=1, inliers_box=1,
            tx=tx, ty=ty, theta=theta)
        decoded = decode_response(response.encode())
        assert decoded.tx == tx and decoded.ty == ty \
            and decoded.theta == theta

    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError):
            ServiceResponse(request_id=1, status="maybe", success=False,
                            failure_reason=None, degradation=None,
                            inliers_bv=0, inliers_box=0,
                            tx=0.0, ty=0.0, theta=0.0)

    def test_unknown_degradation_rejected(self):
        with pytest.raises(ValueError):
            ServiceResponse(request_id=1, status="ok", success=True,
                            failure_reason=None, degradation="psychic",
                            inliers_bv=0, inliers_box=0,
                            tx=0.0, ty=0.0, theta=0.0)

    def test_non_finite_pose_rejected_on_decode(self):
        response = ServiceResponse(
            request_id=1, status="ok", success=True, failure_reason=None,
            degradation="full", inliers_bv=0, inliers_box=0,
            tx=float("nan"), ty=0.0, theta=0.0)
        with pytest.raises(CodecError, match="non-finite"):
            decode_response(response.encode())


class TestSniff:
    def test_sniff_envelope(self):
        request = ServiceRequest(request_id=1, index=0).encode()
        response = ServiceResponse(
            request_id=1, status="shed", success=False,
            failure_reason=None, degradation=None, inliers_bv=0,
            inliers_box=0, tx=0.0, ty=0.0, theta=0.0).encode()
        assert sniff_envelope(request) == "request"
        assert sniff_envelope(response) == "response"
        assert sniff_envelope(b"TB01whatever") is None
        assert sniff_envelope(b"") is None

    def test_service_magics_invisible_to_tier_sniffer(self):
        """The two namespaces stay disjoint: a service frame is not a
        tier, and a tier frame is not a service envelope."""
        request = ServiceRequest(request_id=1, index=0).encode()
        assert sniff_tier(request) is None
        with pytest.raises(CodecError):
            decode_response(request)
