"""Codec hardening: property/fuzz tests for the wire format.

The contract under test is absolute: for *any* byte buffer, the
decoders either return a faithfully reconstructed value or raise
:class:`~repro.comms.CodecError` — never a crash, never silent garbage.
Exhaustive truncation (every prefix of a real message) plus seeded
byte-flip fuzzing pin it down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D
from repro.comms import (
    CodecError,
    Tier,
    TieredMessage,
    V2VMessage,
    decode_message,
    encode_message,
)
from repro.comms.codec import (
    decode_boxes,
    decode_bv_image,
    encode_boxes,
    encode_bv_image,
)
from repro.comms.envelope import (
    ServiceRequest,
    ServiceResponse,
    decode_request,
    decode_response,
)
from repro.comms.tiers import KeypointPayload
from repro.pointcloud.cloud import PointCloud


def small_bv_image(seed=0):
    rng = np.random.default_rng(seed)
    image = np.zeros((16, 16))
    occupied = rng.random((16, 16)) < 0.2
    image[occupied] = rng.uniform(0.5, 5.0, occupied.sum())
    return BVImage(image, cell_size=0.4, lidar_range=3.2)


def some_boxes(seed=0):
    rng = np.random.default_rng(seed)
    return [Box2D(*rng.uniform(-30, 30, 2), 4.5, 1.9,
                  rng.uniform(-3, 3)) for _ in range(5)]


def small_keypoints(seed=0, n=6):
    rng = np.random.default_rng(seed)
    desc = rng.random((n, 2 * 2 * 3))
    desc /= np.linalg.norm(desc, axis=1, keepdims=True)
    return KeypointPayload(
        xy=rng.integers(0, 16, (n, 2)).astype(np.int64),
        scores=rng.random(n), descriptors=desc, image_size=16,
        cell_size=0.4, lidar_range=3.2, grid_size=2, num_orientations=3)


def tier_message(tier: Tier) -> bytes:
    """A small valid encoded message of the requested tier."""
    boxes = some_boxes()
    if tier is Tier.FULL_SCAN:
        rng = np.random.default_rng(2)
        message = TieredMessage(tier, boxes,
                                cloud=PointCloud(rng.uniform(
                                    -10, 10, (40, 3))))
    elif tier is Tier.BV_IMAGE:
        message = TieredMessage(tier, boxes, bv_image=small_bv_image())
    elif tier is Tier.KEYPOINTS:
        message = TieredMessage(tier, boxes, keypoints=small_keypoints())
    else:
        message = TieredMessage(tier, boxes)
    return encode_message(message, record=False)


def service_request(kind: str) -> bytes:
    """A small valid encoded service request of the requested kind."""
    if kind == "indexed":
        return ServiceRequest(request_id=7, index=3,
                              deadline_ms=250).encode()
    scans = TieredMessage(Tier.BOXES_ONLY, some_boxes())
    return ServiceRequest(request_id=8, ego=scans, other=scans).encode()


def service_response() -> bytes:
    """A small valid encoded service response."""
    return ServiceResponse(
        request_id=7, status="ok", success=True, failure_reason=None,
        degradation="full", inliers_bv=12, inliers_box=5,
        tx=0.5, ty=-0.25, theta=0.01).encode()


class TestRoundTrip:
    @pytest.mark.parametrize("compress", [False, True])
    def test_bv_round_trip(self, compress):
        bv = small_bv_image()
        decoded = decode_bv_image(encode_bv_image(bv, compress=compress))
        assert decoded.size == bv.size
        assert decoded.cell_size == bv.cell_size
        assert decoded.lidar_range == bv.lidar_range
        # Lossy only by 8-bit quantization.
        assert np.max(np.abs(decoded.image - bv.image)) \
            < bv.image.max() / 255.0 + 1e-9

    def test_boxes_round_trip(self):
        boxes = some_boxes()
        decoded = decode_boxes(encode_boxes(boxes))
        assert len(decoded) == len(boxes)
        for a, b in zip(decoded, boxes):  # float32 wire precision
            assert abs(a.center_x - b.center_x) < 1e-5
            assert abs(a.center_y - b.center_y) < 1e-5
            assert abs(a.yaw - b.yaw) < 1e-6

    def test_message_round_trip(self):
        message = V2VMessage(small_bv_image(), some_boxes())
        decoded = V2VMessage.from_bytes(message.to_bytes())
        assert len(decoded.boxes) == len(message.boxes)
        assert decoded.bv_image.size == message.bv_image.size


class TestEveryTruncationPoint:
    """Cutting a valid message at *any* byte must raise CodecError.

    This sweeps every prefix — header boundaries, the CRC field, RLE
    run tokens, mid-payload — so no truncation length has a crash or
    silent-garbage path.
    """

    def test_bv_image_all_prefixes(self):
        data = encode_bv_image(small_bv_image())
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_bv_image(data[:cut])

    def test_bv_image_compressed_all_prefixes(self):
        data = encode_bv_image(small_bv_image(), compress=True)
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_bv_image(data[:cut])

    def test_boxes_all_prefixes(self):
        data = encode_boxes(some_boxes())
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_boxes(data[:cut])

    def test_v2v_message_all_prefixes(self):
        data = V2VMessage(small_bv_image(), some_boxes()).to_bytes()
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                V2VMessage.from_bytes(data[:cut])

    @pytest.mark.parametrize("tier", list(Tier))
    def test_tiered_message_all_prefixes(self, tier):
        """Every tier magic gets the same total-decoder guarantee."""
        data = tier_message(tier)
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_message(data[:cut])

    @pytest.mark.parametrize("kind", ["indexed", "scan-pair"])
    def test_service_request_all_prefixes(self, kind):
        """The service's SQ01 envelope is total like every other codec
        — a truncated request must never crash a service worker."""
        data = service_request(kind)
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_request(data[:cut])

    def test_service_response_all_prefixes(self):
        data = service_response()
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                decode_response(data[:cut])


class TestByteFlips:
    """Any single-byte XOR damage must be detected.

    Header bytes are covered by the CRC (it runs over header + payload),
    magic damage is a magic check, and payload damage is a CRC failure —
    there is no byte whose flip decodes silently.
    """

    @given(st.integers(0, 10 ** 9), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_bv_image_single_flip_detected(self, position_seed, flip):
        data = bytearray(encode_bv_image(small_bv_image()))
        data[position_seed % len(data)] ^= flip
        with pytest.raises(CodecError):
            decode_bv_image(bytes(data))

    @given(st.integers(0, 10 ** 9), st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_v2v_message_single_flip_detected(self, position_seed, flip):
        data = bytearray(V2VMessage(small_bv_image(),
                                    some_boxes()).to_bytes())
        data[position_seed % len(data)] ^= flip
        with pytest.raises(CodecError):
            V2VMessage.from_bytes(bytes(data))

    @pytest.mark.parametrize("tier", list(Tier))
    @given(position_seed=st.integers(0, 10 ** 9),
           flip=st.integers(1, 255))
    @settings(max_examples=40, deadline=None)
    def test_tiered_single_flip_detected(self, tier, position_seed, flip):
        data = bytearray(tier_message(tier))
        data[position_seed % len(data)] ^= flip
        with pytest.raises(CodecError):
            decode_message(bytes(data))

    @pytest.mark.parametrize("kind", ["indexed", "scan-pair"])
    @given(position_seed=st.integers(0, 10 ** 9),
           flip=st.integers(1, 255))
    @settings(max_examples=40, deadline=None)
    def test_service_request_single_flip_detected(self, kind,
                                                  position_seed, flip):
        data = bytearray(service_request(kind))
        data[position_seed % len(data)] ^= flip
        with pytest.raises(CodecError):
            decode_request(bytes(data))

    @given(position_seed=st.integers(0, 10 ** 9),
           flip=st.integers(1, 255))
    @settings(max_examples=40, deadline=None)
    def test_service_response_single_flip_detected(self, position_seed,
                                                   flip):
        data = bytearray(service_response())
        data[position_seed % len(data)] ^= flip
        with pytest.raises(CodecError):
            decode_response(bytes(data))

    @given(st.binary(max_size=2048))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_garbage_never_crashes(self, garbage):
        """Random buffers raise CodecError from every decoder."""
        with pytest.raises(CodecError):
            decode_bv_image(garbage)
        with pytest.raises(CodecError):
            decode_boxes(garbage)
        with pytest.raises(CodecError):
            V2VMessage.from_bytes(garbage)
        with pytest.raises(CodecError):
            decode_message(garbage)
        with pytest.raises(CodecError):
            decode_request(garbage)
        with pytest.raises(CodecError):
            decode_response(garbage)

    @given(st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_garbage_behind_valid_tier_magic(self, garbage):
        """A correct magic with arbitrary bytes after it still fails
        cleanly — the magic is a claim, the CRC is the verdict."""
        for magic in (b"TF01", b"TB01", b"TK01", b"TX01"):
            with pytest.raises(CodecError):
                decode_message(magic + garbage)

    @given(st.binary(max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_garbage_behind_valid_service_magic(self, garbage):
        with pytest.raises(CodecError):
            decode_request(b"SQ01" + garbage)
        with pytest.raises(CodecError):
            decode_response(b"SP01" + garbage)

    def test_codec_error_is_value_error(self):
        """Pre-hardening callers caught ValueError; that must keep
        working."""
        assert issubclass(CodecError, ValueError)
