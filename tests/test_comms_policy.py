"""Adaptive tier policy: ladder stepping and hysteresis."""

import pytest

from repro.comms import AdaptiveTierPolicy, TIER_LADDER, Tier
from repro.comms.channel import Delivery


def ok():
    return Delivery(payload=b"fine")


def dropped():
    return Delivery(payload=None, dropped=True)


def stale(frames=2):
    return Delivery(payload=b"late", delay_frames=frames)


class TestLadder:
    def test_ladder_order(self):
        assert TIER_LADDER == (Tier.FULL_SCAN, Tier.BV_IMAGE,
                               Tier.KEYPOINTS, Tier.BOXES_ONLY)

    def test_starts_at_full_scan(self):
        assert AdaptiveTierPolicy().tier is Tier.FULL_SCAN

    def test_custom_start(self):
        policy = AdaptiveTierPolicy(start=Tier.KEYPOINTS)
        assert policy.tier is Tier.KEYPOINTS

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            AdaptiveTierPolicy(step_down_after=0)


class TestStepping:
    def test_steps_down_after_consecutive_failures(self):
        policy = AdaptiveTierPolicy(step_down_after=2)
        policy.observe(dropped())
        assert policy.tier is Tier.FULL_SCAN  # one failure: hold
        policy.observe(dropped())
        assert policy.tier is Tier.BV_IMAGE

    def test_undecodable_counts_as_failure(self):
        policy = AdaptiveTierPolicy(step_down_after=1)
        policy.observe(ok(), decoded=False)
        assert policy.tier is Tier.BV_IMAGE

    def test_success_resets_failure_streak(self):
        policy = AdaptiveTierPolicy(step_down_after=2)
        policy.observe(dropped())
        policy.observe(ok())
        policy.observe(dropped())
        assert policy.tier is Tier.FULL_SCAN  # streak broken; no step

    def test_steps_up_after_consecutive_successes(self):
        policy = AdaptiveTierPolicy(start=Tier.KEYPOINTS,
                                    step_up_after=3)
        for _ in range(3):
            policy.observe(ok())
        assert policy.tier is Tier.BV_IMAGE

    def test_clamps_at_both_ends(self):
        policy = AdaptiveTierPolicy(step_down_after=1, step_up_after=1)
        for _ in range(10):
            policy.observe(dropped())
        assert policy.tier is Tier.BOXES_ONLY
        for _ in range(10):
            policy.observe(ok())
        assert policy.tier is Tier.FULL_SCAN

    def test_staleness_is_not_punished(self):
        policy = AdaptiveTierPolicy(step_down_after=1)
        policy.observe(stale())
        assert policy.tier is Tier.FULL_SCAN

    def test_observe_returns_next_tier(self):
        policy = AdaptiveTierPolicy(step_down_after=1)
        assert policy.observe(dropped()) is Tier.BV_IMAGE
