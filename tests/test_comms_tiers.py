"""Tiered codec: per-tier round trips, construction, and accounting."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.comms import (
    CodecError,
    Tier,
    TierCodecConfig,
    TieredMessage,
    build_message,
    decode_message,
    encode_message,
    sniff_tier,
)
from repro.comms.tiers import (
    KeypointPayload,
    dense_payload_bytes,
    pool_descriptors,
)
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.pointcloud.cloud import PointCloud


def some_boxes(seed=0, n=4):
    rng = np.random.default_rng(seed)
    return [Box2D(*rng.uniform(-30, 30, 2), 4.5, 1.9,
                  rng.uniform(-3, 3)) for _ in range(n)]


def small_cloud(seed=0, n=200):
    rng = np.random.default_rng(seed)
    return PointCloud(rng.uniform(-40, 40, (n, 3)))


def keypoint_payload(seed=0, n=12, grid=3, n_orient=6, size=48):
    rng = np.random.default_rng(seed)
    xy = np.sort(rng.integers(0, size, (n, 2)), axis=0)
    desc = rng.random((n, grid * grid * n_orient))
    desc /= np.linalg.norm(desc, axis=1, keepdims=True)
    return KeypointPayload(
        xy=xy.astype(np.int64), scores=rng.random(n).astype(np.float64),
        descriptors=desc, image_size=size, cell_size=0.4,
        lidar_range=size * 0.4 / 2, grid_size=grid,
        num_orientations=n_orient)


class TestRoundTrips:
    def test_full_scan_lossless(self):
        cloud = small_cloud()
        message = TieredMessage(Tier.FULL_SCAN, some_boxes(), cloud=cloud)
        decoded = decode_message(encode_message(message, record=False))
        assert decoded.tier is Tier.FULL_SCAN
        # Byte-exact: the control tier must reproduce the sender's scan.
        np.testing.assert_array_equal(decoded.cloud.points, cloud.points)
        for a, b in zip(decoded.boxes, message.boxes):
            assert (a.center_x, a.center_y, a.yaw) \
                == (b.center_x, b.center_y, b.yaw)

    def test_bv_image_round_trip(self):
        rng = np.random.default_rng(3)
        from repro.bev.projection import BVImage
        image = np.zeros((16, 16))
        mask = rng.random((16, 16)) < 0.3
        image[mask] = rng.uniform(0.5, 4.0, mask.sum())
        bv = BVImage(image, cell_size=0.4, lidar_range=3.2)
        message = TieredMessage(Tier.BV_IMAGE, some_boxes(), bv_image=bv)
        decoded = decode_message(encode_message(message, record=False))
        assert decoded.tier is Tier.BV_IMAGE
        assert decoded.bv_image.size == 16
        assert np.max(np.abs(decoded.bv_image.image - image)) \
            < image.max() / 255.0 + 1e-9

    @pytest.mark.parametrize("bits", [4, 8])
    def test_keypoints_round_trip(self, bits):
        kp = keypoint_payload()
        config = TierCodecConfig(descriptor_bits=bits)
        message = TieredMessage(Tier.KEYPOINTS, some_boxes(),
                                keypoints=kp)
        decoded = decode_message(encode_message(message, config,
                                                record=False))
        out = decoded.keypoints
        np.testing.assert_array_equal(out.xy, kp.xy)  # delta coding exact
        assert out.grid_size == kp.grid_size
        assert out.num_orientations == kp.num_orientations
        assert out.image_size == kp.image_size
        np.testing.assert_allclose(out.scores, kp.scores, atol=1e-3)
        # Quantized but direction-preserving: rows stay unit-norm and
        # close in cosine similarity.
        cosines = np.sum(out.descriptors * kp.descriptors, axis=1)
        tolerance = 0.9 if bits == 4 else 0.99
        assert np.all(cosines > tolerance)

    def test_keypoints_empty_payload(self):
        kp = keypoint_payload(n=0)
        message = TieredMessage(Tier.KEYPOINTS, [], keypoints=kp)
        decoded = decode_message(encode_message(message, record=False))
        assert len(decoded.keypoints.xy) == 0
        assert decoded.keypoints.descriptors.shape[0] == 0

    def test_boxes_only_round_trip(self):
        message = TieredMessage(Tier.BOXES_ONLY, some_boxes())
        data = encode_message(message, record=False)
        decoded = decode_message(data)
        assert decoded.tier is Tier.BOXES_ONLY
        assert decoded.cloud is None and decoded.bv_image is None
        assert len(decoded.boxes) == 4
        assert len(data) < 300  # the cheap rung stays cheap

    def test_size_ordering_on_synthetic_content(self):
        cloud = small_cloud(n=2000)
        from repro.bev.projection import BVImage
        rng = np.random.default_rng(1)
        image = np.zeros((48, 48))
        mask = rng.random((48, 48)) < 0.25
        image[mask] = rng.uniform(0.5, 4.0, mask.sum())
        boxes = some_boxes()
        sizes = [
            TieredMessage(Tier.FULL_SCAN, boxes, cloud=cloud).size_bytes,
            TieredMessage(Tier.BV_IMAGE, boxes, bv_image=BVImage(
                image, cell_size=0.4, lidar_range=9.6)).size_bytes,
            TieredMessage(Tier.KEYPOINTS, boxes,
                          keypoints=keypoint_payload()).size_bytes,
            TieredMessage(Tier.BOXES_ONLY, boxes).size_bytes,
        ]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)  # strictly decreasing


class TestEnvelope:
    def test_sniff_tier(self):
        data = encode_message(TieredMessage(Tier.BOXES_ONLY, []),
                              record=False)
        assert sniff_tier(data) is Tier.BOXES_ONLY
        assert sniff_tier(b"V2V1....") is None
        assert sniff_tier(b"") is None

    def test_unknown_magic_raises_codec_error(self):
        data = bytearray(encode_message(
            TieredMessage(Tier.BOXES_ONLY, some_boxes()), record=False))
        data[:4] = b"TZ99"
        with pytest.raises(CodecError, match="unknown message tier"):
            decode_message(bytes(data))

    def test_boxes_only_rejects_sense_bytes(self):
        # Hand-build a TX01 frame that smuggles sense bytes.
        from repro.comms.codec import _frame
        from repro.comms.tiers import _TIER_HEAD, encode_boxes
        sense = b"contraband"
        boxes = encode_boxes([])
        header = _TIER_HEAD.pack(b"TX01", len(sense), len(boxes))
        with pytest.raises(CodecError, match="unexpected sense"):
            decode_message(_frame(header, sense + boxes))

    def test_non_finite_box64_rejected(self):
        message = TieredMessage(
            Tier.FULL_SCAN, [Box2D(0.0, 0.0, 4.0, 2.0, 0.0)],
            cloud=small_cloud(n=5))
        data = bytearray(encode_message(message, record=False))
        # Recompute a frame with NaN center by corrupting via re-encode:
        # easier to assert through the public decoder on a crafted frame.
        from repro.comms.codec import _frame
        from repro.comms.tiers import (
            _BOX64_HEAD,
            _BOX64_RECORD,
            _TIER_HEAD,
            _encode_cloud,
        )
        sense = _encode_cloud(small_cloud(n=5), 6)
        boxes = _BOX64_HEAD.pack(1) + _BOX64_RECORD.pack(
            float("nan"), 0.0, 4.0, 2.0, 0.0)
        header = _TIER_HEAD.pack(b"TF01", len(sense), len(boxes))
        with pytest.raises(CodecError, match="non-finite"):
            decode_message(_frame(header, sense + boxes))
        del data


class TestBuildMessage:
    def test_full_scan_requires_cloud(self):
        with pytest.raises(ValueError, match="point cloud"):
            build_message(Tier.FULL_SCAN, [])

    def test_bv_image_requires_features(self):
        with pytest.raises(ValueError, match="BVFeatures"):
            build_message(Tier.BV_IMAGE, [])

    def test_keypoints_requires_features(self):
        with pytest.raises(ValueError, match="BVFeatures"):
            build_message(Tier.KEYPOINTS, [])

    def test_boxes_only_needs_nothing(self):
        message = build_message(Tier.BOXES_ONLY, some_boxes())
        assert message.tier is Tier.BOXES_ONLY

    def test_keypoint_budget_enforced(self, pair_features):
        ego, _ = pair_features
        config = TierCodecConfig(max_keypoints=10)
        message = build_message(Tier.KEYPOINTS, [], features=ego,
                                config=config)
        assert len(message.keypoints.xy) <= 10
        round_tripped = decode_message(
            encode_message(message, config, record=False))
        np.testing.assert_array_equal(round_tripped.keypoints.xy,
                                      message.keypoints.xy)


class TestPooling:
    def test_pool_reduces_dimension(self):
        desc = np.random.default_rng(0).random((7, 6 * 6 * 12))
        pooled = pool_descriptors(desc, 6, 12, 2, 2)
        assert pooled.shape == (7, 3 * 3 * 6)
        np.testing.assert_allclose(np.linalg.norm(pooled, axis=1), 1.0)

    def test_pool_identity_factors(self):
        rng = np.random.default_rng(1)
        desc = rng.random((3, 2 * 2 * 4))
        desc /= np.linalg.norm(desc, axis=1, keepdims=True)
        pooled = pool_descriptors(desc, 2, 4, 1, 1)
        np.testing.assert_allclose(pooled, desc)

    def test_pool_sums_blocks(self):
        # One keypoint, all-ones descriptor: every pooled bin sums
        # grid_pool^2 * orientation_pool ones, then L2-normalizes.
        pooled = pool_descriptors(np.ones((1, 4 * 4 * 2)), 4, 2, 2, 2)
        assert pooled.shape == (1, 2 * 2 * 1)
        np.testing.assert_allclose(pooled, 0.5)

    def test_indivisible_factors_raise(self):
        with pytest.raises(ValueError, match="does not divide"):
            pool_descriptors(np.ones((1, 6 * 6 * 12)), 6, 12, 4, 2)


class TestConfigValidation:
    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            TierCodecConfig(descriptor_bits=3)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            TierCodecConfig(max_keypoints=0)

    def test_rejects_bad_compression(self):
        with pytest.raises(ValueError):
            TierCodecConfig(compress_level=11)


class TestAccounting:
    def test_encode_records_into_registry(self):
        registry = MetricsRegistry()
        message = TieredMessage(Tier.BOXES_ONLY, some_boxes())
        with use_registry(registry):
            data = encode_message(message)
        assert registry.counter("comms/messages_sent").value == 1
        assert registry.counter("comms/bytes/encoded").value == len(data)
        assert registry.counter(
            "comms/tier/boxes-only/messages").value == 1
        assert registry.counter("comms/bytes/payload").value \
            == dense_payload_bytes(message)

    def test_size_bytes_does_not_record(self):
        registry = MetricsRegistry()
        message = TieredMessage(Tier.BOXES_ONLY, some_boxes())
        with use_registry(registry):
            message.size_bytes
        assert "comms/messages_sent" not in registry.counters

    def test_dense_payload_bytes_by_tier(self):
        cloud = small_cloud(n=10)
        assert dense_payload_bytes(TieredMessage(
            Tier.FULL_SCAN, some_boxes(n=2), cloud=cloud)) \
            == 12 * 10 + 40
        kp = keypoint_payload(n=5)
        dim = kp.descriptors.shape[1]
        assert dense_payload_bytes(TieredMessage(
            Tier.KEYPOINTS, [], keypoints=kp)) == 5 * (12 + 4 * dim)
        assert dense_payload_bytes(
            TieredMessage(Tier.BOXES_ONLY, some_boxes(n=3))) == 60
