"""Tests for repro.core.box_alignment (stage 2)."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.core.box_alignment import BoxAligner
from repro.core.config import BoxAlignConfig
from repro.geometry.se2 import SE2


def car(x, y, yaw=0.0):
    return Box2D(x, y, 4.5, 1.9, yaw)


def scene(n=4, spread=25.0, seed=0):
    rng = np.random.default_rng(seed)
    return [car(*rng.uniform(-spread, spread, 2), rng.uniform(-3, 3))
            for _ in range(n)]


class TestBoxAligner:
    def test_exact_refinement(self):
        """Noiseless boxes: the aligner must recover the exact residual
        left by an imperfect stage-1 transform."""
        gt = SE2(np.deg2rad(12.0), 15.0, -4.0)
        ego_boxes = scene(5)
        other_boxes = [b.transform(gt.inverse()) for b in ego_boxes]
        stage1 = SE2(gt.theta + np.deg2rad(1.0), gt.tx + 0.8, gt.ty - 0.6)
        result = BoxAligner().align(other_boxes, ego_boxes, stage1, rng=0)
        assert result.success
        combined = result.correction @ stage1
        assert combined.is_close(gt, atol_translation=1e-6,
                                 atol_rotation=1e-7)
        assert result.inliers_box == 20  # 4 corners x 5 boxes

    def test_no_boxes_skips(self):
        result = BoxAligner().align([], scene(3), SE2.identity(), rng=0)
        assert not result.success
        assert result.correction.is_close(SE2.identity())

    def test_no_overlap_skips(self):
        ego_boxes = scene(3)
        other_boxes = [b.transform(SE2(0, 500.0, 0)) for b in ego_boxes]
        result = BoxAligner().align(other_boxes, ego_boxes,
                                    SE2.identity(), rng=0)
        assert not result.success
        assert result.num_matched_boxes == 0

    def test_extra_unmatched_boxes_tolerated(self):
        gt = SE2(0.1, 5.0, 2.0)
        ego_boxes = scene(4)
        other_boxes = [b.transform(gt.inverse()) for b in ego_boxes]
        # Each side additionally sees objects the other does not.
        ego_all = ego_boxes + [car(200, 0), car(-200, 0)]
        other_all = other_boxes + [car(300, 50)]
        stage1 = SE2(gt.theta, gt.tx + 0.5, gt.ty)
        result = BoxAligner().align(other_all, ego_all, stage1, rng=0)
        assert result.success
        combined = result.correction @ stage1
        assert combined.translation_distance(gt) < 1e-6

    def test_oversized_correction_rejected(self):
        """A 'correction' that teleports boxes across the scene is a
        mismatch and must be refused."""
        config = BoxAlignConfig(max_correction_meters=2.0,
                                min_overlap_iou=0.01)
        # Construct boxes whose best overlap pairing implies a huge shift:
        # one far-apart overlapping pair that 'matches' spuriously.
        ego_boxes = [car(0, 0, 0.0)]
        other_boxes = [car(3.8, 0, 0.0)]  # tiny sliver overlap at identity
        result = BoxAligner(config).align(other_boxes, ego_boxes,
                                          SE2.identity(), rng=0)
        if result.ransac is not None and result.ransac.success:
            assert not result.success or \
                np.hypot(result.correction.tx, result.correction.ty) <= 2.0

    def test_noisy_boxes_beat_stage1_residual(self):
        """With realistic detector noise, stage-2 still reduces a
        0.5 m stage-1 residual."""
        rng = np.random.default_rng(4)
        gt = SE2(np.deg2rad(-8.0), -10.0, 6.0)
        ego_boxes = scene(6, seed=2)
        other_boxes = []
        for b in ego_boxes:
            moved = b.transform(gt.inverse())
            other_boxes.append(Box2D(
                moved.center_x + rng.normal(0, 0.06),
                moved.center_y + rng.normal(0, 0.06),
                moved.length, moved.width,
                moved.yaw + rng.normal(0, np.deg2rad(0.8))))
        stage1 = SE2(gt.theta, gt.tx + 0.5, gt.ty - 0.3)
        result = BoxAligner().align(other_boxes, ego_boxes, stage1, rng=0)
        assert result.success
        combined = result.correction @ stage1
        assert combined.translation_distance(gt) \
            < stage1.translation_distance(gt)

    def test_deterministic(self):
        gt = SE2(0.2, 3.0, 1.0)
        ego_boxes = scene(4, seed=9)
        other_boxes = [b.transform(gt.inverse()) for b in ego_boxes]
        stage1 = SE2(gt.theta, gt.tx + 0.4, gt.ty)
        a = BoxAligner().align(other_boxes, ego_boxes, stage1, rng=5)
        b = BoxAligner().align(other_boxes, ego_boxes, stage1, rng=5)
        assert a.correction.is_close(b.correction)
