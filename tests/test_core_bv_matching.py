"""Tests for repro.core.bv_matching (stage 1)."""

import numpy as np
import pytest

from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig, BVMatchRansacConfig
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


def structured_world(rng):
    """Random walls + blobs (world frame), rich enough to match on."""
    parts = []
    for _ in range(12):
        x0, y0 = rng.uniform(-45, 45, 2)
        ang = rng.uniform(0, np.pi)
        n = 120
        t = np.linspace(0, rng.uniform(10, 25), n)
        xs, ys = x0 + np.cos(ang) * t, y0 + np.sin(ang) * t
        for f in np.linspace(0.3, 1.0, 5):
            parts.append(np.stack([xs, ys, np.full(n, 9 * f)], 1))
    for _ in range(20):
        cx, cy = rng.uniform(-45, 45, 2)
        n = 25
        parts.append(np.stack([cx + rng.normal(0, .7, n),
                               cy + rng.normal(0, .7, n),
                               rng.uniform(2, 5, n)], 1))
    return np.vstack(parts)


@pytest.fixture(scope="module")
def world_points():
    return structured_world(np.random.default_rng(0))


def clouds_for(world, relative: SE2):
    ego = PointCloud(world)
    xy = relative.inverse().apply(world[:, :2])
    other = PointCloud(np.column_stack([xy, world[:, 2]]))
    return ego, other


class TestStage1:
    @pytest.mark.parametrize("theta_deg,tx,ty", [
        (0.0, 10.0, -5.0),
        (30.0, 5.0, 5.0),
        (90.0, -10.0, 3.0),
        (180.0, 0.0, 8.0),
        (-120.0, 6.0, -6.0),
    ])
    def test_recovers_known_transform(self, world_points, theta_deg, tx, ty):
        gt = SE2(np.deg2rad(theta_deg), tx, ty)
        ego, other = clouds_for(world_points, gt)
        matcher = BVMatcher(BBAlignConfig())
        result = matcher.match_clouds(other, ego, rng=0)
        assert result.success
        assert result.transform.translation_distance(gt) < 1.5
        assert np.degrees(result.transform.rotation_distance(gt)) < 1.5

    def test_empty_clouds_fail_gracefully(self):
        matcher = BVMatcher(BBAlignConfig())
        result = matcher.match_clouds(PointCloud.empty(),
                                      PointCloud.empty(), rng=0)
        assert not result.success
        assert result.inliers_bv == 0

    def test_flip_disambiguation_needed_beyond_90_degrees(self, world_points):
        """With pi disambiguation off, a near-180-degree pair must not
        out-perform the disambiguated matcher — demonstrating why the
        second hypothesis exists."""
        gt = SE2(np.deg2rad(175.0), 3.0, -2.0)
        ego, other = clouds_for(world_points, gt)
        on = BVMatcher(BBAlignConfig())
        off = BVMatcher(BBAlignConfig(
            bv_ransac=BVMatchRansacConfig(disambiguate_pi=False)))
        res_on = on.match_clouds(other, ego, rng=0)
        res_off = off.match_clouds(other, ego, rng=0)
        assert res_on.transform.translation_distance(gt) < 1.5
        assert res_on.inliers_bv >= res_off.inliers_bv

    def test_used_flip_flag(self, world_points):
        gt = SE2(np.deg2rad(178.0), 1.0, 1.0)
        ego, other = clouds_for(world_points, gt)
        result = BVMatcher(BBAlignConfig()).match_clouds(other, ego, rng=0)
        assert result.used_flip

    def test_deterministic_given_seed(self, world_points):
        gt = SE2(0.4, 5.0, 2.0)
        ego, other = clouds_for(world_points, gt)
        matcher = BVMatcher(BBAlignConfig())
        r1 = matcher.match_clouds(other, ego, rng=3)
        r2 = matcher.match_clouds(other, ego, rng=3)
        assert r1.transform.is_close(r2.transform)
        assert r1.inliers_bv == r2.inliers_bv


class TestBVFeaturesFlip:
    def test_flip_is_involution_on_positions(self, world_points):
        matcher = BVMatcher(BBAlignConfig())
        features = matcher.extract_from_cloud(PointCloud(world_points))
        flipped = features.flipped()
        twice = flipped.flipped()
        np.testing.assert_allclose(twice.keypoints.xy, features.keypoints.xy)
        np.testing.assert_array_equal(twice.mim.mim, features.mim.mim)

    def test_flip_preserves_mim_values(self, world_points):
        matcher = BVMatcher(BBAlignConfig())
        features = matcher.extract_from_cloud(PointCloud(world_points))
        flipped = features.flipped()
        # Exact pixel permutation: same multiset of values.
        assert (np.sort(flipped.mim.mim.ravel())
                == np.sort(features.mim.mim.ravel())).all()
