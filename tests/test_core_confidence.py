"""Tests for repro.core.confidence."""

import numpy as np
import pytest

from repro.core.confidence import ConfidenceModel, fit_confidence_model
from tests.test_experiments_modules import outcome


def sweep(n_bad=20, n_good=20):
    rng = np.random.default_rng(0)
    outcomes = []
    for _ in range(n_bad):
        outcomes.append(outcome(inliers_bv=int(rng.integers(1, 15)),
                                inliers_box=0, terr=5.0))
    for _ in range(n_good):
        outcomes.append(outcome(inliers_bv=int(rng.integers(40, 120)),
                                inliers_box=int(rng.integers(8, 24)),
                                terr=0.2))
    return outcomes


class TestFitConfidenceModel:
    def test_separates_good_from_bad(self):
        model = fit_confidence_model(sweep())
        assert model.predict(5, 0) < 0.3
        assert model.predict(100, 20) > 0.7

    def test_monotone_in_inliers(self):
        model = fit_confidence_model(sweep())
        probabilities = [model.predict(k, 0) for k in range(0, 150, 10)]
        assert all(b >= a - 1e-9
                   for a, b in zip(probabilities, probabilities[1:]))

    def test_probabilities_valid(self):
        model = fit_confidence_model(sweep())
        assert np.all(model.probabilities >= 0)
        assert np.all(model.probabilities <= 1)

    def test_box_weight_contributes(self):
        model = fit_confidence_model(sweep(), box_weight=2.0)
        assert model.score(10, 5) == pytest.approx(20.0)

    def test_requires_enough_data(self):
        with pytest.raises(ValueError):
            fit_confidence_model([outcome()] * 2, num_bins=5)

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            fit_confidence_model(sweep(), num_bins=1)

    def test_on_real_sweep(self):
        """Fit on an actual pipeline sweep: the model's headline
        prediction matches the empirical Fig. 9 pattern."""
        from repro.experiments.common import (
            default_dataset,
            run_pose_recovery_sweep,
        )
        outcomes = run_pose_recovery_sweep(default_dataset(10, seed=33),
                                           include_vips=False)
        model = fit_confidence_model(outcomes, num_bins=3)
        assert model.predict(150, 30) >= model.predict(1, 0)
