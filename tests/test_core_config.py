"""Tests for repro.core.config."""

import pytest

from repro.core.config import (
    BBAlignConfig,
    BVImageConfig,
    BoxAlignConfig,
    SuccessCriteria,
)


class TestBVImageConfig:
    def test_image_size(self):
        assert BVImageConfig(cell_size=0.8, lidar_range=76.8).image_size == 192

    def test_validation(self):
        with pytest.raises(ValueError):
            BVImageConfig(cell_size=0.0)


class TestSuccessCriteria:
    def test_strictly_greater_semantics(self):
        crit = SuccessCriteria(min_inliers_bv=25, min_inliers_box=6)
        assert not crit.is_success(25, 7)   # must exceed, not equal
        assert not crit.is_success(26, 6)
        assert crit.is_success(26, 7)

    def test_defaults_calibrated(self):
        crit = SuccessCriteria()
        assert crit.min_inliers_box == 6  # paper value
        assert crit.min_inliers_bv > 0


class TestBBAlignConfig:
    def test_defaults_match_paper_where_applicable(self):
        cfg = BBAlignConfig()
        assert cfg.log_gabor.num_scales == 4       # N_s
        assert cfg.log_gabor.num_orientations == 12  # N_o
        assert cfg.descriptor.grid_size == 6       # l

    def test_frozen(self):
        cfg = BBAlignConfig()
        with pytest.raises(Exception):
            cfg.enable_box_alignment = False

    def test_box_align_defaults_sane(self):
        cfg = BoxAlignConfig()
        assert 0 < cfg.min_overlap_iou < 1
        assert cfg.threshold_meters > 0
