"""Tests for repro.core.multi (pose-graph alignment)."""

import numpy as np
import pytest

from repro.core.multi import MultiVehicleAligner, PairwiseEdge
from repro.core.pose_graph import PoseGraphConfig, cycle_gate
from repro.geometry.se2 import SE2


def exact_edges(poses, pairs, weight=10.0, perturb=None):
    """Build edges with ground-truth transforms (optionally perturbed)."""
    edges = []
    for index, (i, j) in enumerate(pairs):
        transform = poses[i].inverse() @ poses[j]
        if perturb and index in perturb:
            d = perturb[index]
            transform = SE2(transform.theta + d[0],
                            transform.tx + d[1], transform.ty + d[2])
        edges.append(PairwiseEdge(i, j, transform, weight))
    return edges


GT_POSES = [SE2(0.0, 0.0, 0.0), SE2(0.1, 20.0, 2.0),
            SE2(-0.2, 45.0, -1.0), SE2(3.0, 70.0, 3.0)]


class TestFusion:
    def test_full_graph_exact(self):
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        poses, gate, solution = aligner.fuse(
            4, exact_edges(GT_POSES, pairs))
        assert gate.rejected == ()
        assert solution.converged
        for estimate, truth in zip(poses, GT_POSES):
            expected = GT_POSES[0].inverse() @ truth
            assert estimate.is_close(expected, atol_translation=1e-6,
                                     atol_rotation=1e-7)

    def test_relay_through_intermediate(self):
        """No direct ego<->3 edge: vehicle 3 resolves via the chain."""
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (1, 2), (2, 3)]
        poses, _, _ = aligner.fuse(4, exact_edges(GT_POSES, pairs))
        assert poses[3] is not None
        expected = GT_POSES[0].inverse() @ GT_POSES[3]
        assert poses[3].is_close(expected, atol_translation=1e-6,
                                 atol_rotation=1e-7)

    def test_unreachable_vehicle_unresolved(self):
        aligner = MultiVehicleAligner()
        pairs = [(0, 1)]  # vehicles 2, 3 isolated
        poses, _, _ = aligner.fuse(4, exact_edges(GT_POSES, pairs))
        assert poses[2] is None and poses[3] is None
        assert poses[1] is not None

    def test_component_without_ego_unresolved(self):
        """Vehicles 2<->3 connect to each other but not to the ego:
        their mutual pose exists only in their own gauge, so neither
        can be re-based into the ego frame."""
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (2, 3)]
        poses, _, solution = aligner.fuse(
            4, exact_edges(GT_POSES, pairs))
        assert poses[2] is None and poses[3] is None
        # ... but the solver did resolve their component internally.
        assert solution.poses[2] is not None
        assert solution.poses[3] is not None

    def test_planted_bad_edge_rejected_and_accurate(self):
        """Cycle gating: a corrupted pairwise estimate disputed by two
        triangles is rejected, and the fused poses stay on truth."""
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        # Edge (0, 2) direct is off by 8 m in x.
        edges = exact_edges(GT_POSES, pairs,
                            perturb={1: (0.0, 8.0, 0.0)})
        poses, gate, _ = aligner.fuse(4, edges)
        assert {e.key for e in gate.rejected} == {(0, 2)}
        for index in range(1, 4):
            truth = GT_POSES[0].inverse() @ GT_POSES[index]
            assert poses[index].translation_distance(truth) < 1e-6

    def test_weights_prefer_confident_edges(self):
        aligner = MultiVehicleAligner()
        good = exact_edges(GT_POSES[:3], [(0, 1), (1, 2)], weight=100.0)
        bad = exact_edges(GT_POSES[:3], [(0, 2)], weight=1.0,
                          perturb={0: (0.0, 3.0, 0.0)})
        poses, gate, _ = aligner.fuse(3, good + bad)
        # One triangle, no witness: the gate must keep the bad edge...
        assert gate.rejected == ()
        # ... and weighting + Huber keep the fused pose near truth.
        truth = GT_POSES[0].inverse() @ GT_POSES[2]
        assert poses[2].translation_distance(truth) < 0.5

    def test_incremental_fuse_reuses_unchanged_graph(self):
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (0, 2), (1, 2)]
        edges = exact_edges(GT_POSES[:3], pairs)
        first, _, _ = aligner.fuse(3, edges)
        again, _, solution = aligner.fuse(3, edges, incremental=True)
        assert again == first
        assert solution.reused_components == 1
        assert solution.iterations == 0
        aligner.reset()
        assert aligner.previous_solution is None


class TestCycleResiduals:
    def test_exact_cycle_zero_residual(self):
        pairs = [(0, 1), (1, 2), (0, 2)]
        gate = cycle_gate(exact_edges(GT_POSES[:3], pairs))
        assert len(gate.cycle_residuals) == 1
        assert gate.cycle_residuals[0][0] < 1e-9
        assert gate.cycle_residuals[0][1] < 1e-9

    def test_perturbed_cycle_nonzero(self):
        pairs = [(0, 1), (1, 2), (0, 2)]
        edges = exact_edges(GT_POSES[:3], pairs,
                            perturb={0: (0.0, 1.0, 0.0)})
        gate = cycle_gate(edges)
        assert gate.cycle_residuals[0][0] > 0.5

    def test_incomplete_cycle_skipped(self):
        pairs = [(0, 1), (1, 2)]
        gate = cycle_gate(exact_edges(GT_POSES[:3], pairs))
        assert gate.cycle_residuals == ()


class TestPairNormalization:
    def test_invalid_pairs_rejected(self):
        normalize = MultiVehicleAligner._normalize_pairs
        with pytest.raises(ValueError):
            normalize(3, [(0, 3)])
        with pytest.raises(ValueError):
            normalize(3, [(1, 1)])

    def test_default_is_all_pairs(self):
        assert MultiVehicleAligner._normalize_pairs(3, None) == [
            (0, 1), (0, 2), (1, 2)]

    def test_dedup_and_orientation(self):
        assert MultiVehicleAligner._normalize_pairs(
            4, [(2, 0), (0, 2), (3, 1)]) == [(0, 2), (1, 3)]


class TestEndToEndMulti:
    @pytest.fixture(scope="class")
    def multi_frame(self):
        from repro.simulation.multi import (
            MultiScenarioConfig,
            make_multi_frame,
        )
        from repro.simulation.scenario import ScenarioConfig
        return make_multi_frame(MultiScenarioConfig(
            scenario=ScenarioConfig(distance=20.0),
            num_vehicles=3, spacing=18.0, same_direction_prob=1.0), rng=4)

    @pytest.fixture(scope="class")
    def boxes(self, multi_frame):
        from repro.detection.simulated import SimulatedDetector
        detector = SimulatedDetector()
        return [[d.box for d in detector.detect(v, rng=i)]
                for i, v in enumerate(multi_frame.visible)]

    def test_alignment_resolves_vehicles(self, multi_frame, boxes):
        aligner = MultiVehicleAligner()
        result = aligner.align(list(multi_frame.clouds), boxes, rng=0)
        assert result.num_resolved >= 2
        for index, pose in enumerate(result.poses):
            if pose is None or index == 0:
                continue
            truth = multi_frame.gt_relative(0, index)
            assert pose.translation_distance(truth) < 2.0

    def test_incremental_align_is_identical(self, multi_frame, boxes):
        """Same clouds, same rng: the warm-started re-align must return
        bit-identical poses without re-solving anything."""
        aligner = MultiVehicleAligner()
        first = aligner.align(list(multi_frame.clouds), boxes, rng=0)
        second = aligner.align(list(multi_frame.clouds), boxes, rng=0,
                               incremental=True)
        assert second.poses == first.poses
        assert second.solution.reused_components >= 1

    def test_feature_cache_shares_extractions(self, multi_frame, boxes):
        from repro.runtime.cache import FeatureCache
        cache = FeatureCache(max_entries=16)
        aligner = MultiVehicleAligner()
        a = aligner.align(list(multi_frame.clouds), boxes, rng=0,
                          cache=cache, scene_key="scene-a")
        misses_after_first = cache.misses
        b = aligner.align(list(multi_frame.clouds), boxes, rng=0,
                          cache=cache, scene_key="scene-a")
        # One extraction per vehicle on the first pass, all hits after.
        assert misses_after_first == multi_frame.num_vehicles
        assert cache.misses == misses_after_first
        assert cache.hits == multi_frame.num_vehicles
        assert b.poses == a.poses

    def test_input_validation(self):
        aligner = MultiVehicleAligner()
        with pytest.raises(ValueError):
            aligner.align([], [], rng=0)
        from repro.pointcloud.cloud import PointCloud
        with pytest.raises(ValueError):
            aligner.align([PointCloud.empty()] * 2, [[]], rng=0)

    def test_graph_config_is_wired(self):
        config = PoseGraphConfig(cycle_translation_tol=0.5)
        aligner = MultiVehicleAligner(graph=config)
        assert aligner.graph_config.cycle_translation_tol == 0.5


def test_pairwise_edge_alias():
    """The historical name must stay importable and interchangeable."""
    from repro.core.pose_graph import PoseGraphEdge
    assert PairwiseEdge is PoseGraphEdge
