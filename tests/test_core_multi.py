"""Tests for repro.core.multi (pose-graph alignment)."""

import numpy as np
import pytest

from repro.core.multi import MultiVehicleAligner, PairwiseEdge
from repro.geometry.se2 import SE2


def exact_edges(poses, pairs, weight=10.0, perturb=None):
    """Build edges with ground-truth transforms (optionally perturbed)."""
    edges = []
    for index, (i, j) in enumerate(pairs):
        transform = poses[i].inverse() @ poses[j]
        if perturb and index in perturb:
            d = perturb[index]
            transform = SE2(transform.theta + d[0],
                            transform.tx + d[1], transform.ty + d[2])
        edges.append(PairwiseEdge(i, j, transform, weight))
    return edges


GT_POSES = [SE2(0.0, 0.0, 0.0), SE2(0.1, 20.0, 2.0),
            SE2(-0.2, 45.0, -1.0), SE2(3.0, 70.0, 3.0)]


class TestSynchronization:
    def test_full_graph_exact(self):
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        poses = aligner._synchronize(4, exact_edges(GT_POSES, pairs))
        for estimate, truth in zip(poses, GT_POSES):
            expected = GT_POSES[0].inverse() @ truth
            assert estimate.is_close(expected, atol_translation=1e-9)

    def test_relay_through_intermediate(self):
        """No direct ego<->3 edge: vehicle 3 resolves via the chain."""
        aligner = MultiVehicleAligner()
        pairs = [(0, 1), (1, 2), (2, 3)]
        poses = aligner._synchronize(4, exact_edges(GT_POSES, pairs))
        assert poses[3] is not None
        expected = GT_POSES[0].inverse() @ GT_POSES[3]
        assert poses[3].is_close(expected, atol_translation=1e-9)

    def test_unreachable_vehicle_unresolved(self):
        aligner = MultiVehicleAligner()
        pairs = [(0, 1)]  # vehicles 2, 3 isolated
        poses = aligner._synchronize(4, exact_edges(GT_POSES, pairs))
        assert poses[2] is None and poses[3] is None
        assert poses[1] is not None

    def test_refinement_averages_noisy_edges(self):
        """A redundant graph with one bad edge: refinement must land
        closer to truth than trusting the bad edge alone."""
        aligner = MultiVehicleAligner(refinement_sweeps=10)
        pairs = [(0, 1), (0, 2), (1, 2)]
        # Edge (0, 2) direct is off by 2 m in x.
        edges = exact_edges(GT_POSES[:3], pairs,
                            perturb={1: (0.0, 2.0, 0.0)})
        poses = aligner._synchronize(3, edges)
        truth = GT_POSES[0].inverse() @ GT_POSES[2]
        error = poses[2].translation_distance(truth)
        assert error < 2.0  # strictly better than the bad edge alone

    def test_weights_prefer_confident_edges(self):
        aligner = MultiVehicleAligner(refinement_sweeps=10)
        pairs = [(0, 1), (0, 2), (1, 2)]
        good = exact_edges(GT_POSES[:3], [(0, 1), (1, 2)], weight=100.0)
        bad = exact_edges(GT_POSES[:3], [(0, 2)], weight=1.0,
                          perturb={0: (0.0, 3.0, 0.0)})
        poses = aligner._synchronize(3, good + bad)
        truth = GT_POSES[0].inverse() @ GT_POSES[2]
        assert poses[2].translation_distance(truth) < 0.5


class TestCycleResiduals:
    def test_exact_cycle_zero_residual(self):
        pairs = [(0, 1), (1, 2), (0, 2)]
        residuals = MultiVehicleAligner._cycle_residuals(
            3, exact_edges(GT_POSES[:3], pairs))
        assert len(residuals) == 1
        assert residuals[0][0] < 1e-9
        assert residuals[0][1] < 1e-9

    def test_perturbed_cycle_nonzero(self):
        pairs = [(0, 1), (1, 2), (0, 2)]
        edges = exact_edges(GT_POSES[:3], pairs,
                            perturb={0: (0.0, 1.0, 0.0)})
        residuals = MultiVehicleAligner._cycle_residuals(3, edges)
        assert residuals[0][0] > 0.5

    def test_incomplete_cycle_skipped(self):
        pairs = [(0, 1), (1, 2)]
        residuals = MultiVehicleAligner._cycle_residuals(
            3, exact_edges(GT_POSES[:3], pairs))
        assert residuals == []


class TestEndToEndMulti:
    @pytest.fixture(scope="class")
    def multi_frame(self):
        from repro.simulation.multi import MultiScenarioConfig, make_multi_frame
        from repro.simulation.scenario import ScenarioConfig
        return make_multi_frame(MultiScenarioConfig(
            scenario=ScenarioConfig(distance=20.0),
            num_vehicles=3, spacing=18.0, same_direction_prob=1.0), rng=4)

    def test_alignment_resolves_vehicles(self, multi_frame):
        from repro.detection.simulated import SimulatedDetector
        detector = SimulatedDetector()
        boxes = [[d.box for d in detector.detect(v, rng=i)]
                 for i, v in enumerate(multi_frame.visible)]
        aligner = MultiVehicleAligner()
        result = aligner.align(list(multi_frame.clouds), boxes, rng=0)
        assert result.num_resolved >= 2
        for index, pose in enumerate(result.poses):
            if pose is None or index == 0:
                continue
            truth = multi_frame.gt_relative(0, index)
            assert pose.translation_distance(truth) < 2.0

    def test_input_validation(self):
        aligner = MultiVehicleAligner()
        with pytest.raises(ValueError):
            aligner.align([], [], rng=0)
        from repro.pointcloud.cloud import PointCloud
        with pytest.raises(ValueError):
            aligner.align([PointCloud.empty()] * 2, [[]], rng=0)
