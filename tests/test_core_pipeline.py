"""Tests for repro.core.pipeline (Algorithm 1 end to end)."""

import numpy as np
import pytest

from repro.boxes.box import Box2D, Box3D
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector


@pytest.fixture(scope="module")
def recovered(frame_pair_module):
    pair, result = frame_pair_module
    return pair, result


@pytest.fixture(scope="module")
def frame_pair_module():
    from repro.simulation.scenario import ScenarioConfig, make_frame_pair
    pair = make_frame_pair(ScenarioConfig(distance=20.0), rng=5)
    detector = SimulatedDetector()
    ego_dets = detector.detect(pair.ego_visible, np.random.default_rng(1))
    other_dets = detector.detect(pair.other_visible, np.random.default_rng(2))
    aligner = BBAlign()
    result = aligner.recover(pair.ego_cloud, pair.other_cloud,
                             [d.box for d in ego_dets],
                             [d.box for d in other_dets], rng=0)
    return pair, result


class TestRecovery:
    def test_accurate_on_close_pair(self, recovered):
        pair, result = recovered
        assert result.translation_error(pair.gt_relative) < 1.0
        assert result.rotation_error_deg(pair.gt_relative) < 1.0

    def test_3d_lift_consistent(self, recovered):
        _, result = recovered
        planar = result.transform_3d.to_se2()
        assert planar.is_close(result.transform, atol_translation=1e-9)

    def test_diagnostics_populated(self, recovered):
        _, result = recovered
        assert result.inliers_bv == result.stage1.inliers_bv
        assert result.inliers_box == result.stage2.inliers_box
        assert result.message_bytes > 0
        assert result.alpha == result.transform.theta
        assert result.t_x == result.transform.tx

    def test_message_far_smaller_than_raw_cloud(self, recovered):
        pair, result = recovered
        raw = BBAlign.raw_cloud_bytes(pair.other_cloud)
        assert result.message_bytes < raw / 2

    def test_success_criterion_applied(self, recovered):
        _, result = recovered
        config = BBAlignConfig()
        expected = config.success.is_success(result.inliers_bv,
                                             result.inliers_box)
        assert result.success == (expected and result.stage1.success)


class TestAblationMode:
    def test_box_alignment_disabled(self, frame_pair_module):
        pair, _ = frame_pair_module
        config = BBAlignConfig(enable_box_alignment=False)
        aligner = BBAlign(config)
        result = aligner.recover(pair.ego_cloud, pair.other_cloud, [], [],
                                 rng=0)
        assert result.stage2.num_matched_boxes == 0
        assert result.transform.is_close(result.stage1.transform)


class TestInputHandling:
    def test_accepts_box3d_and_box2d(self, frame_pair_module):
        pair, _ = frame_pair_module
        aligner = BBAlign()
        boxes_3d = [v.box for v in pair.ego_visible]
        boxes_2d = [b.to_bev() for b in boxes_3d]
        r3 = aligner.recover(pair.ego_cloud, pair.other_cloud, boxes_3d,
                             [v.box for v in pair.other_visible], rng=0)
        r2 = aligner.recover(pair.ego_cloud, pair.other_cloud, boxes_2d,
                             [v.box.to_bev() for v in pair.other_visible],
                             rng=0)
        assert r3.transform.is_close(r2.transform, atol_translation=1e-9)

    def test_rejects_garbage_boxes(self, frame_pair_module):
        pair, _ = frame_pair_module
        with pytest.raises(TypeError):
            BBAlign().recover(pair.ego_cloud, pair.other_cloud,
                              ["not a box"], [], rng=0)

    def test_unreliable_stage2_not_applied(self, frame_pair_module):
        """With a single other box, stage 2 cannot meet its criterion and
        the output must equal the stage-1 transform."""
        pair, _ = frame_pair_module
        aligner = BBAlign()
        one_box = [pair.other_visible[0].box] if pair.other_visible else []
        result = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                 [v.box for v in pair.ego_visible],
                                 one_box, rng=0)
        assert result.inliers_box <= 6
        assert result.transform.is_close(result.stage1.transform)
        assert not result.success

    def test_deterministic_by_default_seed(self, frame_pair_module):
        pair, _ = frame_pair_module
        aligner = BBAlign()
        boxes_e = [v.box for v in pair.ego_visible]
        boxes_o = [v.box for v in pair.other_visible]
        r1 = aligner.recover(pair.ego_cloud, pair.other_cloud, boxes_e,
                             boxes_o)
        r2 = aligner.recover(pair.ego_cloud, pair.other_cloud, boxes_e,
                             boxes_o)
        assert r1.transform.is_close(r2.transform)
