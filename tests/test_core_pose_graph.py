"""Tests for repro.core.pose_graph (robust SE(2) pose-graph solve)."""

import numpy as np
import pytest

from repro.core.pose_graph import (
    PoseGraphConfig,
    PoseGraphEdge,
    connected_components,
    cycle_gate,
    optimize_pose_graph,
    solve_incremental,
    spanning_tree_init,
)
from repro.geometry.se2 import SE2


def random_poses(rng, count, span=50.0):
    return [SE2(float(rng.uniform(-np.pi, np.pi)),
                float(rng.uniform(-span, span)),
                float(rng.uniform(-span, span)))
            for _ in range(count)]


def gt_edge(poses, i, j, weight=10.0, noise=None, rng=None,
            offset=None):
    """Edge measuring ``i <- j``, optionally noisy or corrupted."""
    transform = poses[i].inverse() @ poses[j]
    theta, tx, ty = transform.theta, transform.tx, transform.ty
    if noise is not None:
        theta += rng.normal(0.0, noise[0])
        tx += rng.normal(0.0, noise[1])
        ty += rng.normal(0.0, noise[1])
    if offset is not None:
        theta += offset[0]
        tx += offset[1]
        ty += offset[2]
    return PoseGraphEdge(i, j, SE2(theta, tx, ty), weight)


def full_graph(poses, **kwargs):
    count = len(poses)
    return [gt_edge(poses, i, j, **kwargs)
            for i in range(count) for j in range(i + 1, count)]


def expected(poses, node, anchor=0):
    """Ground-truth pose of ``node`` in the anchor's frame."""
    return poses[anchor].inverse() @ poses[node]


class TestCycleGate:
    def test_exact_graph_keeps_everything(self):
        rng = np.random.default_rng(0)
        poses = random_poses(rng, 5)
        gate = cycle_gate(full_graph(poses))
        assert gate.rejected == ()
        assert len(gate.kept) == 10
        assert len(gate.cycle_residuals) == 10  # C(5,3)
        assert all(t < 1e-6 for t, _ in gate.cycle_residuals)

    def test_corrupted_edge_rejected_by_witnesses(self):
        """A bad edge trips every triangle it touches; its good
        neighbours are vindicated by their other triangles."""
        rng = np.random.default_rng(1)
        poses = random_poses(rng, 5)
        edges = [gt_edge(poses, i, j) if (i, j) != (0, 3)
                 else gt_edge(poses, i, j, offset=(0.0, 8.0, 0.0))
                 for i in range(5) for j in range(i + 1, 5)]
        gate = cycle_gate(edges)
        assert {e.key for e in gate.rejected} == {(0, 3)}
        assert len(gate.kept) == 9

    def test_lone_bad_triangle_rejects_nothing(self):
        """One triangle, one bad edge: no witness can pin the blame,
        so the gate must leave all three edges for Huber to absorb."""
        rng = np.random.default_rng(2)
        poses = random_poses(rng, 3)
        edges = [gt_edge(poses, 0, 1),
                 gt_edge(poses, 1, 2),
                 gt_edge(poses, 0, 2, offset=(0.0, 5.0, 0.0))]
        gate = cycle_gate(edges)
        assert gate.rejected == ()
        assert gate.cycle_residuals[0][0] > 2.0  # loop is visibly open
        assert gate.votes[(0, 2)] == (0, 1)

    def test_rotation_tolerance_votes(self):
        rng = np.random.default_rng(3)
        poses = random_poses(rng, 4)
        edges = [gt_edge(poses, i, j) if (i, j) != (0, 1)
                 else gt_edge(poses, i, j, offset=(np.radians(25), 0, 0))
                 for i in range(4) for j in range(i + 1, 4)]
        gate = cycle_gate(edges)
        assert {e.key for e in gate.rejected} == {(0, 1)}


class TestConnectivity:
    def test_components_with_isolated_nodes(self):
        edges = [PoseGraphEdge(0, 1, SE2.identity()),
                 PoseGraphEdge(3, 4, SE2.identity())]
        assert connected_components(6, edges) == [
            (0, 1), (2,), (3, 4), (5,)]

    def test_spanning_tree_reaches_component(self):
        rng = np.random.default_rng(4)
        poses = random_poses(rng, 4)
        chain = [gt_edge(poses, 0, 1), gt_edge(poses, 1, 2),
                 gt_edge(poses, 2, 3)]
        init = spanning_tree_init(chain, anchor=0)
        assert set(init) == {0, 1, 2, 3}
        assert init[0].is_close(SE2.identity())
        assert init[3].is_close(expected(poses, 3),
                                atol_translation=1e-9)


class TestOptimize:
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_full_graph_recovers_ground_truth(self, seed):
        rng = np.random.default_rng(seed)
        poses = random_poses(rng, 6)
        solution = optimize_pose_graph(6, full_graph(poses))
        assert solution.converged
        assert solution.poses[0].is_close(SE2.identity())
        for node in range(1, 6):
            assert solution.poses[node].is_close(
                expected(poses, node), atol_translation=1e-6,
                atol_rotation=1e-7)

    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_graph_within_tolerance(self, seed):
        """Property: fused poses beat single-edge noise by averaging
        redundant measurements."""
        rng = np.random.default_rng([10, seed])
        poses = random_poses(rng, 6)
        edges = full_graph(poses, noise=(0.002, 0.05), rng=rng)
        solution = optimize_pose_graph(6, edges)
        assert solution.converged
        for node in range(1, 6):
            truth = expected(poses, node)
            assert solution.poses[node].translation_distance(truth) < 0.3
            assert solution.poses[node].rotation_distance(truth) < 0.02

    @pytest.mark.parametrize("seed", range(4))
    def test_injected_outlier_rejected_poses_accurate(self, seed):
        """Property: gate + robust solve neutralize a corrupted edge."""
        rng = np.random.default_rng([20, seed])
        poses = random_poses(rng, 6)
        edges = full_graph(poses, noise=(0.002, 0.05), rng=rng)
        bad = gt_edge(poses, 0, 3, offset=(0.3, 9.0, -6.0))
        gate = cycle_gate([bad if e.key == (0, 3) else e for e in edges])
        assert {e.key for e in gate.rejected} == {(0, 3)}
        solution = optimize_pose_graph(6, gate.kept)
        for node in range(1, 6):
            truth = expected(poses, node)
            assert solution.poses[node].translation_distance(truth) < 0.3

    def test_huber_absorbs_unwitnessed_outlier(self):
        """With no witness triangle the gate keeps the bad edge, and
        the robust loss must still land near truth."""
        rng = np.random.default_rng(5)
        poses = random_poses(rng, 3)
        edges = [gt_edge(poses, 0, 1, weight=100.0),
                 gt_edge(poses, 1, 2, weight=100.0),
                 gt_edge(poses, 0, 2, weight=1.0,
                         offset=(0.0, 4.0, 0.0))]
        gate = cycle_gate(edges)
        assert gate.rejected == ()
        solution = optimize_pose_graph(3, gate.kept)
        truth = expected(poses, 2)
        assert solution.poses[2].translation_distance(truth) < 0.5

    def test_isolated_node_stays_none(self):
        rng = np.random.default_rng(6)
        poses = random_poses(rng, 3)
        solution = optimize_pose_graph(3, [gt_edge(poses, 0, 1)])
        assert solution.poses[2] is None
        assert solution.poses[1] is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="outside"):
            optimize_pose_graph(2, [PoseGraphEdge(0, 5, SE2.identity())])
        with pytest.raises(ValueError, match="self-loop"):
            optimize_pose_graph(2, [PoseGraphEdge(1, 1, SE2.identity())])
        with pytest.raises(ValueError):
            PoseGraphConfig(huber_delta=0.0)

    def test_edge_residuals_reported(self):
        rng = np.random.default_rng(7)
        poses = random_poses(rng, 4)
        solution = optimize_pose_graph(4, full_graph(poses))
        assert set(solution.edge_residuals) == {
            (i, j) for i in range(4) for j in range(i + 1, 4)}
        assert all(r < 1e-6 for r in solution.edge_residuals.values())


class TestIncremental:
    @pytest.mark.parametrize("seed", range(3))
    def test_unchanged_graph_reuses_everything(self, seed):
        rng = np.random.default_rng([30, seed])
        poses = random_poses(rng, 5)
        edges = full_graph(poses, noise=(0.002, 0.05), rng=rng)
        full = optimize_pose_graph(5, edges)
        again = solve_incremental(5, edges, full)
        assert again.poses == full.poses  # bit-identical, not just close
        assert again.edge_residuals == full.edge_residuals
        assert again.iterations == 0
        assert again.reused_components == 1

    @pytest.mark.parametrize("seed", range(3))
    def test_dirty_component_matches_full_solve(self, seed):
        """Property: incremental == full, always.  Two components; only
        one changes, and the clean one is copied not re-solved."""
        rng = np.random.default_rng([40, seed])
        poses = random_poses(rng, 6)
        stable = [gt_edge(poses, 0, 1), gt_edge(poses, 1, 2),
                  gt_edge(poses, 0, 2)]
        volatile = [gt_edge(poses, 3, 4), gt_edge(poses, 4, 5),
                    gt_edge(poses, 3, 5)]
        previous = optimize_pose_graph(6, stable + volatile)
        changed = volatile[:-1] + [gt_edge(poses, 3, 5,
                                           offset=(0.0, 0.4, 0.0))]
        incremental = solve_incremental(6, stable + changed, previous)
        fresh = optimize_pose_graph(6, stable + changed)
        assert incremental.poses == fresh.poses
        assert incremental.reused_components == 1
        assert incremental.iterations > 0  # the dirty half did re-solve

    def test_no_previous_is_full_solve(self):
        rng = np.random.default_rng(8)
        poses = random_poses(rng, 4)
        edges = full_graph(poses)
        assert (solve_incremental(4, edges, None).poses
                == optimize_pose_graph(4, edges).poses)

    def test_fleet_growth_dirties_joined_component(self):
        """A new vehicle joining a component forces its re-solve."""
        rng = np.random.default_rng(9)
        poses = random_poses(rng, 4)
        three = [gt_edge(poses, 0, 1), gt_edge(poses, 1, 2),
                 gt_edge(poses, 0, 2)]
        previous = optimize_pose_graph(4, three)
        grown = three + [gt_edge(poses, 2, 3)]
        incremental = solve_incremental(4, grown, previous)
        assert incremental.reused_components == 0
        assert incremental.poses == optimize_pose_graph(4, grown).poses
