"""The unified ``BBAlign.recover`` entry point: dispatch and tiers.

One method, three input shapes (clouds/features, wire payloads, decoded
messages) — these tests pin the dispatch rules, the tier-aware fallback
ladder, and the deprecated wrappers' equivalence.
"""

import numpy as np
import pytest

from repro.comms import (
    Tier,
    TieredMessage,
    V2VMessage,
    build_message,
    encode_message,
)
from repro.comms.channel import Delivery
from repro.core import DegradationLevel, FailureReason
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.geometry.se2 import SE2


@pytest.fixture(scope="module")
def pair_boxes(frame_pair):
    detector = SimulatedDetector()
    ego = [d.box for d in detector.detect(frame_pair.ego_visible, rng=0)]
    other = [d.box for d in detector.detect(frame_pair.other_visible,
                                            rng=1)]
    return ego, other


@pytest.fixture()
def aligner():
    return BBAlign()


class TestDispatch:
    def test_cloud_and_feature_inputs_agree(self, aligner, frame_pair,
                                            pair_features, pair_boxes):
        ego_boxes, other_boxes = pair_boxes
        from_clouds = aligner.recover(frame_pair.ego_cloud,
                                      frame_pair.other_cloud,
                                      ego_boxes, other_boxes, rng=0)
        from_features = BBAlign().recover(*pair_features, ego_boxes,
                                          other_boxes, rng=0)
        assert from_clouds.success == from_features.success
        assert from_clouds.transform.theta == from_features.transform.theta
        assert from_clouds.transform.tx == from_features.transform.tx

    def test_mixed_cloud_and_features(self, aligner, frame_pair,
                                      pair_features, pair_boxes):
        ego_boxes, other_boxes = pair_boxes
        result = aligner.recover(pair_features[0], frame_pair.other_cloud,
                                 ego_boxes, other_boxes, rng=0)
        assert result.diagnostics.ego_keypoints > 0

    def test_rejects_junk_ego(self, aligner):
        with pytest.raises(TypeError, match="ego"):
            aligner.recover(42, b"payload", [])

    def test_rejects_junk_other(self, aligner, pair_features):
        with pytest.raises(TypeError, match="other"):
            aligner.recover(pair_features[0], 3.14, [])

    def test_rejects_boxes_alongside_payload(self, aligner, pair_features,
                                             pair_boxes):
        ego_boxes, other_boxes = pair_boxes
        payload = encode_message(
            TieredMessage(Tier.BOXES_ONLY, other_boxes), record=False)
        with pytest.raises(TypeError, match="inside the message"):
            aligner.recover(pair_features[0], payload, ego_boxes,
                            other_boxes)


class TestPayloadLadder:
    def test_none_payload_is_dropped(self, aligner, pair_features,
                                     pair_boxes):
        result = aligner.recover(pair_features[0], None, pair_boxes[0])
        assert not result.success
        assert result.failure_reason is FailureReason.MESSAGE_DROPPED

    def test_dropped_delivery(self, aligner, pair_features, pair_boxes):
        delivery = Delivery(payload=None, dropped=True)
        result = aligner.recover(pair_features[0], delivery, pair_boxes[0])
        assert result.failure_reason is FailureReason.MESSAGE_DROPPED

    def test_stale_delivery(self, aligner, pair_features, pair_boxes):
        delivery = Delivery(payload=b"anything", delay_frames=2)
        result = aligner.recover(pair_features[0], delivery, pair_boxes[0])
        assert result.failure_reason is FailureReason.MESSAGE_STALE

    def test_garbage_bytes_undecodable(self, aligner, pair_features,
                                       pair_boxes):
        result = aligner.recover(pair_features[0], b"\x00" * 64,
                                 pair_boxes[0])
        assert not result.success
        assert result.failure_reason is FailureReason.MESSAGE_UNDECODABLE
        assert result.message_bytes == 64


class TestTierPaths:
    def _payload(self, tier, frame_pair, pair_features, pair_boxes,
                 config):
        _, other_features = pair_features
        _, other_boxes = pair_boxes
        message = build_message(
            tier, other_boxes,
            cloud=frame_pair.other_cloud if tier is Tier.FULL_SCAN
            else None,
            features=other_features if tier in (Tier.BV_IMAGE,
                                                Tier.KEYPOINTS) else None,
            config=config)
        return encode_message(message, config, record=False)

    @pytest.mark.parametrize("tier", [Tier.FULL_SCAN, Tier.BV_IMAGE,
                                      Tier.KEYPOINTS])
    def test_tier_labels_and_bytes(self, aligner, frame_pair,
                                   pair_features, pair_boxes, tier):
        payload = self._payload(tier, frame_pair, pair_features,
                                pair_boxes, aligner.config.comms)
        result = aligner.recover(pair_features[0], payload, pair_boxes[0],
                                 rng=0)
        assert result.diagnostics.tier == tier.value
        assert result.message_bytes == len(payload)

    def test_full_scan_matches_direct_recovery(self, frame_pair,
                                               pair_features, pair_boxes):
        """The lossless tier reproduces a local feature run exactly."""
        payload = self._payload(Tier.FULL_SCAN, frame_pair, pair_features,
                                pair_boxes, None)
        via_wire = BBAlign().recover(pair_features[0], payload,
                                     pair_boxes[0], rng=0)
        direct = BBAlign().recover(pair_features[0],
                                   frame_pair.other_cloud, pair_boxes[0],
                                   pair_boxes[1], rng=0)
        assert via_wire.success == direct.success
        assert via_wire.transform.theta == direct.transform.theta
        assert via_wire.transform.tx == direct.transform.tx
        assert via_wire.transform.ty == direct.transform.ty

    def test_boxes_only_skips_bv_matching(self, aligner, pair_features,
                                          pair_boxes):
        payload = self._payload(Tier.BOXES_ONLY, None, pair_features,
                                pair_boxes, None)
        result = aligner.recover(pair_features[0], payload, pair_boxes[0],
                                 rng=0)
        # No stage-1 evidence either way: the result is labeled
        # boxes-only and stage 1 is the empty placeholder.
        assert result.diagnostics.tier == Tier.BOXES_ONLY.value
        assert result.stage1.num_matches == 0
        if result.success:
            assert result.degradation is DegradationLevel.BOXES_ONLY
        else:
            assert result.failure_reason in (
                FailureReason.BOXES_ONLY_NO_CONSENSUS,
                FailureReason.STAGE2_ERROR)

    def test_boxes_only_uses_last_good_prior(self, frame_pair,
                                             pair_features, pair_boxes):
        """After a successful full recovery, a boxes-only message aligns
        around the remembered pose instead of identity."""
        aligner = BBAlign()
        ego_boxes, other_boxes = pair_boxes
        warm = aligner.recover(*pair_features, ego_boxes, other_boxes,
                               rng=0)
        payload = encode_message(
            TieredMessage(Tier.BOXES_ONLY, other_boxes), record=False)
        result = aligner.recover(pair_features[0], payload, ego_boxes,
                                 rng=0)
        if warm.success and result.success:
            assert result.transform.translation_distance(
                warm.transform) < 4.0

    def test_decoded_message_accepted(self, aligner, pair_features,
                                      pair_boxes):
        message = TieredMessage(Tier.BOXES_ONLY, pair_boxes[1])
        result = aligner.recover(pair_features[0], message, pair_boxes[0],
                                 rng=0)
        assert result.diagnostics.tier == Tier.BOXES_ONLY.value
        assert result.message_bytes == message.size_bytes

    def test_legacy_v2v_frame_still_decodes(self, aligner, pair_features,
                                            pair_boxes):
        _, other_features = pair_features
        bev_boxes = [b.to_bev() if hasattr(b, "to_bev") else b
                     for b in pair_boxes[1]]
        frame = V2VMessage(other_features.bv_image, bev_boxes).to_bytes()
        assert frame[:4] == b"V2V1"
        result = aligner.recover(pair_features[0], frame, pair_boxes[0],
                                 rng=0)
        # Legacy frames keep the historical dense estimate, not the
        # actual wire size.
        assert result.diagnostics.tier is None
        assert result.message_bytes != len(frame)


class TestDeprecatedWrappers:
    def test_recover_from_features_warns_and_delegates(
            self, pair_features, pair_boxes):
        ego_boxes, other_boxes = pair_boxes
        with pytest.warns(DeprecationWarning, match="recover_from_features"):
            wrapped = BBAlign().recover_from_features(
                *pair_features, ego_boxes, other_boxes, rng=0)
        direct = BBAlign().recover(*pair_features, ego_boxes, other_boxes,
                                   rng=0)
        assert wrapped.transform.theta == direct.transform.theta
        assert wrapped.success == direct.success

    def test_recover_from_message_warns_and_delegates(
            self, frame_pair, pair_features, pair_boxes):
        with pytest.warns(DeprecationWarning, match="recover_from_message"):
            result = BBAlign().recover_from_message(
                frame_pair.ego_cloud, None, pair_boxes[0])
        assert result.failure_reason is FailureReason.MESSAGE_DROPPED

    def test_recover_from_message_feature_shortcut(
            self, pair_features, pair_boxes):
        with pytest.warns(DeprecationWarning):
            result = BBAlign().recover_from_message(
                None, b"junk", pair_boxes[0],
                ego_features=pair_features[0])
        assert result.failure_reason is FailureReason.MESSAGE_UNDECODABLE


class TestKeypointTier:
    def test_keypoints_carry_enough_to_match(self, frame_pair,
                                             pair_features, pair_boxes):
        """On an easy pair the 1.5 KB keypoint message still recovers a
        pose close to the full-fidelity answer when it succeeds."""
        config = BBAlign().config.comms
        _, other_features = pair_features
        message = build_message(Tier.KEYPOINTS, pair_boxes[1],
                                features=other_features, config=config)
        payload = encode_message(message, config, record=False)
        assert len(payload) < 4096
        result = BBAlign().recover(pair_features[0], payload,
                                   pair_boxes[0], rng=0)
        assert result.diagnostics.tier == Tier.KEYPOINTS.value
        if result.success:
            reference = BBAlign().recover(*pair_features, pair_boxes[0],
                                          pair_boxes[1], rng=0)
            if reference.success:
                assert result.transform.translation_distance(
                    reference.transform) < 5.0
