"""Tests for repro.core.temporal (pose tracking)."""

import numpy as np
import pytest

from repro.core.box_alignment import BoxAlignment
from repro.core.bv_matching import BVMatch
from repro.core.result import PoseRecoveryResult
from repro.core.temporal import PoseTracker, TrackerConfig
from repro.features.matching import MatchResult
from repro.geometry.ransac import RansacResult
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3


def fake_recovery(transform: SE2, success: bool = True,
                  inliers_bv: int = 40) -> PoseRecoveryResult:
    ransac = RansacResult(transform, np.ones(inliers_bv, dtype=bool),
                          inliers_bv, 10, True, 0.1)
    stage1 = BVMatch(transform, inliers_bv, inliers_bv, True, transform,
                     ransac, MatchResult.empty())
    return PoseRecoveryResult(
        transform=transform, transform_3d=SE3.from_se2(transform),
        success=success, stage1=stage1, stage2=BoxAlignment.skipped(),
        message_bytes=1000)


class TestTrackerBasics:
    def test_cold_start_adopts_measurement(self):
        tracker = PoseTracker()
        pose = SE2(0.3, 10.0, 2.0)
        tracked = tracker.update(fake_recovery(pose))
        assert tracked.used_measurement
        assert tracked.transform.is_close(pose)

    def test_uninitialized_coast_returns_identity(self):
        tracker = PoseTracker()
        tracked = tracker.update(None)
        assert tracked.coasting
        assert tracked.transform.is_close(SE2.identity())

    def test_predict_before_init_returns_none(self):
        tracker = PoseTracker()
        assert tracker.predict(SE2.identity(), SE2.identity()) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrackerConfig(min_blend=0.9, max_blend=0.5)
        with pytest.raises(ValueError):
            TrackerConfig(max_coast_frames=0)


class TestPrediction:
    def test_relative_pose_propagation_exact(self):
        """T(t+1) = dEgo^-1 T(t) dOther must match ground truth for
        arbitrary vehicle motions."""
        ego_0 = SE2(0.2, 0.0, 0.0)
        other_0 = SE2(-0.4, 20.0, 3.0)
        ego_step = SE2(0.05, 1.2, 0.1)
        other_step = SE2(-0.02, 0.9, 0.0)
        ego_1 = ego_0 @ ego_step
        other_1 = other_0 @ other_step
        truth_0 = ego_0.inverse() @ other_0
        truth_1 = ego_1.inverse() @ other_1

        tracker = PoseTracker()
        tracker.update(fake_recovery(truth_0))
        predicted = tracker.predict(ego_step, other_step)
        assert predicted.is_close(truth_1, atol_translation=1e-9)


class TestGating:
    def test_outlier_measurement_gated(self):
        tracker = PoseTracker()
        base = SE2(0.0, 10.0, 0.0)
        tracker.update(fake_recovery(base))
        bogus = SE2(0.0, 60.0, 0.0)
        tracked = tracker.update(fake_recovery(bogus))
        assert not tracked.used_measurement
        assert tracked.transform.translation_distance(base) < 1e-9

    def test_reacquisition_after_long_coast(self):
        config = TrackerConfig(max_coast_frames=2)
        tracker = PoseTracker(config)
        tracker.update(fake_recovery(SE2(0.0, 10.0, 0.0)))
        far = SE2(0.0, 60.0, 0.0)
        tracker.update(fake_recovery(far))   # gated (1)
        tracker.update(fake_recovery(far))   # gated (2)
        tracked = tracker.update(fake_recovery(far))  # re-acquire
        assert tracked.used_measurement
        assert tracked.transform.is_close(far)

    def test_failed_recovery_coasts(self):
        tracker = PoseTracker()
        base = SE2(0.1, 5.0, 1.0)
        tracker.update(fake_recovery(base))
        tracked = tracker.update(fake_recovery(base, success=False))
        assert tracked.coasting
        assert tracked.frames_since_update == 1


class TestBlending:
    def test_high_confidence_pulls_harder(self):
        base = SE2(0.0, 10.0, 0.0)
        offset = SE2(0.0, 11.0, 0.0)

        def final_x(inliers):
            tracker = PoseTracker()
            tracker.update(fake_recovery(base))
            return tracker.update(fake_recovery(offset,
                                                inliers_bv=inliers)).transform.tx

        assert abs(final_x(100) - 11.0) < abs(final_x(5) - 11.0)

    def test_blend_wraps_rotation(self):
        base = SE2(np.deg2rad(179.0), 0.0, 0.0)
        tracker = PoseTracker(TrackerConfig(gate_rotation_deg=10.0))
        tracker.update(fake_recovery(base))
        measurement = SE2(np.deg2rad(-179.0), 0.0, 0.0)
        tracked = tracker.update(fake_recovery(measurement))
        assert tracked.used_measurement
        # Blend must land between 179 and 181 degrees, not near 0.
        assert abs(abs(np.degrees(tracked.transform.theta)) - 180.0) < 2.0


class TestTrackingOverSequence:
    def test_tracker_fills_gaps_and_tracks_truth(self):
        """Synthetic stream: measurements every frame except a gap; the
        tracker must stay near truth through the gap via odometry."""
        rng = np.random.default_rng(0)
        ego = SE2(0.0, 0.0, 0.0)
        other = SE2(0.05, 25.0, 3.0)
        ego_step = SE2(0.01, 1.0, 0.0)
        other_step = SE2(-0.005, 1.1, 0.0)
        tracker = PoseTracker()
        errors = []
        for t in range(12):
            truth = ego.inverse() @ other
            if tracker.initialized:
                tracker.predict(ego_step, other_step)
            if 4 <= t <= 7:
                recovery = None  # communication gap
            else:
                noisy = SE2(truth.theta + rng.normal(0, 0.002),
                            truth.tx + rng.normal(0, 0.1),
                            truth.ty + rng.normal(0, 0.1))
                recovery = fake_recovery(noisy)
            tracked = tracker.update(recovery)
            if tracker.initialized:
                errors.append(tracked.transform.translation_distance(truth))
            ego = ego @ ego_step
            other = other @ other_step
        assert max(errors) < 0.5  # stays locked through the gap
