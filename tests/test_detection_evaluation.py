"""Tests for repro.detection.evaluation."""

import numpy as np

from repro.detection.evaluation import (
    DISTANCE_BINS,
    evaluate_cooperative_detection,
    ground_truth_boxes,
)
from repro.detection.fusion import LateFusionDetector
from repro.noise.pose_noise import add_pose_noise


class TestGroundTruthBoxes:
    def test_union_includes_both_views(self, frame_pair):
        gts = ground_truth_boxes(frame_pair)
        ego_ids = {v.vehicle_id for v in frame_pair.ego_visible}
        other_ids = {v.vehicle_id for v in frame_pair.other_visible}
        assert len(gts) >= len(ego_ids | other_ids) - 2  # partner overlap

    def test_no_duplicates_for_common_objects(self, frame_pair):
        gts = ground_truth_boxes(frame_pair)
        centers = np.array([[g.center_x, g.center_y] for g in gts])
        if len(centers) >= 2:
            dists = np.linalg.norm(centers[:, None] - centers[None], axis=2)
            np.fill_diagonal(dists, np.inf)
            assert dists.min() > 1.0  # distinct physical objects

    def test_other_boxes_expressed_in_ego_frame(self, frame_pair):
        """An object seen only by the other car must appear at a
        plausible ego-frame range (within sensor reach)."""
        gts = ground_truth_boxes(frame_pair)
        for g in gts:
            assert np.hypot(g.center_x, g.center_y) < 200.0


class TestEvaluateCooperativeDetection:
    def test_result_structure(self, frame_pair):
        method = LateFusionDetector()
        result = evaluate_cooperative_detection(
            [(frame_pair, frame_pair.gt_relative)], method, rng=0)
        assert set(result.overall.keys()) == {0.5, 0.7}
        assert set(result.by_distance.keys()) == set(DISTANCE_BINS)
        assert result.num_frames == 1

    def test_row_layout(self, frame_pair):
        method = LateFusionDetector()
        result = evaluate_cooperative_detection(
            [(frame_pair, frame_pair.gt_relative)], method, rng=0)
        row = result.row(0.5)
        assert len(row) == 1 + len(DISTANCE_BINS)

    def test_gt_pose_beats_noisy_pose(self, frame_pair, far_frame_pair):
        method = LateFusionDetector()
        pairs = [frame_pair, far_frame_pair]
        clean = evaluate_cooperative_detection(
            [(p, p.gt_relative) for p in pairs], method, rng=0)
        noisy = evaluate_cooperative_detection(
            [(p, add_pose_noise(p.gt_relative, 3.0, 3.0, rng=i))
             for i, p in enumerate(pairs)], method, rng=0)
        assert clean.overall[0.5].ap >= noisy.overall[0.5].ap

    def test_ap_at_07_no_higher_than_05(self, frame_pair):
        method = LateFusionDetector()
        result = evaluate_cooperative_detection(
            [(frame_pair, frame_pair.gt_relative)], method, rng=0)
        if not np.isnan(result.overall[0.5].ap):
            assert result.overall[0.7].ap <= result.overall[0.5].ap + 1e-9
