"""Tests for repro.detection.fusion (grids, head, the four pipelines)."""

import numpy as np
import pytest

from repro.detection.evaluation import ground_truth_boxes
from repro.detection.fusion import (
    BevFeatureGrid,
    ClusteringHead,
    CoBEVTFusionDetector,
    EarlyFusionDetector,
    FCooperFusionDetector,
    HeadConfig,
    LateFusionDetector,
    build_feature_grid,
    warp_grid,
)
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


def car_surface_cloud(cx, cy, yaw=0.0, n=220, seed=0):
    """Points on two visible sides of a car-sized box."""
    rng = np.random.default_rng(seed)
    t = rng.uniform(-2.25, 2.25, n)
    side = rng.uniform(0, 1, n) < 0.5
    x_local = np.where(side, t, 2.25)
    y_local = np.where(side, 0.95, rng.uniform(-0.95, 0.95, n))
    c, s = np.cos(yaw), np.sin(yaw)
    xs = cx + c * x_local - s * y_local
    ys = cy + s * x_local + c * y_local
    zs = rng.uniform(0.3, 1.5, n)
    return PointCloud(np.stack([xs, ys, zs], 1))


class TestFeatureGrid:
    def test_channels_and_shape(self, rng):
        cloud = PointCloud(rng.uniform(-10, 10, (100, 3)))
        grid = build_feature_grid(cloud, 0.4, 12.8)
        assert grid.features.shape == (4, 64, 64)

    def test_empty_cloud(self):
        grid = build_feature_grid(PointCloud.empty(), 0.4, 12.8)
        assert grid.features.max() == 0.0

    def test_car_band_separation(self):
        pts = np.array([[0.0, 0.0, 1.0],    # car band
                        [2.0, 0.0, 8.0],    # tall structure
                        [4.0, 0.0, 0.0]])   # ground
        grid = build_feature_grid(PointCloud(pts), 1.0, 8.0)
        car_h, car_n, tall, all_n = grid.features
        assert car_h.max() == pytest.approx(1.0)
        assert tall.max() == pytest.approx(8.0)
        # Ground point contributes to all-count but not car band.
        assert all_n.sum() > car_n.sum()

    def test_validation(self):
        with pytest.raises(ValueError):
            build_feature_grid(PointCloud.empty(), 0.0, 10.0)


class TestWarpGrid:
    def test_identity_warp_is_noop(self, rng):
        cloud = PointCloud(rng.uniform(-10, 10, (200, 3)))
        grid = build_feature_grid(cloud, 0.4, 12.8)
        warped = warp_grid(grid, SE2.identity())
        np.testing.assert_allclose(warped.features, grid.features)

    def test_translation_moves_content(self):
        pts = np.array([[0.0, 0.0, 1.0]])
        grid = build_feature_grid(PointCloud(pts), 1.0, 8.0)
        warped = warp_grid(grid, SE2(0.0, 3.0, 0.0))
        # Content moves +3 in x = +3 columns.
        orig_r, orig_c = np.unravel_index(np.argmax(grid.features[0]),
                                          grid.features[0].shape)
        new_r, new_c = np.unravel_index(np.argmax(warped.features[0]),
                                        warped.features[0].shape)
        assert new_c == orig_c + 3 and new_r == orig_r

    def test_warp_matches_transforming_points(self, rng):
        transform = SE2(0.4, 2.0, -1.0)
        cloud = PointCloud(rng.uniform(-8, 8, (300, 3)))
        direct = build_feature_grid(cloud.transform(transform), 0.8, 12.8)
        warped = warp_grid(build_feature_grid(cloud, 0.8, 12.8), transform)
        # Nearest-neighbor warping differs at cell boundaries; compare
        # occupancy overlap rather than exact equality.
        a = direct.features[3] > 0
        b = warped.features[3] > 0
        overlap = (a & b).sum() / max((a | b).sum(), 1)
        assert overlap > 0.5


class TestClusteringHead:
    def test_detects_isolated_car(self):
        cloud = car_surface_cloud(5.0, 3.0, yaw=0.5)
        grid = build_feature_grid(cloud, 0.4, 12.8)
        dets = ClusteringHead().detect(grid)
        assert len(dets) >= 1
        best = min(dets, key=lambda d: np.hypot(d.box.center_x - 5.0,
                                                d.box.center_y - 3.0))
        assert np.hypot(best.box.center_x - 5.0,
                        best.box.center_y - 3.0) < 1.0

    def test_tall_structure_vetoed(self, rng):
        # A building wall has car-band returns too but is capped by tall.
        n = 400
        xs = rng.uniform(-5, 5, n)
        pts = np.stack([xs, np.full(n, 4.0), rng.uniform(0.3, 9.0, n)], 1)
        grid = build_feature_grid(PointCloud(pts), 0.4, 12.8)
        dets = ClusteringHead().detect(grid)
        assert len(dets) == 0

    def test_empty_grid(self):
        grid = BevFeatureGrid(np.zeros((4, 32, 32)), 0.4, 6.4)
        assert ClusteringHead().detect(grid) == []

    def test_oversized_blob_split_or_dropped(self, rng):
        # A huge car-band blob (30 m across) must not yield one giant box.
        pts = np.column_stack([rng.uniform(-15, 15, (4000, 2)),
                               rng.uniform(0.5, 1.5, 4000)])
        grid = build_feature_grid(PointCloud(pts), 0.4, 25.6)
        dets = ClusteringHead().detect(grid)
        for det in dets:
            assert det.box.length <= HeadConfig().max_extent + 1e-6


class TestFusionPipelines:
    @pytest.mark.parametrize("method_cls", [
        EarlyFusionDetector, LateFusionDetector,
        FCooperFusionDetector, CoBEVTFusionDetector])
    def test_detects_in_ego_frame(self, frame_pair, method_cls):
        method = method_cls()
        dets = method.detect(frame_pair, frame_pair.gt_relative, rng=0)
        gts = ground_truth_boxes(frame_pair)
        assert len(gts) > 0
        if dets:
            # At least one detection lands near some GT object.
            centers = np.array([[d.box.center_x, d.box.center_y]
                                for d in dets])
            gt_centers = np.array([[g.center_x, g.center_y] for g in gts])
            dists = np.linalg.norm(centers[:, None] - gt_centers[None],
                                   axis=2)
            assert dists.min() < 2.0

    def test_pose_error_degrades_early_fusion(self, frame_pair):
        """The Table I mechanism in miniature: a 3 m pose error produces
        fewer well-localized detections than the true pose."""
        method = EarlyFusionDetector()
        gts = ground_truth_boxes(frame_pair)
        gt_centers = np.array([[g.center_x, g.center_y] for g in gts])

        def hits(pose):
            dets = method.detect(frame_pair, pose, rng=0)
            count = 0
            for det in dets:
                d = np.linalg.norm(gt_centers - [det.box.center_x,
                                                 det.box.center_y], axis=1)
                count += (d.min() < 1.0)
            return count

        good = hits(frame_pair.gt_relative)
        bad_pose = SE2(frame_pair.gt_relative.theta + np.deg2rad(3.0),
                       frame_pair.gt_relative.tx + 3.0,
                       frame_pair.gt_relative.ty - 2.0)
        bad = hits(bad_pose)
        assert good >= bad

    def test_late_fusion_merges_and_dedupes(self, frame_pair):
        method = LateFusionDetector()
        dets = method.detect(frame_pair, frame_pair.gt_relative, rng=0)
        # No two kept detections overlap heavily.
        from repro.boxes.iou import bev_iou
        boxes = [d.box.to_bev() for d in dets]
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                assert bev_iou(boxes[i], boxes[j]) <= 0.3 + 1e-9
