"""Unit tests of the fusion operators themselves (no full frames)."""

import numpy as np
import pytest

from repro.detection.fusion.cobevt import CoBEVTFusionDetector
from repro.detection.fusion.fcooper import FCooperFusionDetector
from repro.detection.fusion.grid import BevFeatureGrid


def grid_from(features):
    features = np.asarray(features, dtype=float)
    return BevFeatureGrid(features, 0.4, features.shape[1] * 0.2)


def empty_grid(size=16):
    return grid_from(np.zeros((4, size, size)))


class TestFCooperFuse:
    def test_elementwise_max(self, rng):
        a = grid_from(rng.random((4, 16, 16)))
        b = grid_from(rng.random((4, 16, 16)))
        fused = FCooperFusionDetector().fuse(a, b)
        np.testing.assert_allclose(fused.features,
                                   np.maximum(a.features, b.features))

    def test_identity_with_empty_other(self, rng):
        a = grid_from(rng.random((4, 16, 16)))
        fused = FCooperFusionDetector().fuse(a, empty_grid())
        np.testing.assert_allclose(fused.features, a.features)

    def test_commutative(self, rng):
        a = grid_from(rng.random((4, 16, 16)))
        b = grid_from(rng.random((4, 16, 16)))
        det = FCooperFusionDetector()
        np.testing.assert_allclose(det.fuse(a, b).features,
                                   det.fuse(b, a).features)


class TestCoBEVTFuse:
    def test_single_view_evidence_preserved(self):
        # Other-car evidence in cells the ego never observed must pass
        # through at full strength (the cooperative gain).
        features = np.zeros((4, 16, 16))
        features[0, 8, 8] = 1.5   # car-band height
        features[1, 8, 8] = 2.0   # car-band count
        other = grid_from(features)
        fused = CoBEVTFusionDetector().fuse(empty_grid(), other)
        assert fused.features[0, 8, 8] == pytest.approx(1.5)

    def test_contradicted_evidence_attenuated(self):
        # Other-car car-band evidence landing where the ego observes
        # plenty of returns but NO car-band content is discounted.
        ego = np.zeros((4, 16, 16))
        ego[3, :, :] = 3.0        # dense ego observation (free space)
        other = np.zeros((4, 16, 16))
        other[0, 8, 8] = 1.5
        other[1, 8, 8] = 2.0
        detector = CoBEVTFusionDetector(contradiction_discount=0.4)
        fused = detector.fuse(grid_from(ego), grid_from(other))
        assert fused.features[0, 8, 8] == pytest.approx(1.5 * 0.4)

    def test_agreeing_views_blend(self):
        a = np.zeros((4, 16, 16))
        a[0, 5, 5] = 1.0
        a[1, 5, 5] = 1.0
        b = np.zeros((4, 16, 16))
        b[0, 5, 5] = 1.2
        b[1, 5, 5] = 1.0
        fused = CoBEVTFusionDetector().fuse(grid_from(a), grid_from(b))
        assert 1.0 <= fused.features[0, 5, 5] <= 1.2
