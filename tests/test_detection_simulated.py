"""Tests for repro.detection.simulated."""

import numpy as np
import pytest

from repro.boxes.box import Box3D
from repro.detection.simulated import (
    COBEVT_PROFILE,
    FCOOPER_PROFILE,
    DetectorProfile,
    SimulatedDetector,
)
from repro.simulation.scenario import VisibleObject


def visible(n=5, points=200, seed=0):
    rng = np.random.default_rng(seed)
    objs = []
    for i in range(n):
        x, y = rng.uniform(-40, 40, 2)
        objs.append(VisibleObject(
            i, Box3D(x, y, 0.8, 4.5, 1.9, 1.6, rng.uniform(-3, 3)), points))
    return objs


class TestProfile:
    def test_recall_saturates(self):
        profile = COBEVT_PROFILE
        assert profile.recall_at(1000) == pytest.approx(
            profile.recall_ceiling, abs=1e-6)
        assert profile.recall_at(1) < profile.recall_ceiling / 2

    def test_recall_monotone(self):
        counts = [1, 5, 20, 80, 400]
        recalls = [COBEVT_PROFILE.recall_at(c) for c in counts]
        assert recalls == sorted(recalls)

    def test_cobevt_stronger_than_fcooper(self):
        assert COBEVT_PROFILE.recall_at(30) > FCOOPER_PROFILE.recall_at(30)
        assert COBEVT_PROFILE.center_noise < FCOOPER_PROFILE.center_noise

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorProfile(name="x", recall_ceiling=0.0)
        with pytest.raises(ValueError):
            DetectorProfile(name="x", recall_points_scale=0.0)


class TestSimulatedDetector:
    def test_detects_well_observed_objects(self, rng):
        detector = SimulatedDetector(COBEVT_PROFILE)
        dets = detector.detect(visible(n=10, points=500), rng)
        true_dets = [d for d in dets if d.gt_vehicle_id is not None]
        assert len(true_dets) >= 8

    def test_misses_sparse_objects(self, rng):
        detector = SimulatedDetector(COBEVT_PROFILE)
        hits = 0
        for trial in range(30):
            dets = detector.detect(visible(n=5, points=2, seed=trial),
                                   np.random.default_rng(trial))
            hits += sum(d.gt_vehicle_id is not None for d in dets)
        assert hits < 30 * 5 * 0.4

    def test_box_noise_bounded(self, rng):
        objs = visible(n=20, points=500)
        detector = SimulatedDetector(COBEVT_PROFILE)
        dets = detector.detect(objs, rng)
        truth = {o.vehicle_id: o.box for o in objs}
        for det in dets:
            if det.gt_vehicle_id is None:
                continue
            gt = truth[det.gt_vehicle_id]
            offset = np.hypot(det.box.center_x - gt.center_x,
                              det.box.center_y - gt.center_y)
            assert offset < 1.0  # few sigma of center noise

    def test_scores_sorted(self, rng):
        dets = SimulatedDetector().detect(visible(), rng)
        scores = [d.score for d in dets]
        assert scores == sorted(scores, reverse=True)

    def test_false_positives_unlabeled(self):
        profile = DetectorProfile(name="fp-heavy",
                                  false_positives_per_frame=20.0)
        dets = SimulatedDetector(profile).detect(visible(n=0),
                                                 np.random.default_rng(0))
        assert len(dets) > 5
        assert all(d.gt_vehicle_id is None for d in dets)

    def test_deterministic_with_seed(self):
        objs = visible()
        a = SimulatedDetector().detect(objs, 77)
        b = SimulatedDetector().detect(objs, 77)
        assert len(a) == len(b)
        for da, db in zip(a, b):
            assert da.score == db.score
            assert da.box.center_x == db.box.center_x

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            SimulatedDetector(max_range=0.0)
