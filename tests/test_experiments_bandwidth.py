"""The bandwidth experiment: legacy sizes and the tier x impairment grid."""

import pytest

from repro.experiments.bandwidth import (
    IMPAIRMENTS,
    BandwidthResult,
    CommsCell,
    CommsGridResult,
    format_bandwidth,
    format_comms_grid,
    run_bandwidth,
    run_comms_grid,
)


@pytest.fixture(scope="module")
def tiny_grid():
    """A 2-pair grid over a policy subset (keeps runtime in seconds)."""
    return run_comms_grid(num_pairs=2, seed=11,
                          policies=("full-scan", "boxes-only", "adaptive"))


class TestLegacyPath:
    def test_run_bandwidth_default_is_size_comparison(self):
        result = run_bandwidth(num_pairs=2, seed=5)
        assert isinstance(result, BandwidthResult)
        assert result.raw_cloud_mean > result.encoded_message_mean
        assert "Bandwidth" in format_bandwidth(result)

    def test_tier_flag_switches_to_grid(self):
        result = run_bandwidth(num_pairs=2, seed=5, tier="boxes-only")
        assert isinstance(result, CommsGridResult)
        assert {c.policy for c in result.cells} == {"boxes-only"}
        assert "Comms grid" in format_bandwidth(result)


class TestGrid:
    def test_cell_layout(self, tiny_grid):
        assert len(tiny_grid.cells) == 3 * len(IMPAIRMENTS)
        impairment_names = [name for name, _, _ in IMPAIRMENTS]
        for cell in tiny_grid.cells:
            assert cell.impairment in impairment_names
            assert cell.num_pairs == 2
            assert 0 <= cell.successes <= cell.num_pairs
            assert cell.delivered <= cell.num_pairs

    def test_control_cell_is_byte_identical(self, tiny_grid):
        assert tiny_grid.control_identical is True

    def test_control_unattested_without_full_scan(self):
        grid = run_comms_grid(num_pairs=2, seed=11,
                              policies=("boxes-only",))
        assert grid.control_identical is False

    def test_clean_full_scan_sends_every_pair(self, tiny_grid):
        cell = tiny_grid.cell("full-scan", "clean")
        assert cell.delivered == cell.num_pairs
        assert cell.decode_errors == 0
        assert cell.tier_messages == {"full-scan": 2}

    def test_drop_cell_loses_bytes_not_sends(self, tiny_grid):
        clean = tiny_grid.cell("full-scan", "clean")
        dropped = tiny_grid.cell("full-scan", "drop-0.3")
        # The sender pays for every message whether or not it lands.
        assert dropped.total_sent_bytes == clean.total_sent_bytes

    def test_pareto_frontier_is_nondominated(self, tiny_grid):
        for impairment, _, _ in IMPAIRMENTS:
            frontier = tiny_grid.pareto(impairment)
            assert frontier
            for a in frontier:
                for b in frontier:
                    if a is b:
                        continue
                    assert not (b.success_rate >= a.success_rate
                                and b.mean_sent_bytes < a.mean_sent_bytes)

    def test_deterministic_across_runs(self):
        first = run_comms_grid(num_pairs=2, seed=11,
                               policies=("boxes-only", "adaptive"))
        second = run_comms_grid(num_pairs=2, seed=11,
                                policies=("boxes-only", "adaptive"))
        for a, b in zip(first.cells, second.cells):
            assert (a.successes, a.total_sent_bytes, a.tier_messages) \
                == (b.successes, b.total_sent_bytes, b.tier_messages)

    def test_policy_subset_keeps_channel_streams(self, tiny_grid):
        """A cell's outcome does not depend on which other policies ran
        (channel streams are keyed by the full-grid cell index)."""
        alone = run_comms_grid(num_pairs=2, seed=11,
                               policies=("boxes-only",))
        subset_cell = alone.cell("boxes-only", "drop-0.3")
        full_cell = tiny_grid.cell("boxes-only", "drop-0.3")
        assert subset_cell.successes == full_cell.successes
        assert subset_cell.total_sent_bytes == full_cell.total_sent_bytes

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policies"):
            run_comms_grid(num_pairs=2, seed=11, policies=("hologram",))

    def test_format_mentions_every_cell(self, tiny_grid):
        text = format_comms_grid(tiny_grid)
        assert "Pareto" in text
        assert "control identical" in text
        for cell in tiny_grid.cells:
            assert cell.policy in text


class TestCellMath:
    def test_rates(self):
        cell = CommsCell(policy="keypoints", impairment="clean",
                         drop_rate=0.0, corruption_rate=0.0, num_pairs=4,
                         successes=3, delivered=4, decode_errors=0,
                         total_sent_bytes=6000)
        assert cell.success_rate == 0.75
        assert cell.mean_sent_bytes == 1500.0

    def test_empty_cell_is_well_defined(self):
        cell = CommsCell(policy="keypoints", impairment="clean",
                         drop_rate=0.0, corruption_rate=0.0, num_pairs=0,
                         successes=0, delivered=0, decode_errors=0,
                         total_sent_bytes=0)
        assert cell.success_rate == 0.0
        assert cell.mean_sent_bytes == 0.0
