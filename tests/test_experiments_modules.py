"""Unit tests of experiment aggregation logic on synthetic outcomes.

The integration suite runs each experiment end to end at small scale;
these tests pin the *bucketing and summary math* exactly, using
hand-built :class:`PairOutcome` lists (no simulation, no pipeline).
"""

import numpy as np
import pytest

from repro.experiments.common import PairOutcome
from repro.experiments.fig7_comparison import compute_fig7
from repro.experiments.fig8_common_cars import compute_fig8
from repro.experiments.fig9_inliers import (
    compute_fig9,
    derive_success_thresholds,
)
from repro.experiments.fig10_distance import compute_fig10
from repro.experiments.fig11_bv_distance import compute_fig11
from repro.experiments.fig12_box_common_cars import compute_fig12
from repro.experiments.fig14_ablation import compute_fig14
from repro.experiments.success_rate import compute_success_rate
from repro.metrics.pose_error import PoseErrors


def outcome(index=0, distance=20.0, num_common=3, scenario="suburban",
            success=True, terr=0.3, rerr=0.2, s1_terr=0.5, s1_rerr=0.25,
            inliers_bv=30, inliers_box=10, vips_terr=None):
    return PairOutcome(
        index=index, distance=distance, num_common=num_common,
        scenario_kind=scenario, success=success,
        errors=PoseErrors(terr, rerr),
        stage1_errors=PoseErrors(s1_terr, s1_rerr),
        inliers_bv=inliers_bv, inliers_box=inliers_box,
        num_matches=50, num_matched_boxes=3,
        message_bytes=30_000, raw_cloud_bytes=500_000,
        vips_success=vips_terr is not None,
        vips_errors=(PoseErrors(vips_terr, 1.0)
                     if vips_terr is not None else None))


class TestFig7Math:
    def test_fractions_over_all_pairs(self):
        outcomes = [outcome(terr=0.5, vips_terr=0.4),
                    outcome(terr=0.5, vips_terr=5.0),
                    outcome(success=False, terr=9.0, vips_terr=None),
                    outcome(terr=2.0, vips_terr=None)]
        result = compute_fig7(outcomes)
        # BB: 2 of 4 successful AND under 1 m; VIPS: 1 of 4 under 1 m.
        assert result.bb_fraction_under_1m == pytest.approx(0.5)
        assert result.vips_fraction_under_1m == pytest.approx(0.25)

    def test_cdfs_only_over_valid(self):
        outcomes = [outcome(terr=0.5), outcome(success=False, terr=9.0)]
        result = compute_fig7(outcomes)
        assert result.bb_translation.values.size == 1


class TestFig8Math:
    def test_bucket_assignment(self):
        outcomes = [outcome(num_common=0), outcome(num_common=3),
                    outcome(num_common=5), outcome(num_common=20)]
        result = compute_fig8(outcomes)
        assert result.bucket_counts == {"0-1": 1, "2-3": 1, "4-6": 1,
                                        "7+": 1}

    def test_failed_pairs_excluded_from_bb_percentiles(self):
        outcomes = [outcome(num_common=3, success=False, terr=50.0),
                    outcome(num_common=3, terr=0.2)]
        result = compute_fig8(outcomes)
        assert result.bb_percentiles["2-3"][50] == pytest.approx(0.2)


class TestFig9Math:
    def test_bucketing_by_inliers(self):
        outcomes = [outcome(inliers_bv=5, terr=3.0),
                    outcome(inliers_bv=100, terr=0.1)]
        result = compute_fig9(outcomes)
        low = result.by_bv_inliers["[0,13)"][0]
        high = result.by_bv_inliers[">=50"][0]
        assert low.values.size == 1 and high.values.size == 1
        assert low.fraction_below(1.0) == 0.0
        assert high.fraction_below(1.0) == 1.0

    def test_zero_inlier_attempts_excluded(self):
        outcomes = [outcome(inliers_bv=0)]
        result = compute_fig9(outcomes)
        assert all(t.values.size == 0
                   for t, _ in result.by_bv_inliers.values())


class TestThresholdDerivationMath:
    def test_clean_separation(self):
        # Below 20 inliers: bad; above: good.
        outcomes = [outcome(inliers_bv=i, terr=5.0) for i in (5, 10, 15)] \
            + [outcome(inliers_bv=i, terr=0.1)
               for i in (25, 30, 40, 50, 60)]
        bv, _ = derive_success_thresholds(outcomes, target_accuracy=0.9)
        assert 15 <= bv < 25


class TestFig10Math:
    def test_distance_bins_and_success_rate(self):
        outcomes = [outcome(distance=30.0, terr=0.2),
                    outcome(distance=30.0, success=False),
                    outcome(distance=85.0, terr=0.5)]
        result = compute_fig10(outcomes)
        assert result.success_rate["[0,70) m"] == pytest.approx(0.5)
        assert result.translation["[70,100) m"].values.size == 1


class TestFig11Math:
    def test_uses_stage1_errors_and_criterion(self):
        outcomes = [outcome(distance=10.0, inliers_bv=30, s1_terr=0.7),
                    outcome(distance=10.0, inliers_bv=5, s1_terr=0.1)]
        result = compute_fig11(outcomes)
        cdf = result.translation["[0,20) m"]
        # Only the inliers>12 attempt qualifies; its stage-1 error is 0.7.
        assert cdf.values.size == 1
        assert cdf.values[0] == pytest.approx(0.7)


class TestFig12Math:
    def test_only_successes_counted(self):
        outcomes = [outcome(num_common=4, terr=0.2),
                    outcome(num_common=4, success=False, terr=8.0)]
        result = compute_fig12(outcomes)
        assert result.translation["3-5"].values.size == 1


class TestFig14Math:
    def test_same_population_both_arms(self):
        outcomes = [outcome(terr=0.2, s1_terr=0.6),
                    outcome(success=False, terr=9.0, s1_terr=9.0)]
        result = compute_fig14(outcomes)
        assert result.translation["with box align"][50] == pytest.approx(0.2)
        assert result.translation["w/o box align"][50] == pytest.approx(0.6)


class TestSuccessRateMath:
    def test_per_scenario_breakdown(self):
        outcomes = [outcome(scenario="urban", success=True),
                    outcome(scenario="urban", success=False),
                    outcome(scenario="open", success=False)]
        result = compute_success_rate(outcomes)
        assert result.overall == pytest.approx(1 / 3)
        assert result.by_scenario["urban"] == pytest.approx(0.5)
        assert result.by_scenario["open"] == 0.0
        assert result.scenario_counts == {"urban": 2, "open": 1}


class TestMultiStudyMath:
    @staticmethod
    def scene(targets=2, direct=1, graph=2, errors=(0.2,),
              cycles=(0.1,), pairs=3, edges=2, rejected=0):
        from repro.experiments.multi_study import SceneOutcome
        return SceneOutcome(
            targets=targets, direct_hits=direct, graph_hits=graph,
            errors=tuple(errors), cycle_translations=tuple(cycles),
            num_candidate_pairs=pairs, num_edges=edges,
            num_rejected=rejected)

    def test_aggregate_counts_and_medians(self):
        from repro.experiments.multi_study import _aggregate
        outcomes = [self.scene(errors=(0.2, 0.4), cycles=(0.1,)),
                    self.scene(direct=0, graph=1, errors=(0.8,),
                               cycles=(), rejected=1)]
        result = _aggregate(outcomes, num_scenes=2, num_vehicles=3,
                            density=2.5, degradation=1)
        assert result.targets == 4
        assert result.direct_hits == 1 and result.graph_hits == 3
        assert result.direct_coverage == pytest.approx(0.25)
        assert result.graph_coverage == pytest.approx(0.75)
        assert result.median_error == pytest.approx(0.4)
        assert result.median_cycle_translation == pytest.approx(0.1)
        assert result.rejected_edges == 1
        assert result.scenes_with_cycles == 1
        assert result.density == 2.5 and result.degradation == 1

    def test_aggregate_counts_scene_errors(self):
        from repro.experiments.multi_study import _aggregate
        from repro.runtime.engine import TaskError
        outcomes = [self.scene(),
                    TaskError(index=1, error="boom",
                              error_type="RuntimeError")]
        result = _aggregate(outcomes, num_scenes=2, num_vehicles=3,
                            density=1.0, degradation=0)
        assert result.scene_errors == 1
        assert result.targets == 2  # only the surviving scene counts

    def test_aggregate_all_failed_is_nan_not_crash(self):
        from repro.experiments.multi_study import _aggregate
        result = _aggregate([], num_scenes=1, num_vehicles=3,
                            density=1.0, degradation=0)
        assert np.isnan(result.median_error)
        assert np.isnan(result.median_cycle_translation)
        assert result.direct_coverage == 0.0
