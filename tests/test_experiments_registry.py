"""Tests for the declarative experiment registry."""

import pytest

from repro.experiments.registry import (
    ExperimentSpec,
    all_specs,
    experiment_names,
    get_spec,
    register,
)

EXPECTED_NAMES = {
    "fig7", "fig8", "fig9", "success-rate", "fig10", "fig11", "fig12",
    "fig13", "table1", "fig14", "bandwidth", "ablations", "icp",
    "tracking", "multi", "multi-grid", "dataset-stats", "submap",
    "noise-sweep", "robustness", "comms-grid",
}


class TestDiscovery:
    def test_all_experiments_registered(self):
        assert set(experiment_names()) == EXPECTED_NAMES

    def test_specs_are_complete(self):
        for spec in all_specs():
            assert callable(spec.runner), spec.name
            assert callable(spec.formatter), spec.name
            assert spec.description, spec.name
            assert spec.paper_artifact, spec.name

    def test_get_spec_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("nonsense")

    def test_get_experiment_is_public_alias(self):
        from repro.experiments import get_experiment
        from repro.experiments.registry import get_experiment as from_reg
        assert get_experiment is from_reg
        assert get_experiment("fig7") is get_spec("fig7")
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("nonsense")

    def test_reregistration_is_idempotent(self):
        spec = get_spec("fig7")
        assert register(spec) is spec

    def test_name_collision_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(ExperimentSpec(
                name="fig7", runner=lambda: None,
                formatter=str, description="impostor"))


class TestRunShim:
    def test_modern_runner_receives_workers(self):
        seen = {}

        def runner(num_pairs, seed, *, workers=1):
            seen.update(num_pairs=num_pairs, seed=seed, workers=workers)
            return "ok"

        spec = ExperimentSpec(name="_modern", runner=runner,
                              formatter=str, description="test")
        assert spec.run(5, 7, workers=3) == "ok"
        assert seen == {"num_pairs": 5, "seed": 7, "workers": 3}

    def test_legacy_runner_warns_and_drops_workers(self):
        def legacy(num_pairs, seed):
            return (num_pairs, seed)

        spec = ExperimentSpec(name="_legacy", runner=legacy,
                              formatter=str, description="test")
        with pytest.warns(DeprecationWarning, match="legacy"):
            assert spec.run(5, 7, workers=3) == (5, 7)

    def test_format_delegates(self):
        spec = ExperimentSpec(name="_fmt", runner=lambda: None,
                              formatter=lambda r: f"<{r}>",
                              description="test")
        assert spec.format("x") == "<x>"

    def test_run_executes_real_experiment(self):
        result = get_spec("dataset-stats").run(2, 5, workers=1)
        text = get_spec("dataset-stats").format(result)
        assert "Dataset characterization" in text
