"""Tests for repro.experiments.reporting."""

import numpy as np

from repro.experiments.reporting import (
    format_cdf_series,
    format_percentile_table,
    format_table,
)
from repro.metrics.aggregation import Cdf


class TestFormatCdf:
    def test_contains_grid_rows(self):
        cdf = Cdf.from_samples([0.1, 0.4, 0.9, 2.0])
        text = format_cdf_series("terr", cdf)
        assert "terr" in text
        assert "P(err <= 1)" in text
        assert "75.0" in text  # 3/4 under 1

    def test_empty(self):
        text = format_cdf_series("x", Cdf.from_samples([]))
        assert "no samples" in text


class TestPercentileTable:
    def test_layout(self):
        rows = {"a": {10: 0.1, 25: 0.2, 50: 0.3, 75: 0.4, 90: 0.5}}
        text = format_percentile_table(rows, "title:")
        assert "title:" in text
        assert "p50" in text
        assert "0.30" in text

    def test_missing_percentile_nan(self):
        rows = {"a": {50: 1.0}}
        text = format_percentile_table(rows)
        assert "nan" in text or "1.00" in text


class TestGenericTable:
    def test_alignment_and_values(self):
        text = format_table(["m", "v"], [["x", 1.5], ["longer", 22.25]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert "22.2" in text  # float formatting

    def test_nan_rendered_as_dashes(self):
        text = format_table(["a"], [[float("nan")]])
        assert "--" in text

    def test_title(self):
        text = format_table(["a"], [], title="T1")
        assert text.startswith("T1")
