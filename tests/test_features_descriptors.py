"""Tests for repro.features.descriptors (BVFT)."""

import numpy as np
import pytest

from repro.bev.mim import compute_mim
from repro.bev.projection import height_map
from repro.features.descriptors import (
    BvftConfig,
    BvftDescriptorExtractor,
    DescriptorSet,
)
from repro.features.fast import FastConfig, Keypoints, detect_fast
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


def corner_cloud(transform: SE2 | None = None) -> PointCloud:
    """Two perpendicular walls meeting at a corner, plus a few blobs —
    a distinctive local structure for descriptor tests."""
    t = np.linspace(0, 20, 160)
    rng = np.random.default_rng(5)
    parts = []
    for f in np.linspace(0.3, 1, 5):
        z = np.full_like(t, 9 * f)
        parts.append(np.stack([t, np.zeros_like(t), z], 1))
        parts.append(np.stack([np.zeros_like(t), t, z], 1))
    for _ in range(6):
        cx, cy = rng.uniform(-15, 15, 2)
        n = 25
        parts.append(np.stack([cx + rng.normal(0, .6, n),
                               cy + rng.normal(0, .6, n),
                               rng.uniform(2, 5, n)], 1))
    pts = np.vstack(parts)
    if transform is not None:
        xy = transform.apply(pts[:, :2])
        pts = np.column_stack([xy, pts[:, 2]])
    return PointCloud(pts)


def extract(cloud, config=None):
    bv = height_map(cloud, 0.4, 25.6)
    mim = compute_mim(bv)
    keypoints = detect_fast(bv.image, FastConfig(threshold=0.3))
    extractor = BvftDescriptorExtractor(config or BvftConfig())
    return bv, extractor.compute(mim, keypoints)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(patch_size=2),
        dict(grid_size=0),
        dict(patch_size=50, grid_size=7),  # not divisible
        dict(clip_value=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BvftConfig(**kwargs)

    def test_descriptor_length(self):
        cfg = BvftConfig(patch_size=48, grid_size=6)
        assert cfg.descriptor_length(12) == 6 * 6 * 12


class TestExtraction:
    def test_descriptors_normalized(self):
        _, descs = extract(corner_cloud())
        assert len(descs) > 0
        norms = np.linalg.norm(descs.descriptors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_positions_align_with_rows(self):
        _, descs = extract(corner_cloud())
        assert descs.keypoint_xy.shape == (len(descs), 2)
        assert descs.keypoint_indices.shape == (len(descs),)
        assert descs.dominant_bins.shape == (len(descs),)

    def test_empty_keypoints(self):
        bv = height_map(corner_cloud(), 0.4, 25.6)
        mim = compute_mim(bv)
        out = BvftDescriptorExtractor().compute(mim, Keypoints.empty())
        assert len(out) == 0

    def test_empty_image_keypoint_dropped(self):
        mim = compute_mim(np.zeros((64, 64)))
        kp = Keypoints(np.array([[32.0, 32.0]]), np.array([1.0]))
        out = BvftDescriptorExtractor().compute(mim, kp)
        assert len(out) == 0

    def test_deterministic(self):
        _, d1 = extract(corner_cloud())
        _, d2 = extract(corner_cloud())
        np.testing.assert_array_equal(d1.descriptors, d2.descriptors)


class TestRotationInvariance:
    def test_descriptors_match_under_rotation(self):
        """The core BVFT property: the same physical structure described
        from a rotated viewpoint yields a nearby descriptor."""
        bv0, d0 = extract(corner_cloud())
        rotation = SE2(np.deg2rad(45.0), 0.0, 0.0)
        bv1, d1 = extract(corner_cloud(rotation))
        assert len(d0) > 3 and len(d1) > 3

        # Map rotated keypoints back to the original frame and pair them.
        world1 = bv1.pixel_to_world(d1.keypoint_xy)
        world1_in_0 = rotation.inverse().apply(world1)
        pix_in_0 = bv0.world_to_pixel(world1_in_0)
        from scipy.spatial import cKDTree
        tree = cKDTree(d0.keypoint_xy)
        dist, idx = tree.query(pix_in_0, k=1)
        paired = dist < 2.0
        assert paired.sum() >= 3

        # For paired keypoints the rotated descriptor must rank its true
        # counterpart highly among all originals.
        good = 0
        for j in np.nonzero(paired)[0]:
            d_all = np.linalg.norm(d0.descriptors - d1.descriptors[j],
                                   axis=1)
            rank = int((d_all < d_all[idx[j]]).sum())
            good += rank < 5
        assert good >= paired.sum() * 0.5

    def test_rotation_invariance_off_changes_descriptors(self):
        cfg_on = BvftConfig(rotation_invariant=True)
        cfg_off = BvftConfig(rotation_invariant=False)
        _, d_on = extract(corner_cloud(), cfg_on)
        _, d_off = extract(corner_cloud(), cfg_off)
        assert len(d_on) and len(d_off)
        # With invariance off every dominant bin is 0.
        assert np.all(d_off.dominant_bins == 0)
        assert not np.all(d_on.dominant_bins == 0)


class TestDescriptorSet:
    def test_empty_constructor(self):
        empty = DescriptorSet.empty(432)
        assert len(empty) == 0
        assert empty.descriptors.shape == (0, 432)
