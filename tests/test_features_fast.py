"""Tests for repro.features.fast."""

import numpy as np
import pytest

from repro.features.fast import CIRCLE_OFFSETS, FastConfig, Keypoints, detect_fast


def blank(size=40):
    return np.zeros((size, size))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(threshold=0.0),
        dict(arc_length=0),
        dict(arc_length=17),
        dict(nms_radius=-1),
        dict(max_keypoints=-5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FastConfig(**kwargs)


class TestCircle:
    def test_sixteen_offsets(self):
        assert len(CIRCLE_OFFSETS) == 16
        assert len(set(CIRCLE_OFFSETS)) == 16

    def test_radius_three(self):
        for dr, dc in CIRCLE_OFFSETS:
            assert 2.8 <= np.hypot(dr, dc) <= 3.2


class TestDetection:
    def test_empty_image_no_keypoints(self):
        assert len(detect_fast(blank())) == 0

    def test_isolated_bright_point_detected(self):
        img = blank()
        img[20, 20] = 5.0
        kp = detect_fast(img, FastConfig(threshold=0.5))
        assert len(kp) == 1
        np.testing.assert_allclose(kp.xy[0], [20, 20])

    def test_bright_line_yields_endpoint_keypoints(self):
        # FAST-9 on a thin line: interior pixels have their darker arc
        # interrupted by the line itself (max run 7 < 9), so detections
        # cluster at the line ends — still keypoints ON the structure,
        # which is what BV matching needs.
        img = blank()
        img[20, 8:32] = 5.0
        kp = detect_fast(img, FastConfig(threshold=0.5, nms_radius=0))
        assert len(kp) >= 4
        assert np.all(kp.xy[:, 1] == 20)
        cols = kp.xy[:, 0]
        assert cols.min() <= 10 and cols.max() >= 29

    def test_uniform_bright_region_interior_not_corner(self):
        img = blank()
        img[10:30, 10:30] = 5.0
        kp = detect_fast(img, FastConfig(threshold=0.5, nms_radius=0))
        # Interior pixels (circle entirely inside the region) are not
        # corners; all detections hug the boundary.
        for col, row in kp.xy:
            assert (row < 14 or row > 25 or col < 14 or col > 25)

    def test_threshold_controls_sensitivity(self):
        img = blank()
        img[20, 20] = 0.3
        assert len(detect_fast(img, FastConfig(threshold=0.5))) == 0
        assert len(detect_fast(img, FastConfig(threshold=0.2))) == 1

    def test_border_suppressed(self):
        img = blank()
        img[1, 1] = 5.0  # inside the 3-pixel border
        assert len(detect_fast(img, FastConfig(threshold=0.5))) == 0

    def test_max_keypoints_cap(self, rng):
        img = rng.random((60, 60)) * 5
        kp = detect_fast(img, FastConfig(threshold=0.1, max_keypoints=10))
        assert len(kp) <= 10

    def test_scores_sorted_descending(self, rng):
        img = rng.random((60, 60)) * 5
        kp = detect_fast(img, FastConfig(threshold=0.2))
        assert np.all(np.diff(kp.scores) <= 0)

    def test_nms_reduces_count(self):
        img = blank()
        img[20, 8:32] = 5.0
        img[21, 8:32] = 4.0
        dense = detect_fast(img, FastConfig(threshold=0.5, nms_radius=0))
        sparse = detect_fast(img, FastConfig(threshold=0.5, nms_radius=2))
        assert len(sparse) < len(dense)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            detect_fast(np.zeros((4, 4, 3)))

    def test_tiny_image_empty(self):
        assert len(detect_fast(np.zeros((5, 5)))) == 0

    def test_translation_equivariance(self):
        img1 = blank(50)
        img1[20, 15:25] = 3.0
        img2 = np.roll(img1, (5, 7), axis=(0, 1))
        kp1 = detect_fast(img1, FastConfig(threshold=0.5))
        kp2 = detect_fast(img2, FastConfig(threshold=0.5))
        shifted = kp1.xy + [7, 5]
        assert {tuple(p) for p in shifted} == {tuple(p) for p in kp2.xy}


class TestKeypoints:
    def test_empty(self):
        kp = Keypoints.empty()
        assert len(kp) == 0
