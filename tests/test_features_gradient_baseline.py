"""Tests for the SIFT-like gradient baseline (the paper's negative
result: classic intensity features fail on sparse BV images)."""

import numpy as np

from repro.bev.projection import height_map
from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.features.descriptors import BvftConfig
from repro.features.fast import FastConfig, detect_fast
from repro.features.gradient_baseline import GradientDescriptorExtractor
from repro.features.matching import match_descriptors
from repro.geometry.ransac import ransac_rigid_2d


class TestGradientDescriptors:
    def test_produces_normalized_descriptors(self, frame_pair):
        bv = height_map(frame_pair.ego_cloud, 0.8, 76.8)
        kp = detect_fast(bv.image, FastConfig(threshold=0.2))
        descs = GradientDescriptorExtractor(
            BvftConfig(patch_size=48, grid_size=6)).compute(bv.image, kp)
        assert len(descs) > 0
        norms = np.linalg.norm(descs.descriptors, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_runs_as_drop_in_comparison(self, frame_pair, bv_matcher,
                                        pair_features):
        """The baseline is a drop-in replacement for the BVFT extractor:
        same interfaces, feeds the same matcher and RANSAC.  (On the
        simulated substrate it does not fully fail the way the paper saw
        on real data — documented in EXPERIMENTS.md — so this test checks
        the plumbing and that BVFT stays competitive, not collapse.)"""
        ego_feat, other_feat = pair_features
        bvft_match = bv_matcher.match(other_feat, ego_feat)
        assert bvft_match.inliers_bv >= 10  # BVFT healthy on this pair

        grad = GradientDescriptorExtractor(
            BvftConfig(patch_size=48, grid_size=6))
        cfg = FastConfig(threshold=0.2)
        bv_e = bv_matcher.make_bv_image(frame_pair.ego_cloud)
        bv_o = bv_matcher.make_bv_image(frame_pair.other_cloud)
        d_e = grad.compute(bv_e.image, detect_fast(bv_e.image, cfg))
        d_o = grad.compute(bv_o.image, detect_fast(bv_o.image, cfg))
        matches = match_descriptors(d_o, d_e, ratio=1.0)
        assert len(matches) >= 2
        ransac = ransac_rigid_2d(matches.src_xy, matches.dst_xy,
                                 threshold=2.5, rng=0)
        assert ransac.inlier_mask.shape == (len(matches),)

    def test_empty_keypoints(self):
        from repro.features.fast import Keypoints
        descs = GradientDescriptorExtractor().compute(
            np.zeros((64, 64)), Keypoints.empty())
        assert len(descs) == 0

    def test_rejects_bad_params(self):
        import pytest
        with pytest.raises(ValueError):
            GradientDescriptorExtractor(num_bins=1)
        with pytest.raises(ValueError):
            GradientDescriptorExtractor(smoothing_sigma=-1.0)
