"""Tests for repro.features.harris."""

import numpy as np
import pytest

from repro.features.harris import HarrisConfig, detect_harris


class TestHarrisConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(sigma=0.0),
        dict(k=0.3),
        dict(relative_threshold=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HarrisConfig(**kwargs)


class TestDetectHarris:
    def test_corner_of_square_detected(self):
        image = np.zeros((48, 48))
        image[16:32, 16:32] = 5.0
        kp = detect_harris(image)
        assert len(kp) >= 4
        # Each of the four square corners has a detection within 3 px.
        for corner in [(16, 16), (16, 31), (31, 16), (31, 31)]:
            dists = np.linalg.norm(kp.xy - [corner[1], corner[0]], axis=1)
            assert dists.min() < 3.0

    def test_straight_edge_not_corner(self):
        image = np.zeros((48, 48))
        image[:, 24:] = 5.0  # pure vertical edge
        kp = detect_harris(image)
        # No strong corner response anywhere on the interior edge.
        interior = [p for p in kp.xy if 10 < p[1] < 38]
        assert len(interior) == 0

    def test_empty_image(self):
        assert len(detect_harris(np.zeros((32, 32)))) == 0

    def test_tiny_image(self):
        assert len(detect_harris(np.zeros((4, 4)))) == 0

    def test_scores_sorted(self, rng):
        image = rng.random((64, 64))
        kp = detect_harris(image, HarrisConfig(relative_threshold=0.05))
        assert np.all(np.diff(kp.scores) <= 0)

    def test_max_keypoints_cap(self, rng):
        image = rng.random((64, 64)) * 5
        kp = detect_harris(image, HarrisConfig(relative_threshold=0.001,
                                               max_keypoints=7))
        assert len(kp) <= 7

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            detect_harris(np.zeros((8, 8, 3)))


class TestDetectorDispatch:
    def test_config_rejects_unknown_detector(self):
        from repro.core.config import BBAlignConfig
        with pytest.raises(ValueError):
            BBAlignConfig(keypoint_detector="sift")

    @pytest.mark.parametrize("detector", ["fast", "harris",
                                          "phase_congruency"])
    def test_matcher_dispatches(self, detector, frame_pair):
        from repro.core.bv_matching import BVMatcher
        from repro.core.config import BBAlignConfig
        matcher = BVMatcher(BBAlignConfig(keypoint_detector=detector))
        features = matcher.extract_from_cloud(frame_pair.ego_cloud)
        # All detectors produce keypoints on a real scene.
        assert len(features.keypoints) > 0
