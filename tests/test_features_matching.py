"""Tests for repro.features.matching."""

import numpy as np
import pytest

from repro.features.descriptors import DescriptorSet
from repro.features.matching import MatchResult, match_descriptors


def make_set(vectors, positions=None):
    vectors = np.asarray(vectors, dtype=float)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    vectors = vectors / norms
    n = len(vectors)
    if positions is None:
        positions = np.arange(2 * n, dtype=float).reshape(n, 2)
    return DescriptorSet(vectors, np.asarray(positions, dtype=float),
                         np.arange(n), np.zeros(n, dtype=int))


class TestMatching:
    def test_identical_sets_match_one_to_one(self, rng):
        vectors = rng.random((10, 16))
        a, b = make_set(vectors), make_set(vectors)
        result = match_descriptors(a, b, ratio=1.0)
        assert len(result) == 10
        np.testing.assert_array_equal(result.src_indices,
                                      result.dst_indices)
        np.testing.assert_allclose(result.distances, 0.0, atol=1e-6)

    def test_permuted_sets_recover_permutation(self, rng):
        vectors = rng.random((8, 16))
        perm = rng.permutation(8)
        a = make_set(vectors)
        b = make_set(vectors[perm])
        result = match_descriptors(a, b, ratio=1.0)
        for s, d in zip(result.src_indices, result.dst_indices):
            assert perm[d] == s

    def test_empty_sets(self):
        empty = DescriptorSet.empty(16)
        assert len(match_descriptors(empty, empty)) == 0

    def test_ratio_test_prunes_ambiguous(self, rng):
        base = rng.random(16)
        # Source descriptor equidistant from two near-identical targets.
        a = make_set([base])
        b = make_set([base + 1e-3 * rng.random(16),
                      base + 1e-3 * rng.random(16)])
        strict = match_descriptors(a, b, ratio=0.5, mutual=False)
        loose = match_descriptors(a, b, ratio=1.0, mutual=False)
        assert len(strict) == 0
        assert len(loose) == 1

    def test_mutual_check(self, rng):
        # dst[0] is closest to both src rows; mutual keeps only the
        # reciprocal pair.
        v = rng.random(16)
        a = make_set([v, v + 0.01])
        b = make_set([v])
        mutual = match_descriptors(a, b, ratio=1.0, mutual=True)
        non_mutual = match_descriptors(a, b, ratio=1.0, mutual=False)
        assert len(mutual) == 1
        assert len(non_mutual) == 2

    def test_max_distance_cutoff(self, rng):
        a = make_set([[1.0] + [0.0] * 15])
        b = make_set([[0.0] * 15 + [1.0]])
        assert len(match_descriptors(a, b, ratio=1.0,
                                     max_distance=0.5)) == 0

    def test_positions_carried_through(self, rng):
        vectors = rng.random((5, 8))
        pos_a = rng.random((5, 2)) * 100
        pos_b = rng.random((5, 2)) * 100
        a = make_set(vectors, pos_a)
        b = make_set(vectors, pos_b)
        result = match_descriptors(a, b, ratio=1.0)
        np.testing.assert_allclose(result.src_xy,
                                   pos_a[result.src_indices])
        np.testing.assert_allclose(result.dst_xy,
                                   pos_b[result.dst_indices])

    def test_rejects_bad_ratio(self, rng):
        a = make_set(rng.random((3, 8)))
        with pytest.raises(ValueError):
            match_descriptors(a, a, ratio=0.0)

    def test_empty_result_type(self):
        result = MatchResult.empty()
        assert len(result) == 0
