"""Tests for repro.geometry.angles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.angles import (
    angle_difference,
    deg2rad,
    normalize_angle,
    rad2deg,
    wrap_to_pi,
)

FINITE_ANGLE = st.floats(min_value=-1e6, max_value=1e6,
                         allow_nan=False, allow_infinity=False)


class TestWrapToPi:
    def test_zero_unchanged(self):
        assert wrap_to_pi(0.0) == 0.0

    def test_pi_wraps_to_minus_pi(self):
        assert wrap_to_pi(np.pi) == pytest.approx(-np.pi)

    def test_small_angle_unchanged(self):
        assert wrap_to_pi(0.5) == pytest.approx(0.5)

    def test_full_turn_wraps_to_zero(self):
        assert wrap_to_pi(2 * np.pi) == pytest.approx(0.0, abs=1e-12)

    def test_array_input_returns_array(self):
        result = wrap_to_pi(np.array([0.0, np.pi, 3 * np.pi]))
        assert isinstance(result, np.ndarray)
        np.testing.assert_allclose(result, [0.0, -np.pi, -np.pi])

    def test_scalar_input_returns_python_float(self):
        assert isinstance(wrap_to_pi(1.0), float)

    @given(FINITE_ANGLE)
    def test_always_in_range(self, angle):
        wrapped = wrap_to_pi(angle)
        assert -np.pi <= wrapped < np.pi

    @given(FINITE_ANGLE)
    def test_wrap_preserves_angle_mod_2pi(self, angle):
        wrapped = wrap_to_pi(angle)
        assert np.isclose(np.cos(wrapped), np.cos(angle), atol=1e-6)
        assert np.isclose(np.sin(wrapped), np.sin(angle), atol=1e-6)

    def test_normalize_is_alias(self):
        assert normalize_angle(7.0) == wrap_to_pi(7.0)


class TestAngleDifference:
    def test_simple_difference(self):
        assert angle_difference(0.5, 0.2) == pytest.approx(0.3)

    def test_wraparound_difference(self):
        # 179 deg vs -179 deg are 2 deg apart, not 358.
        a, b = np.deg2rad(179), np.deg2rad(-179)
        assert abs(angle_difference(a, b)) == pytest.approx(
            np.deg2rad(2), abs=1e-9)

    @given(FINITE_ANGLE, FINITE_ANGLE)
    def test_antisymmetric_up_to_wrap(self, a, b):
        d1 = angle_difference(a, b)
        d2 = angle_difference(b, a)
        # d1 == -d2 unless both sit exactly on the -pi boundary.
        assert np.isclose(np.sin(d1), -np.sin(d2), atol=1e-6)
        assert np.isclose(np.cos(d1), np.cos(d2), atol=1e-6)


class TestConversions:
    def test_roundtrip(self):
        assert rad2deg(deg2rad(37.5)) == pytest.approx(37.5)

    def test_known_value(self):
        assert deg2rad(180.0) == pytest.approx(np.pi)
