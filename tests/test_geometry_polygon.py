"""Tests for repro.geometry.polygon."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon import (
    convex_hull,
    convex_polygon_area,
    convex_polygon_clip,
    ensure_counterclockwise,
    is_counterclockwise,
    minimum_area_rectangle,
)

UNIT_SQUARE = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)


class TestArea:
    def test_unit_square(self):
        assert convex_polygon_area(UNIT_SQUARE) == pytest.approx(1.0)

    def test_triangle(self):
        tri = np.array([[0, 0], [2, 0], [0, 2]], dtype=float)
        assert convex_polygon_area(tri) == pytest.approx(2.0)

    def test_winding_independent(self):
        assert convex_polygon_area(UNIT_SQUARE[::-1]) == pytest.approx(1.0)

    def test_degenerate(self):
        assert convex_polygon_area(np.array([[0, 0], [1, 1]])) == 0.0


class TestWinding:
    def test_ccw_detection(self):
        assert is_counterclockwise(UNIT_SQUARE)
        assert not is_counterclockwise(UNIT_SQUARE[::-1])

    def test_ensure_ccw_flips_cw(self):
        fixed = ensure_counterclockwise(UNIT_SQUARE[::-1])
        assert is_counterclockwise(fixed)


class TestClip:
    def test_identical_squares(self):
        out = convex_polygon_clip(UNIT_SQUARE, UNIT_SQUARE)
        assert convex_polygon_area(out) == pytest.approx(1.0)

    def test_half_overlap(self):
        shifted = UNIT_SQUARE + [0.5, 0.0]
        out = convex_polygon_clip(UNIT_SQUARE, shifted)
        assert convex_polygon_area(out) == pytest.approx(0.5)

    def test_no_overlap(self):
        shifted = UNIT_SQUARE + [5.0, 0.0]
        out = convex_polygon_clip(UNIT_SQUARE, shifted)
        assert convex_polygon_area(out) == 0.0

    def test_contained_polygon(self):
        small = UNIT_SQUARE * 0.5 + [0.25, 0.25]
        out = convex_polygon_clip(small, UNIT_SQUARE)
        assert convex_polygon_area(out) == pytest.approx(0.25)

    def test_rotated_square_overlap(self):
        c, s = np.cos(np.pi / 4), np.sin(np.pi / 4)
        rot = np.array([[c, -s], [s, c]])
        diamond = (UNIT_SQUARE - 0.5) @ rot.T + 0.5
        out = convex_polygon_clip(UNIT_SQUARE, diamond)
        # Octagon intersection area: 2*(sqrt(2)-1) for unit square/diamond.
        assert convex_polygon_area(out) == pytest.approx(
            2 * (np.sqrt(2) - 1), rel=1e-6)

    def test_winding_insensitive(self):
        out1 = convex_polygon_clip(UNIT_SQUARE, UNIT_SQUARE[::-1])
        out2 = convex_polygon_clip(UNIT_SQUARE[::-1], UNIT_SQUARE)
        assert convex_polygon_area(out1) == pytest.approx(1.0)
        assert convex_polygon_area(out2) == pytest.approx(1.0)

    @given(st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_intersection_area_bounded(self, dx, dy):
        shifted = UNIT_SQUARE + [dx, dy]
        area = convex_polygon_area(convex_polygon_clip(UNIT_SQUARE, shifted))
        assert -1e-9 <= area <= 1.0 + 1e-9


class TestConvexHull:
    def test_square_with_interior_points(self, rng):
        interior = rng.uniform(0.2, 0.8, (20, 2))
        pts = np.vstack([UNIT_SQUARE, interior])
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert convex_polygon_area(hull) == pytest.approx(1.0)

    def test_hull_is_ccw(self, rng):
        pts = rng.normal(0, 5, (30, 2))
        assert is_counterclockwise(convex_hull(pts))

    def test_degenerate_two_points(self):
        pts = np.array([[0, 0], [1, 1], [0, 0]], dtype=float)
        hull = convex_hull(pts)
        assert len(hull) == 2

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            convex_hull(np.zeros((3, 3)))

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_all_points_inside_hull(self, seed):
        pts = np.random.default_rng(seed).normal(0, 3, (25, 2))
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        # Every point is inside: clipping a tiny square at the point
        # against the hull keeps positive area.
        centroid = hull.mean(axis=0)
        for p in pts:
            # Point-in-convex-polygon via cross products.
            ok = True
            for i in range(len(hull)):
                a, b = hull[i], hull[(i + 1) % len(hull)]
                cross = (b[0] - a[0]) * (p[1] - a[1]) \
                    - (b[1] - a[1]) * (p[0] - a[0])
                if cross < -1e-7:
                    ok = False
                    break
            assert ok


class TestMinimumAreaRectangle:
    def test_axis_aligned_rectangle(self):
        pts = np.array([[0, 0], [4, 0], [4, 2], [0, 2], [2, 1]], dtype=float)
        center, length, width, angle = minimum_area_rectangle(pts)
        np.testing.assert_allclose(center, [2, 1], atol=1e-9)
        assert length == pytest.approx(4.0)
        assert width == pytest.approx(2.0)
        assert np.isclose(np.mod(angle, np.pi), 0.0, atol=1e-9) or \
            np.isclose(np.mod(angle, np.pi), np.pi, atol=1e-9)

    def test_rotated_rectangle(self):
        theta = 0.6
        rot = np.array([[np.cos(theta), -np.sin(theta)],
                        [np.sin(theta), np.cos(theta)]])
        base = np.array([[-2.5, -1], [2.5, -1], [2.5, 1], [-2.5, 1]],
                        dtype=float)
        pts = base @ rot.T + [10.0, -3.0]
        center, length, width, angle = minimum_area_rectangle(pts)
        np.testing.assert_allclose(center, [10.0, -3.0], atol=1e-9)
        assert length == pytest.approx(5.0)
        assert width == pytest.approx(2.0)
        assert np.mod(angle, np.pi) == pytest.approx(theta, abs=1e-9)

    def test_length_is_major_axis(self, rng):
        pts = rng.uniform(-1, 1, (40, 2)) * [10.0, 1.0]
        _, length, width, _ = minimum_area_rectangle(pts)
        assert length >= width

    def test_single_point(self):
        center, length, width, _ = minimum_area_rectangle(
            np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(center, [3.0, 4.0])
        assert length == 0.0 and width == 0.0

    def test_collinear_points(self):
        pts = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], dtype=float)
        center, length, width, angle = minimum_area_rectangle(pts)
        assert width == pytest.approx(0.0, abs=1e-9)
        assert length == pytest.approx(3 * np.sqrt(2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            minimum_area_rectangle(np.empty((0, 2)))

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_rectangle_contains_all_points(self, seed):
        pts = np.random.default_rng(seed).normal(0, 4, (15, 2))
        center, length, width, angle = minimum_area_rectangle(pts)
        c, s = np.cos(-angle), np.sin(-angle)
        local = (pts - center) @ np.array([[c, -s], [s, c]]).T
        assert np.all(np.abs(local[:, 0]) <= length / 2 + 1e-7)
        assert np.all(np.abs(local[:, 1]) <= width / 2 + 1e-7)
