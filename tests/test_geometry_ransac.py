"""Tests for repro.geometry.ransac."""

import numpy as np
import pytest

from repro.geometry.ransac import ransac_rigid_2d
from repro.geometry.se2 import SE2


def make_correspondences(rng, gt, n_inliers=30, n_outliers=0, noise=0.0):
    src = rng.uniform(-30, 30, (n_inliers + n_outliers, 2))
    dst = gt.apply(src)
    if noise:
        dst += rng.normal(0, noise, dst.shape)
    if n_outliers:
        dst[n_inliers:] = rng.uniform(-30, 30, (n_outliers, 2))
    return src, dst


class TestRansacCleanData:
    def test_exact_recovery(self, rng):
        gt = SE2(0.6, 4.0, -1.0)
        src, dst = make_correspondences(rng, gt)
        result = ransac_rigid_2d(src, dst, threshold=0.5, rng=rng)
        assert result.success
        assert result.num_inliers == 30
        assert result.transform.is_close(gt, atol_translation=1e-6,
                                         atol_rotation=1e-8)

    def test_rmse_reported(self, rng):
        gt = SE2(0.1, 1.0, 1.0)
        src, dst = make_correspondences(rng, gt, noise=0.05)
        result = ransac_rigid_2d(src, dst, threshold=0.5, rng=rng)
        assert result.success
        assert 0.0 < result.rmse < 0.15


class TestRansacOutliers:
    @pytest.mark.parametrize("n_outliers", [10, 30, 60])
    def test_robust_to_outliers(self, rng, n_outliers):
        gt = SE2(-0.9, 2.0, 7.0)
        src, dst = make_correspondences(rng, gt, n_inliers=30,
                                        n_outliers=n_outliers, noise=0.02)
        result = ransac_rigid_2d(src, dst, threshold=0.3, rng=rng)
        assert result.success
        assert result.transform.translation_distance(gt) < 0.1
        # Inlier mask should capture (at least most of) the true inliers.
        assert result.inlier_mask[:30].sum() >= 25

    def test_inlier_mask_aligned_with_inputs(self, rng):
        gt = SE2(0.0, 5.0, 0.0)
        src, dst = make_correspondences(rng, gt, n_inliers=20,
                                        n_outliers=5)
        result = ransac_rigid_2d(src, dst, threshold=0.2, rng=rng)
        assert result.inlier_mask.shape == (25,)
        assert result.num_inliers == int(result.inlier_mask.sum())


class TestRansacEdgeCases:
    def test_too_few_points_fails_gracefully(self, rng):
        result = ransac_rigid_2d(np.zeros((1, 2)), np.zeros((1, 2)),
                                 threshold=1.0, rng=rng)
        assert not result.success
        assert result.num_inliers == 0

    def test_empty_input(self, rng):
        result = ransac_rigid_2d(np.empty((0, 2)), np.empty((0, 2)),
                                 threshold=1.0, rng=rng)
        assert not result.success

    def test_all_outliers_fails(self, rng):
        src = rng.uniform(-10, 10, (20, 2))
        dst = rng.uniform(-10, 10, (20, 2))
        result = ransac_rigid_2d(src, dst, threshold=0.01,
                                 min_inliers=5, rng=rng)
        # Random pairings should not yield 5 points agreeing to 1 cm.
        assert not result.success or result.num_inliers < 8

    def test_coincident_points_skipped(self, rng):
        # Degenerate samples (duplicate source points) must not crash.
        src = np.zeros((10, 2))
        src[5:] = [[1, 1]] * 5
        dst = src + [2.0, 0.0]
        result = ransac_rigid_2d(src, dst, threshold=0.5, rng=rng)
        assert result.success
        assert result.transform.translation_distance(SE2(0, 2, 0)) < 1e-6

    def test_rejects_bad_threshold(self, rng):
        with pytest.raises(ValueError):
            ransac_rigid_2d(np.zeros((5, 2)), np.zeros((5, 2)),
                            threshold=0.0, rng=rng)

    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            ransac_rigid_2d(np.zeros((5, 2)), np.zeros((4, 2)), rng=rng)

    def test_rejects_min_inliers_below_two(self, rng):
        with pytest.raises(ValueError):
            ransac_rigid_2d(np.zeros((5, 2)), np.zeros((5, 2)),
                            min_inliers=1, rng=rng)

    def test_deterministic_with_seed(self):
        rng_data = np.random.default_rng(0)
        gt = SE2(0.5, 1.0, 1.0)
        src, dst = make_correspondences(rng_data, gt, n_inliers=15,
                                        n_outliers=15)
        r1 = ransac_rigid_2d(src, dst, threshold=0.3, rng=42)
        r2 = ransac_rigid_2d(src, dst, threshold=0.3, rng=42)
        assert r1.transform.is_close(r2.transform)
        assert r1.num_inliers == r2.num_inliers
