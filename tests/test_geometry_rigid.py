"""Tests for repro.geometry.rigid (Kabsch / Umeyama)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rigid import kabsch_2d, kabsch_3d, umeyama_2d
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3


def random_points(rng, n=10, dim=2, spread=20.0):
    return rng.uniform(-spread, spread, (n, dim))


class TestKabsch2D:
    def test_exact_recovery(self, rng):
        gt = SE2(0.8, 3.0, -2.0)
        src = random_points(rng)
        est = kabsch_2d(src, gt.apply(src))
        assert est.is_close(gt, atol_translation=1e-9, atol_rotation=1e-9)

    @given(st.floats(-3, 3), st.floats(-50, 50), st.floats(-50, 50),
           st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_exact_recovery_property(self, theta, tx, ty, seed):
        gt = SE2(theta, tx, ty)
        src = random_points(np.random.default_rng(seed), n=6)
        est = kabsch_2d(src, gt.apply(src))
        assert est.translation_distance(gt) < 1e-6
        assert est.rotation_distance(gt) < 1e-8

    def test_noisy_recovery_is_least_squares(self, rng):
        gt = SE2(0.3, 1.0, 1.0)
        src = random_points(rng, n=200)
        dst = gt.apply(src) + rng.normal(0, 0.05, src.shape)
        est = kabsch_2d(src, dst)
        assert est.translation_distance(gt) < 0.05
        assert est.rotation_distance(gt) < 0.01

    def test_weights_select_subset(self, rng):
        gt = SE2(0.5, 2.0, 0.0)
        src = random_points(rng, n=8)
        dst = gt.apply(src)
        dst[0] += 100.0  # gross outlier
        weights = np.ones(8)
        weights[0] = 0.0
        est = kabsch_2d(src, dst, weights)
        assert est.is_close(gt, atol_translation=1e-9, atol_rotation=1e-9)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            kabsch_2d(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_negative_weights(self, rng):
        src = random_points(rng, n=3)
        with pytest.raises(ValueError):
            kabsch_2d(src, src, weights=np.array([1.0, -1.0, 1.0]))

    def test_rejects_all_zero_weights(self, rng):
        src = random_points(rng, n=3)
        with pytest.raises(ValueError):
            kabsch_2d(src, src, weights=np.zeros(3))

    def test_single_point_gives_pure_translation(self):
        est = kabsch_2d(np.array([[1.0, 1.0]]), np.array([[4.0, 5.0]]))
        assert est.theta == pytest.approx(0.0)
        np.testing.assert_allclose(est.apply([1.0, 1.0]), [4.0, 5.0])

    def test_no_reflection(self, rng):
        # Mirrored destinations must still produce det(R) = +1.
        src = random_points(rng, n=12)
        dst = src.copy()
        dst[:, 0] *= -1.0
        est = kabsch_2d(src, dst)
        assert np.linalg.det(est.rotation) == pytest.approx(1.0)


class TestUmeyama2D:
    def test_without_scale_matches_kabsch(self, rng):
        gt = SE2(0.4, 1.0, 2.0)
        src = random_points(rng, n=15)
        dst = gt.apply(src)
        est, scale = umeyama_2d(src, dst, with_scale=False)
        assert scale == 1.0
        assert est.is_close(gt, atol_translation=1e-8, atol_rotation=1e-9)

    def test_recovers_scale(self, rng):
        gt = SE2(0.2, -1.0, 3.0)
        true_scale = 2.5
        src = random_points(rng, n=15)
        dst = gt.apply(true_scale * src)
        est, scale = umeyama_2d(src, dst, with_scale=True)
        assert scale == pytest.approx(true_scale, rel=1e-9)

    def test_degenerate_source_raises(self):
        same = np.ones((4, 2))
        with pytest.raises(ValueError):
            umeyama_2d(same, same, with_scale=True)


class TestKabsch3D:
    def test_exact_recovery(self, rng):
        gt = SE3.from_euler(0.5, 0.2, -0.1, (1.0, 2.0, 3.0))
        src = random_points(rng, n=10, dim=3)
        est = kabsch_3d(src, gt.apply(src))
        np.testing.assert_allclose(est.matrix, gt.matrix, atol=1e-9)

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            kabsch_3d(np.zeros((2, 3)), np.zeros((2, 3)))
