"""Tests for repro.geometry.se2."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.se2 import SE2, rotation_matrix_2d

ANGLES = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
COORDS = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
TRANSFORMS = st.builds(SE2, ANGLES, COORDS, COORDS)


class TestRotationMatrix:
    def test_identity_at_zero(self):
        np.testing.assert_allclose(rotation_matrix_2d(0.0), np.eye(2))

    def test_quarter_turn(self):
        rot = rotation_matrix_2d(np.pi / 2)
        np.testing.assert_allclose(rot @ [1, 0], [0, 1], atol=1e-12)

    @given(ANGLES)
    def test_orthonormal(self, theta):
        rot = rotation_matrix_2d(theta)
        np.testing.assert_allclose(rot @ rot.T, np.eye(2), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)


class TestSE2Basics:
    def test_theta_wrapped_on_construction(self):
        t = SE2(3 * np.pi, 0, 0)
        assert -np.pi <= t.theta < np.pi

    def test_identity(self):
        ident = SE2.identity()
        pt = np.array([3.0, -2.0])
        np.testing.assert_allclose(ident.apply(pt), pt)

    def test_apply_known_transform(self):
        t = SE2(np.pi / 2, 1.0, 2.0)
        np.testing.assert_allclose(t.apply([1.0, 0.0]), [1.0, 3.0],
                                   atol=1e-12)

    def test_apply_batch_shape(self):
        t = SE2(0.3, 1, 2)
        pts = np.zeros((5, 2))
        assert t.apply(pts).shape == (5, 2)

    def test_apply_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SE2.identity().apply(np.zeros((4, 3)))

    def test_matrix_roundtrip(self):
        t = SE2(0.7, -3.0, 4.5)
        again = SE2.from_matrix(t.matrix)
        assert t.is_close(again)

    def test_from_matrix_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SE2.from_matrix(np.eye(4))

    def test_apply_angle(self):
        t = SE2(np.pi / 4, 0, 0)
        assert t.apply_angle(np.pi / 4) == pytest.approx(np.pi / 2)


class TestSE2Algebra:
    @given(TRANSFORMS, TRANSFORMS)
    def test_compose_matches_matrix_product(self, a, b):
        composed = a @ b
        np.testing.assert_allclose(composed.matrix, a.matrix @ b.matrix,
                                   atol=1e-9)

    @given(TRANSFORMS)
    def test_inverse_cancels(self, t):
        assert (t @ t.inverse()).is_close(SE2.identity(),
                                          atol_translation=1e-6)
        assert (t.inverse() @ t).is_close(SE2.identity(),
                                          atol_translation=1e-6)

    @given(TRANSFORMS, st.lists(st.tuples(COORDS, COORDS),
                                min_size=1, max_size=5))
    def test_compose_then_apply_equals_apply_twice(self, t, pts):
        a = t
        b = SE2(0.4, 1.0, -2.0)
        pts = np.asarray(pts, dtype=float)
        lhs = (a @ b).apply(pts)
        rhs = a.apply(b.apply(pts))
        np.testing.assert_allclose(lhs, rhs, atol=1e-6)

    @given(TRANSFORMS)
    def test_apply_preserves_distances(self, t):
        p, q = np.array([1.0, 2.0]), np.array([-4.0, 0.5])
        before = np.linalg.norm(p - q)
        after = np.linalg.norm(t.apply(p) - t.apply(q))
        assert after == pytest.approx(before, rel=1e-9)

    def test_translation_and_rotation_distance(self):
        a = SE2(0.0, 0.0, 0.0)
        b = SE2(np.deg2rad(10), 3.0, 4.0)
        assert a.translation_distance(b) == pytest.approx(5.0)
        assert a.rotation_distance(b) == pytest.approx(np.deg2rad(10))
