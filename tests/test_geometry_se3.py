"""Tests for repro.geometry.se3 (paper Eq. 1-3)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3, rotation_matrix_zyx

ANGLES = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


class TestRotationMatrixZyx:
    def test_identity(self):
        np.testing.assert_allclose(rotation_matrix_zyx(0, 0, 0), np.eye(3))

    def test_pure_yaw(self):
        rot = rotation_matrix_zyx(np.pi / 2)
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_pure_pitch_tips_x_down(self):
        rot = rotation_matrix_zyx(0.0, np.pi / 2, 0.0)
        np.testing.assert_allclose(rot @ [1, 0, 0], [0, 0, -1], atol=1e-12)

    def test_pure_roll(self):
        rot = rotation_matrix_zyx(0.0, 0.0, np.pi / 2)
        np.testing.assert_allclose(rot @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    @given(ANGLES, ANGLES, ANGLES)
    def test_always_proper_rotation(self, a, b, g):
        rot = rotation_matrix_zyx(a, b, g)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_matches_paper_eq2_corner_terms(self):
        # Spot-check the printed Eq. (2) entries for a generic triple.
        a, b, g = 0.3, -0.4, 0.7
        rot = rotation_matrix_zyx(a, b, g)
        assert rot[0, 0] == pytest.approx(np.cos(a) * np.cos(b))
        assert rot[2, 0] == pytest.approx(-np.sin(b))
        assert rot[2, 1] == pytest.approx(np.cos(b) * np.sin(g))
        assert rot[2, 2] == pytest.approx(np.cos(b) * np.cos(g))
        assert rot[0, 1] == pytest.approx(
            np.cos(a) * np.sin(b) * np.sin(g) - np.sin(a) * np.cos(g))


class TestSE3:
    def test_rejects_non_4x4(self):
        with pytest.raises(ValueError):
            SE3(np.eye(3))

    def test_from_se2_lift_matches_eq1(self):
        planar = SE2(0.5, 2.0, -1.0)
        lifted = SE3.from_se2(planar, tz=1.5)
        assert lifted.yaw == pytest.approx(0.5)
        np.testing.assert_allclose(lifted.translation, [2.0, -1.0, 1.5])

    def test_lift_then_project_roundtrip(self):
        planar = SE2(-1.2, 5.0, 3.0)
        assert SE3.from_se2(planar).to_se2().is_close(planar)

    def test_apply_matches_eq3_homogeneous_form(self):
        t = SE3.from_euler(0.4, 0.1, -0.2, (1.0, 2.0, 3.0))
        point = np.array([4.0, -5.0, 6.0])
        homogeneous = np.append(point, 1.0)
        expected = (t.matrix @ homogeneous)[:3]
        np.testing.assert_allclose(t.apply(point), expected, atol=1e-12)

    def test_apply_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SE3.identity().apply(np.zeros((3, 2)))

    def test_inverse_cancels(self):
        t = SE3.from_euler(0.9, 0.05, -0.03, (10.0, -4.0, 1.0))
        np.testing.assert_allclose((t @ t.inverse()).matrix, np.eye(4),
                                   atol=1e-9)

    def test_compose_associative_with_apply(self):
        a = SE3.from_euler(0.2, 0, 0, (1, 0, 0))
        b = SE3.from_euler(-0.7, 0, 0, (0, 2, 0))
        pts = np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]])
        np.testing.assert_allclose((a @ b).apply(pts),
                                   a.apply(b.apply(pts)), atol=1e-9)

    def test_matrix_is_read_only(self):
        t = SE3.identity()
        with pytest.raises(ValueError):
            t.matrix[0, 0] = 5.0

    def test_planar_consistency_with_se2(self):
        # Lifting an SE2 and applying to z=0 points matches SE2.apply.
        planar = SE2(0.8, -2.0, 3.0)
        lifted = SE3.from_se2(planar)
        pts2 = np.array([[1.0, 1.0], [-3.0, 2.0]])
        pts3 = np.column_stack([pts2, np.zeros(2)])
        np.testing.assert_allclose(lifted.apply(pts3)[:, :2],
                                   planar.apply(pts2), atol=1e-12)
