"""Tests for repro.metrics.aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.aggregation import (
    Cdf,
    bin_by,
    boxplot_stats,
    percentile_summary,
)

SAMPLES = st.lists(st.floats(min_value=-100, max_value=100,
                             allow_nan=False), min_size=1, max_size=50)


class TestCdf:
    def test_fraction_below(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_below(0.0) == 0.0
        assert cdf.fraction_below(10.0) == 1.0

    def test_inclusive_at_sample(self):
        cdf = Cdf.from_samples([1.0, 2.0])
        assert cdf.fraction_below(1.0) == pytest.approx(0.5)

    def test_value_at_quantile(self):
        cdf = Cdf.from_samples([10.0, 20.0, 30.0, 40.0])
        assert cdf.value_at(0.5) == 20.0
        assert cdf.value_at(1.0) == 40.0

    def test_value_at_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([1.0]).value_at(0.0)

    def test_empty(self):
        cdf = Cdf.from_samples([])
        assert np.isnan(cdf.fraction_below(1.0))
        assert np.isnan(cdf.value_at(0.5))

    def test_sample_at_grid(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(cdf.sample_at([0.0, 2.0, 5.0]),
                                   [0.0, 0.5, 1.0])

    @given(SAMPLES)
    @settings(max_examples=40, deadline=None)
    def test_monotone_nondecreasing(self, samples):
        cdf = Cdf.from_samples(samples)
        grid = np.linspace(min(samples) - 1, max(samples) + 1, 20)
        values = cdf.sample_at(grid)
        assert np.all(np.diff(values) >= 0)

    @given(SAMPLES)
    @settings(max_examples=40, deadline=None)
    def test_quantile_inverse_consistency(self, samples):
        cdf = Cdf.from_samples(samples)
        for fraction in (0.25, 0.5, 0.75, 1.0):
            value = cdf.value_at(fraction)
            assert cdf.fraction_below(value) >= fraction - 1e-9


class TestPercentiles:
    def test_known_values(self):
        data = np.arange(1, 101)
        summary = percentile_summary(data)
        assert summary[50] == pytest.approx(50.5)
        assert summary[10] == pytest.approx(10.9)

    def test_empty_gives_nan(self):
        summary = percentile_summary([])
        assert all(np.isnan(v) for v in summary.values())

    def test_boxplot_stats_structure(self):
        stats = boxplot_stats([1.0, 2.0, 3.0])
        assert set(stats) == {"whisker_low", "q1", "median", "q3",
                              "whisker_high", "count"}
        assert stats["count"] == 3
        assert stats["whisker_low"] <= stats["median"] \
            <= stats["whisker_high"]


class TestBinBy:
    def test_partition(self):
        values = np.array([10, 20, 30, 40])
        keys = np.array([1.0, 5.0, 5.5, 9.0])
        bins = bin_by(values, keys, [0, 5, 10])
        np.testing.assert_array_equal(bins[(0.0, 5.0)], [10])
        np.testing.assert_array_equal(bins[(5.0, 10.0)], [20, 30, 40])

    def test_half_open_intervals(self):
        bins = bin_by(np.array([1]), np.array([5.0]), [0, 5, 10])
        assert len(bins[(0.0, 5.0)]) == 0
        assert len(bins[(5.0, 10.0)]) == 1

    def test_out_of_range_dropped(self):
        bins = bin_by(np.array([1, 2]), np.array([-5.0, 100.0]), [0, 10])
        assert len(bins[(0.0, 10.0)]) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            bin_by(np.array([1]), np.array([1.0, 2.0]), [0, 1])
        with pytest.raises(ValueError):
            bin_by(np.array([1]), np.array([1.0]), [5, 1])
