"""Tests for repro.metrics.average_precision."""

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.metrics.average_precision import average_precision, match_detections


def car(x, y):
    return Box2D(x, y, 4.5, 1.9, 0.0)


class TestMatchDetections:
    def test_perfect_matches(self):
        gts = [car(0, 0), car(20, 0)]
        dets = [car(0.1, 0), car(20.1, 0)]
        tp = match_detections(dets, [0.9, 0.8], gts, iou_threshold=0.5)
        assert tp.all()

    def test_each_gt_claimed_once(self):
        gts = [car(0, 0)]
        dets = [car(0.05, 0), car(0.1, 0)]
        tp = match_detections(dets, [0.9, 0.8], gts, 0.5)
        assert tp.sum() == 1
        assert tp[0]  # higher confidence wins

    def test_low_iou_not_matched(self):
        tp = match_detections([car(10, 10)], [0.9], [car(0, 0)], 0.5)
        assert not tp.any()

    def test_empty_inputs(self):
        assert match_detections([], [], [car(0, 0)], 0.5).shape == (0,)
        assert not match_detections([car(0, 0)], [0.5], [], 0.5).any()

    def test_rejects_mismatched_scores(self):
        with pytest.raises(ValueError):
            match_detections([car(0, 0)], [0.5, 0.6], [], 0.5)


class TestAveragePrecision:
    def test_perfect_detector_ap_one(self):
        frames = [([car(0, 0), car(20, 0)], np.array([0.9, 0.8]),
                   [car(0, 0), car(20, 0)])]
        result = average_precision(frames, 0.5)
        assert result.ap == pytest.approx(1.0)

    def test_no_detections_ap_zero(self):
        frames = [([], np.array([]), [car(0, 0)])]
        assert average_precision(frames, 0.5).ap == 0.0

    def test_no_ground_truth_ap_nan(self):
        frames = [([car(0, 0)], np.array([0.9]), [])]
        assert np.isnan(average_precision(frames, 0.5).ap)

    def test_false_positives_reduce_ap(self):
        clean = [([car(0, 0)], np.array([0.9]), [car(0, 0)])]
        with_fp = [([car(0, 0), car(50, 50)], np.array([0.5, 0.9]),
                    [car(0, 0)])]
        assert average_precision(with_fp, 0.5).ap \
            < average_precision(clean, 0.5).ap

    def test_missed_gt_reduces_ap(self):
        frames = [([car(0, 0)], np.array([0.9]),
                   [car(0, 0), car(30, 0)])]
        result = average_precision(frames, 0.5)
        assert result.ap == pytest.approx(0.5)

    def test_confidence_ranking_matters(self):
        # TP ranked above FP scores better than the reverse.
        gts = [car(0, 0)]
        good = [([car(0, 0), car(50, 0)], np.array([0.9, 0.1]), gts)]
        bad = [([car(0, 0), car(50, 0)], np.array([0.1, 0.9]), gts)]
        assert average_precision(good, 0.5).ap \
            > average_precision(bad, 0.5).ap

    def test_pooling_across_frames(self):
        frames = [
            ([car(0, 0)], np.array([0.9]), [car(0, 0)]),
            ([], np.array([]), [car(0, 0)]),
        ]
        result = average_precision(frames, 0.5)
        assert result.num_ground_truth == 2
        assert result.ap == pytest.approx(0.5)

    def test_monotone_in_iou_threshold(self):
        frames = [([car(0.8, 0.3)], np.array([0.9]), [car(0, 0)])]
        ap_50 = average_precision(frames, 0.5).ap
        ap_70 = average_precision(frames, 0.7).ap
        assert ap_70 <= ap_50

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            average_precision([], iou_threshold=0.0)

    def test_ap_percent(self):
        frames = [([car(0, 0)], np.array([0.9]), [car(0, 0)])]
        assert average_precision(frames, 0.5).ap_percent == pytest.approx(100.0)
