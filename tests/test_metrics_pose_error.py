"""Tests for repro.metrics.pose_error."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.metrics.pose_error import pose_errors


class TestPoseErrors:
    def test_zero_error(self):
        t = SE2(0.5, 1.0, 2.0)
        errors = pose_errors(t, t)
        assert errors.translation == 0.0
        assert errors.rotation_deg == 0.0

    def test_known_errors(self):
        gt = SE2(0.0, 0.0, 0.0)
        est = SE2(np.deg2rad(2.0), 3.0, 4.0)
        errors = pose_errors(est, gt)
        assert errors.translation == pytest.approx(5.0)
        assert errors.rotation_deg == pytest.approx(2.0)

    def test_rotation_wraps(self):
        gt = SE2(np.deg2rad(179.0), 0, 0)
        est = SE2(np.deg2rad(-179.0), 0, 0)
        assert pose_errors(est, gt).rotation_deg == pytest.approx(2.0)

    def test_within_headline_criterion(self):
        gt = SE2(0, 0, 0)
        good = pose_errors(SE2(np.deg2rad(0.5), 0.3, 0.4), gt)
        bad_t = pose_errors(SE2(0.0, 1.5, 0.0), gt)
        bad_r = pose_errors(SE2(np.deg2rad(1.5), 0.0, 0.0), gt)
        assert good.within()
        assert not bad_t.within()
        assert not bad_r.within()
