"""Tests for repro.noise.pose_noise."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.noise.pose_noise import PoseNoiseModel, add_pose_noise


class TestPoseNoiseModel:
    def test_zero_noise_identity(self):
        model = PoseNoiseModel(sigma_translation=0.0, sigma_rotation_deg=0.0)
        pose = SE2(0.5, 1.0, 2.0)
        assert model.corrupt(pose, rng=0).is_close(pose)

    def test_noise_statistics(self):
        model = PoseNoiseModel(sigma_translation=2.0, sigma_rotation_deg=2.0)
        pose = SE2(0.0, 0.0, 0.0)
        rng = np.random.default_rng(0)
        xs = np.array([model.corrupt(pose, rng).tx for _ in range(500)])
        assert abs(xs.mean()) < 0.3
        assert xs.std() == pytest.approx(2.0, rel=0.2)

    def test_failure_mode(self):
        model = PoseNoiseModel(sigma_translation=0.0,
                               sigma_rotation_deg=0.0,
                               failure_prob=1.0, failure_radius=50.0)
        pose = SE2(0.0, 0.0, 0.0)
        corrupted = model.corrupt(pose, rng=1)
        assert pose.translation_distance(corrupted) <= 50.0
        # With prob 1 the pose is resampled; yaw is arbitrary.

    def test_validation(self):
        with pytest.raises(ValueError):
            PoseNoiseModel(sigma_translation=-1.0)
        with pytest.raises(ValueError):
            PoseNoiseModel(failure_prob=1.5)

    def test_deterministic_with_seed(self):
        model = PoseNoiseModel()
        pose = SE2(0.2, 3.0, -1.0)
        assert model.corrupt(pose, rng=9).is_close(model.corrupt(pose, rng=9))


class TestAddPoseNoise:
    def test_one_shot_helper(self):
        pose = SE2(0.0, 0.0, 0.0)
        noisy = add_pose_noise(pose, 2.0, 2.0, rng=3)
        assert pose.translation_distance(noisy) > 0.0
        assert pose.translation_distance(noisy) < 15.0
