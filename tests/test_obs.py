"""Tests for the observability layer (repro.obs) and its integration
with the sweep engine: registry merge semantics, span nesting (in one
process and across the pool boundary), trace export, chunk-keyed
telemetry dedupe, and the byte-identical traced-vs-untraced contract.
"""

import dataclasses
import json
import os
import signal

import pytest

from repro.experiments.common import (
    PairOutcome,
    default_dataset,
    run_pose_recovery_sweep,
)
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlExporter,
    MetricsRegistry,
    collect_spans,
    counter,
    gauge,
    histogram,
    span,
    trace_session,
    use_registry,
)
from repro.runtime.engine import run_sweep_parallel, shutdown_pool
from repro.runtime.faults import WorkerFault
from repro.runtime.timings import SweepTimings, collect_timings, stage
from repro.simulation.dataset import DatasetConfig


@pytest.fixture(autouse=True)
def fresh_pool():
    shutdown_pool()
    yield
    shutdown_pool()


@dataclasses.dataclass(frozen=True)
class DoubleKillFault:
    """Kills the worker evaluating ``index`` twice (first pool attempt
    and the retry pool), never the parent — forcing a chunk all the way
    down to the in-process serial fallback.  Same claim-by-sentinel
    protocol as :class:`WorkerFault`, with a two-firing budget.
    """

    index: int
    once_dir: str
    parent_pid: int

    def maybe_fire(self, index):
        if index != self.index or os.getpid() == self.parent_pid:
            return
        for firing in range(2):
            sentinel = os.path.join(self.once_dir, f"kill-{firing}.fired")
            try:
                with open(sentinel, "x"):
                    pass
            except FileExistsError:
                continue
            os.kill(os.getpid(), signal.SIGKILL)


class TestRegistry:
    def test_counter_and_histogram_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.histogram("h").observe(2.0)
        registry.histogram("h").observe(1.0)
        assert registry.counter("a").value == 5
        h = registry.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (2, 3.0, 1.0, 2.0)
        assert h.mean == pytest.approx(1.5)

    def test_snapshot_roundtrip_and_merge(self):
        source = MetricsRegistry()
        source.counter("c").inc(3)
        source.histogram("h").observe(1.5)
        snapshot = source.snapshot()
        # Snapshots must survive the pickle-ish JSON boundary the chunk
        # protocol implies.
        snapshot = json.loads(json.dumps(snapshot))
        target = MetricsRegistry()
        target.merge_snapshot(snapshot)
        target.merge_snapshot(snapshot)
        assert target.counter("c").value == 6
        assert target.histogram("h").count == 2
        target.merge_snapshot(snapshot, sign=-1)
        assert target.counter("c").value == 3
        assert target.histogram("h").count == 1

    def test_empty_histogram_serializes_min_max_as_none(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        data = registry.snapshot()["histograms"]["h"]
        assert data["min"] is None and data["max"] is None

    def test_module_helpers_are_noop_without_registry(self):
        counter("nowhere").inc()
        histogram("nowhere").observe(1.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            counter("somewhere").inc()
        assert "nowhere" not in registry.counters
        assert registry.counter("somewhere").value == 1

    def test_noop_instruments_allocate_nothing(self):
        assert counter("a") is counter("b")
        assert histogram("a") is histogram("b")
        assert gauge("a") is gauge("b")


class TestGauge:
    def test_level_tracking_and_high_water(self):
        g = Gauge("depth")
        g.set(3)
        g.inc(2)
        g.dec(4)
        assert g.value == 1.0
        assert g.high_water == 5.0
        g.set(0)
        assert g.high_water == 5.0  # the mark never shrinks

    def test_merge_adds_levels_and_widens_high_water(self):
        """Gauges partitioned across contributors merge additively:
        two workers each holding 3 in-flight requests total 6."""
        source = MetricsRegistry()
        source.gauge("in_flight").set(3)
        target = MetricsRegistry()
        target.gauge("in_flight").set(3)
        snapshot = json.loads(json.dumps(source.snapshot()))
        target.merge_snapshot(snapshot)
        assert target.gauge("in_flight").value == 6.0
        assert target.gauge("in_flight").high_water == 6.0

    def test_unmerge_restores_the_level_not_the_mark(self):
        """sign=-1 un-merge is exact for the level (the chunk-keyed
        dedupe contract) while the high-water mark survives — a retried
        chunk's peak really happened."""
        source = MetricsRegistry()
        source.gauge("queue").set(4)
        snapshot = source.snapshot()
        target = MetricsRegistry()
        target.gauge("queue").set(1)
        target.merge_snapshot(snapshot)
        assert target.gauge("queue").value == 5.0
        target.merge_snapshot(snapshot, sign=-1)
        assert target.gauge("queue").value == 1.0
        assert target.gauge("queue").high_water == 5.0
        # Re-merge (the dedupe ladder's replace step) lands back at 5.
        target.merge_snapshot(snapshot)
        assert target.gauge("queue").value == 5.0
        assert target.gauge("queue").high_water == 5.0

    def test_gauge_module_helper_uses_active_registry(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            gauge("live").set(7)
        assert registry.gauge("live").value == 7.0
        gauge("live").set(99)  # no active registry: a no-op sink
        assert registry.gauge("live").value == 7.0


class TestSpans:
    def test_span_disabled_yields_none(self):
        with span("outside") as handle:
            assert handle is None

    def test_nesting_and_parent_linkage(self):
        with collect_spans() as collector:
            with span("outer", kind="test"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        events = {event["name"]: event for event in collector.events}
        assert set(events) == {"outer", "inner", "inner2"}
        assert events["outer"]["parent_id"] is None
        assert events["inner"]["parent_id"] == events["outer"]["span_id"]
        assert events["inner2"]["parent_id"] == events["outer"]["span_id"]
        assert events["outer"]["attrs"] == {"kind": "test"}
        # Children close before parents, so they appear first.
        assert [e["name"] for e in collector.events][-1] == "outer"

    def test_root_parent_seeds_linkage(self):
        with collect_spans(root_parent="123:9") as collector:
            with span("child"):
                pass
        assert collector.events[0]["parent_id"] == "123:9"

    def test_span_observes_registry_histogram(self):
        registry = MetricsRegistry()
        with use_registry(registry), collect_spans():
            with span("timed"):
                pass
        assert registry.histogram("span/timed/seconds").count == 1

    def test_stage_records_span_and_timings(self):
        timings = SweepTimings()
        with collect_spans() as collector:
            with stage(timings, "bv_extract"):
                pass
        assert [e["name"] for e in collector.events] == ["bv_extract"]
        assert timings.stage_count("bv_extract") == 1


class TestExport:
    def test_trace_session_writes_meta_spans_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with trace_session(path, command="test", pairs=0):
            with span("hello", index=3):
                counter("things").inc()
        events = [json.loads(line) for line in path.open()]
        assert [e["type"] for e in events] == ["meta", "span", "metrics"]
        meta, span_event, metrics = events
        assert meta["schema_version"] == 1
        assert meta["command"] == "test"
        assert span_event["name"] == "hello"
        assert span_event["attrs"] == {"index": 3}
        assert span_event["wall_s"] >= 0
        assert metrics["counters"]["things"] == 1
        assert metrics["wall_s"] > 0

    def test_exporter_requires_open(self, tmp_path):
        exporter = JsonlExporter(tmp_path / "x.jsonl")
        with pytest.raises(RuntimeError):
            exporter.write({"type": "span"})


class TestSweepIntegration:
    NUM_PAIRS = 4
    DATASET = DatasetConfig(num_pairs=4, seed=31)

    def _sweep(self, **kwargs):
        kwargs.setdefault("chunk_size", 2)
        kwargs.setdefault("workers", 2)
        return run_sweep_parallel(self.DATASET, num_pairs=self.NUM_PAIRS,
                                  include_vips=False, seed=7, **kwargs)

    def test_traced_sweep_byte_identical(self):
        """The observability acceptance contract: tracing must not
        perturb a single field of a seeded sweep's outcomes."""
        dataset = default_dataset(6, seed=2024)
        plain = run_pose_recovery_sweep(dataset, include_vips=True,
                                        cache=False)
        with collect_timings(), collect_spans(), \
                use_registry(MetricsRegistry()):
            traced = run_pose_recovery_sweep(dataset, include_vips=True,
                                             cache=False)
        assert plain == traced

    def test_worker_spans_nest_under_parent_sweep_span(self):
        with collect_spans() as collector:
            outcomes = self._sweep()
        assert len(outcomes) == self.NUM_PAIRS
        events = collector.events
        sweeps = [e for e in events if e["name"] == "engine/sweep"]
        assert len(sweeps) == 1
        chunks = [e for e in events if e["name"] == "engine/chunk"]
        assert {c["parent_id"] for c in chunks} == {sweeps[0]["span_id"]}
        assert all(c["pid"] != sweeps[0]["pid"] for c in chunks)
        pairs = [e for e in events if e["name"] == "engine/pair"]
        assert sorted(p["attrs"]["index"] for p in pairs) == \
            list(range(self.NUM_PAIRS))
        chunk_ids = {c["span_id"] for c in chunks}
        assert {p["parent_id"] for p in pairs} <= chunk_ids
        # Worker-side stage spans nest under their pair span.
        stages = [e for e in events if e["name"] == "data_generation"]
        pair_ids = {p["span_id"] for p in pairs}
        assert stages and {s["parent_id"] for s in stages} <= pair_ids

    def test_parallel_sweep_counters_travel_home(self):
        timings = SweepTimings()
        self._sweep(timings=timings)
        counters = timings.registry.counters
        assert counters["engine/chunks"].value == 2
        assert counters["pipeline/recoveries"].value == self.NUM_PAIRS
        assert counters["stage1/matches"].value == self.NUM_PAIRS
        assert timings.stage_count("data_generation") == self.NUM_PAIRS

    def test_untraced_sweep_ships_no_span_events(self):
        timings = SweepTimings()
        outcomes = self._sweep(timings=timings)
        assert len(outcomes) == self.NUM_PAIRS
        # Stage seconds still travel (the registry snapshot), but no
        # span histograms: workers skip span collection when untraced.
        assert timings.stage_count("bv_extract") > 0
        span_keys = [name for name in timings.registry.histograms
                     if name.startswith("span/")]
        assert span_keys == []


class TestChunkDedupe:
    def test_merge_chunk_replaces_previous_delivery(self):
        worker = SweepTimings()
        worker.add("data_generation", 1.0)
        worker.pairs = 2
        merged = SweepTimings()
        assert merged.merge_chunk(0, worker.to_snapshot()) == 1
        # The retry ladder re-delivers the same chunk (serial fallback
        # after a pool retry): the second delivery must replace, not add.
        assert merged.merge_chunk(0, worker.to_snapshot()) == 2
        assert merged.pairs == 2
        assert merged.stage_count("data_generation") == 1
        assert merged.seconds["data_generation"] == pytest.approx(1.0)
        assert merged.registry.counter("timings/chunk_remerges").value == 1
        # A different chunk still adds.
        merged.merge_chunk(2, worker.to_snapshot())
        assert merged.pairs == 4

    def test_retried_chunk_counts_each_pair_once(self, tmp_path):
        """A chunk that dies on the pool and re-runs must contribute its
        stage timings exactly once (the --timings double-count fix)."""
        num_pairs = 4
        fault = WorkerFault(kind="kill", indices=(1,),
                            once_dir=str(tmp_path))
        timings = SweepTimings()
        outcomes = run_sweep_parallel(
            DatasetConfig(num_pairs=num_pairs, seed=31),
            num_pairs=num_pairs, include_vips=False, seed=7, workers=2,
            chunk_size=2, fault=fault, timings=timings)
        assert len(outcomes) == num_pairs
        assert all(isinstance(o, PairOutcome) for o in outcomes)
        assert timings.registry.counter("engine/chunk_retries").value >= 1
        assert timings.pairs == num_pairs
        assert timings.stage_count("data_generation") == num_pairs

    def test_twice_killed_chunk_counts_each_pair_once(self, tmp_path):
        """Kill the same chunk on the first pool *and* the retry pool so
        it lands on the in-process serial fallback — the chunk's
        telemetry is delivered by the last rung only, and each pair
        still counts exactly once."""
        num_pairs = 4
        fault = DoubleKillFault(index=1, once_dir=str(tmp_path),
                                parent_pid=os.getpid())
        timings = SweepTimings()
        outcomes = run_sweep_parallel(
            DatasetConfig(num_pairs=num_pairs, seed=31),
            num_pairs=num_pairs, include_vips=False, seed=7, workers=2,
            chunk_size=2, fault=fault, timings=timings)
        assert len(outcomes) == num_pairs
        assert all(isinstance(o, PairOutcome) for o in outcomes)
        # Both kills break the whole pool, so the innocent sibling chunk
        # rides the ladder too — at least the faulted chunk went serial.
        counters = timings.registry.counters
        assert counters["engine/serial_fallbacks"].value >= 1
        assert timings.pairs == num_pairs
        assert timings.stage_count("data_generation") == num_pairs
