"""Tests for repro.pointcloud.accumulate."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.pointcloud.accumulate import accumulate_scans
from repro.pointcloud.cloud import PointCloud


class TestAccumulateScans:
    def test_single_cloud_identity(self, rng):
        cloud = PointCloud(rng.normal(0, 10, (50, 3)))
        submap = accumulate_scans([cloud], [SE2.identity()],
                                  voxel_size=None)
        np.testing.assert_allclose(submap.points, cloud.points)

    def test_static_world_scans_align_exactly(self, rng):
        """Scans of the same world points from different poses must fuse
        back onto each other given exact odometry."""
        world = rng.uniform(-30, 30, (200, 3))
        poses = [SE2(0.0, 0.0, 0.0), SE2(0.1, 2.0, 0.3),
                 SE2(0.2, 4.0, 0.6)]
        clouds = []
        for pose in poses:
            xy = pose.inverse().apply(world[:, :2])
            clouds.append(PointCloud(np.column_stack([xy, world[:, 2]])))
        submap = accumulate_scans(clouds, poses, reference_index=-1,
                                  voxel_size=0.05)
        # All three scans collapse onto one copy of the world (expressed
        # in the last pose's frame): deduped size ~ world size.
        assert len(submap) <= len(world) * 1.05

    def test_reference_frame_selection(self, rng):
        world = rng.uniform(-20, 20, (100, 3))
        poses = [SE2.identity(), SE2(0.0, 5.0, 0.0)]
        clouds = []
        for pose in poses:
            xy = pose.inverse().apply(world[:, :2])
            clouds.append(PointCloud(np.column_stack([xy, world[:, 2]])))
        in_last = accumulate_scans(clouds, poses, reference_index=-1,
                                   voxel_size=None)
        in_first = accumulate_scans(clouds, poses, reference_index=0,
                                    voxel_size=None)
        # The two submaps differ exactly by the relative pose:
        # p_last = (X_last^-1 @ X_first) p_first.
        relative = poses[1].inverse() @ poses[0]
        moved = in_first.transform(relative)

        def sort_rows(points):
            rounded = np.round(points, 6)
            order = np.lexsort(rounded.T)
            return rounded[order]

        np.testing.assert_allclose(sort_rows(in_last.points),
                                   sort_rows(moved.points), atol=1e-5)

    def test_absolute_drift_cancels(self, rng):
        """Shifting every odometry pose by a common transform leaves the
        submap unchanged (only relative poses matter)."""
        world = rng.uniform(-20, 20, (80, 3))
        poses = [SE2(0.0, 0.0, 0.0), SE2(0.05, 2.0, 0.0)]
        clouds = []
        for pose in poses:
            xy = pose.inverse().apply(world[:, :2])
            clouds.append(PointCloud(np.column_stack([xy, world[:, 2]])))
        drift = SE2(1.0, 100.0, -50.0)
        drifted = [drift @ p for p in poses]
        a = accumulate_scans(clouds, poses, voxel_size=None)
        b = accumulate_scans(clouds, drifted, voxel_size=None)
        np.testing.assert_allclose(a.points, b.points, atol=1e-9)

    def test_voxel_dedup_reduces(self, rng):
        cloud = PointCloud(rng.uniform(0, 1, (500, 3)))
        submap = accumulate_scans([cloud, cloud],
                                  [SE2.identity(), SE2.identity()],
                                  voxel_size=0.2)
        assert len(submap) < 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            accumulate_scans([], [])
        with pytest.raises(ValueError):
            accumulate_scans([PointCloud.empty()], [])
