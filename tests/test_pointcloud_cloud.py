"""Tests for repro.pointcloud.cloud."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3
from repro.pointcloud.cloud import PointCloud, PointLabel


class TestConstruction:
    def test_basic(self, rng):
        pts = rng.normal(0, 1, (10, 3))
        cloud = PointCloud(pts)
        assert len(cloud) == 10
        assert cloud.timestamps is None and cloud.labels is None

    def test_empty(self):
        cloud = PointCloud.empty()
        assert len(cloud) == 0
        assert cloud.points.shape == (0, 3)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 2)))

    def test_rejects_mismatched_timestamps(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 3)), timestamps=np.zeros(4))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((5, 3)), labels=np.zeros(6, dtype=int))

    def test_accessors(self):
        pts = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        cloud = PointCloud(pts)
        np.testing.assert_allclose(cloud.xy, pts[:, :2])
        np.testing.assert_allclose(cloud.z, pts[:, 2])


class TestSelect:
    def test_select_by_mask_keeps_channels(self, rng):
        pts = rng.normal(0, 1, (6, 3))
        ts = rng.random(6)
        labels = np.arange(6, dtype=np.int32)
        cloud = PointCloud(pts, ts, labels)
        mask = np.array([True, False, True, False, True, False])
        sub = cloud.select(mask)
        assert len(sub) == 3
        np.testing.assert_allclose(sub.timestamps, ts[mask])
        np.testing.assert_array_equal(sub.labels, labels[mask])

    def test_select_by_indices(self, rng):
        cloud = PointCloud(rng.normal(0, 1, (6, 3)))
        sub = cloud.select([0, 5])
        assert len(sub) == 2


class TestTransform:
    def test_se3_transform(self, rng):
        pts = rng.normal(0, 5, (20, 3))
        cloud = PointCloud(pts)
        t = SE3.from_euler(0.3, 0.0, 0.0, (1.0, 2.0, 3.0))
        out = cloud.transform(t)
        np.testing.assert_allclose(out.points, t.apply(pts))

    def test_se2_transform_keeps_z(self, rng):
        pts = rng.normal(0, 5, (20, 3))
        cloud = PointCloud(pts)
        out = cloud.transform(SE2(0.7, 1.0, -1.0))
        np.testing.assert_allclose(out.z, pts[:, 2])

    def test_transform_preserves_channels(self, rng):
        pts = rng.normal(0, 1, (4, 3))
        cloud = PointCloud(pts, rng.random(4),
                           np.full(4, PointLabel.TREE, dtype=np.int32))
        out = cloud.transform(SE2(1.0, 0.0, 0.0))
        assert out.timestamps is cloud.timestamps
        assert out.labels is cloud.labels

    def test_roundtrip(self, rng):
        pts = rng.normal(0, 5, (15, 3))
        cloud = PointCloud(pts)
        t = SE2(0.9, 3.0, -2.0)
        back = cloud.transform(t).transform(t.inverse())
        np.testing.assert_allclose(back.points, pts, atol=1e-9)


class TestLabels:
    def test_with_labels(self, rng):
        cloud = PointCloud(rng.normal(0, 1, (3, 3)))
        labeled = cloud.with_labels(np.array([1, 2, 3]))
        assert labeled.labels is not None
        assert cloud.labels is None

    def test_point_label_enum_values_distinct(self):
        values = [label.value for label in PointLabel]
        assert len(values) == len(set(values))
