"""Tests for repro.pointcloud.distortion (Sec. IV-B physics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.distortion import (
    MotionState,
    apply_self_motion_distortion,
    compensate_self_motion_distortion,
)

SPEEDS = st.floats(min_value=-20, max_value=20, allow_nan=False)
RATES = st.floats(min_value=-0.5, max_value=0.5, allow_nan=False)


class TestMotionState:
    def test_speed(self):
        assert MotionState(3.0, 4.0).speed == pytest.approx(5.0)

    def test_pose_at_zero_time(self):
        pose = MotionState(10.0, 0.0, 0.1).pose_at(0.0)
        assert pose.translation_distance(pose) == 0.0
        assert pose.tx == 0.0 and pose.theta == 0.0

    def test_straight_line_motion(self):
        pose = MotionState(10.0, 0.0, 0.0).pose_at(0.5)
        assert pose.tx == pytest.approx(5.0)
        assert pose.ty == pytest.approx(0.0)

    def test_constant_twist_arc(self):
        # Quarter circle: v = r*w; after t = (pi/2)/w the sensor is at
        # (r, r) heading 90 degrees.
        w, r = 0.5, 10.0
        motion = MotionState(r * w, 0.0, w)
        t = (np.pi / 2) / w
        pose = motion.pose_at(t)
        assert pose.theta == pytest.approx(np.pi / 2)
        assert pose.tx == pytest.approx(r)
        assert pose.ty == pytest.approx(r)

    @given(SPEEDS, SPEEDS, RATES)
    @settings(max_examples=30, deadline=None)
    def test_pose_at_matches_numeric_integration(self, vx, vy, w):
        motion = MotionState(vx, vy, w)
        t_final = 0.1
        steps = 2000
        dt = t_final / steps
        pos = np.zeros(2)
        theta = 0.0
        for _ in range(steps):
            c, s = np.cos(theta), np.sin(theta)
            pos += dt * np.array([c * vx - s * vy, s * vx + c * vy])
            theta += dt * w
        pose = motion.pose_at(t_final)
        np.testing.assert_allclose([pose.tx, pose.ty], pos, atol=1e-4)
        assert pose.theta == pytest.approx(theta, abs=1e-9)


class TestDistortion:
    def test_zero_motion_is_identity(self, rng):
        cloud = PointCloud(rng.normal(0, 10, (50, 3)))
        out = apply_self_motion_distortion(cloud, MotionState(), 0.1)
        np.testing.assert_allclose(out.points, cloud.points, atol=1e-12)

    def test_distortion_magnitude_bounded_by_motion(self, rng):
        cloud = PointCloud(rng.normal(0, 20, (200, 3)))
        motion = MotionState(velocity_x=10.0)
        out = apply_self_motion_distortion(cloud, motion, 0.1)
        displacement = np.linalg.norm(out.points[:, :2] - cloud.points[:, :2],
                                      axis=1)
        assert displacement.max() <= 10.0 * 0.1 + 1e-9

    def test_sweep_start_points_undistorted(self):
        # A point exactly behind the vehicle (azimuth -pi) is captured at
        # t = 0 and must not move.
        pts = np.array([[-10.0, -1e-9, 1.0]])
        out = apply_self_motion_distortion(PointCloud(pts),
                                           MotionState(10.0), 0.1)
        np.testing.assert_allclose(out.points, pts, atol=1e-6)

    def test_sweep_end_points_fully_distorted(self):
        # A point just shy of azimuth +pi is captured at t ~ T: the sensor
        # moved ~1 m forward, so the stored point shifts ~1 m backward.
        pts = np.array([[-10.0, 1e-6, 1.0]])
        out = apply_self_motion_distortion(PointCloud(pts),
                                           MotionState(10.0), 0.1)
        assert out.points[0, 0] == pytest.approx(-11.0, abs=1e-3)

    def test_records_timestamps(self, rng):
        cloud = PointCloud(rng.normal(0, 10, (30, 3)))
        out = apply_self_motion_distortion(cloud, MotionState(5.0), 0.1)
        assert out.timestamps is not None
        assert np.all((out.timestamps >= 0) & (out.timestamps < 1))

    def test_z_unchanged(self, rng):
        cloud = PointCloud(rng.normal(0, 10, (30, 3)))
        out = apply_self_motion_distortion(cloud, MotionState(8.0, 1.0, 0.2),
                                           0.1)
        np.testing.assert_allclose(out.z, cloud.z)

    def test_empty_cloud(self):
        out = apply_self_motion_distortion(PointCloud.empty(),
                                           MotionState(5.0), 0.1)
        assert len(out) == 0

    def test_rejects_negative_duration(self, rng):
        with pytest.raises(ValueError):
            apply_self_motion_distortion(PointCloud(rng.normal(0, 1, (3, 3))),
                                         MotionState(1.0), -0.1)


class TestCompensation:
    @given(SPEEDS, SPEEDS, RATES, st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_compensation_inverts_distortion(self, vx, vy, w, seed):
        cloud = PointCloud(np.random.default_rng(seed).normal(0, 15, (40, 3)))
        motion = MotionState(vx, vy, w)
        distorted = apply_self_motion_distortion(cloud, motion, 0.1)
        restored = compensate_self_motion_distortion(distorted, motion, 0.1)
        np.testing.assert_allclose(restored.points, cloud.points, atol=1e-9)

    def test_requires_timestamps(self, rng):
        cloud = PointCloud(rng.normal(0, 1, (5, 3)))
        with pytest.raises(ValueError):
            compensate_self_motion_distortion(cloud, MotionState(1.0), 0.1)

    def test_partial_compensation_leaves_residual(self, rng):
        cloud = PointCloud(rng.normal(0, 15, (100, 3)))
        motion = MotionState(10.0)
        distorted = apply_self_motion_distortion(cloud, motion, 0.1)
        partial = MotionState(7.0)  # 30 % error
        restored = compensate_self_motion_distortion(distorted, partial, 0.1)
        residual = np.linalg.norm(
            restored.points[:, :2] - cloud.points[:, :2], axis=1)
        assert 0.0 < residual.max() <= 0.3 + 1e-6
