"""Tests for repro.pointcloud.ops."""

import numpy as np
import pytest

from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.ops import (
    crop_box,
    crop_range,
    merge_clouds,
    remove_ground,
    voxel_downsample,
)


class TestCropRange:
    def test_keeps_points_inside(self):
        pts = np.array([[1.0, 0.0, 0.0], [10.0, 0.0, 0.0], [0.0, 3.0, 9.0]])
        out = crop_range(PointCloud(pts), max_range=5.0)
        assert len(out) == 2

    def test_xy_only_ignores_height(self):
        pts = np.array([[1.0, 0.0, 100.0]])
        assert len(crop_range(PointCloud(pts), 5.0, use_xy_only=True)) == 1
        assert len(crop_range(PointCloud(pts), 5.0, use_xy_only=False)) == 0

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            crop_range(PointCloud.empty(), 0.0)


class TestCropBox:
    def test_box_limits(self):
        pts = np.array([[0.0, 0.0, 0.0], [2.0, 2.0, 0.0], [-2.0, 0.0, 5.0]])
        out = crop_box(PointCloud(pts), (-1, 1), (-1, 1))
        assert len(out) == 1

    def test_z_limits(self):
        pts = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 10.0]])
        out = crop_box(PointCloud(pts), (-1, 1), (-1, 1), z_limits=(-1, 1))
        assert len(out) == 1


class TestRemoveGround:
    def test_removes_low_points(self):
        pts = np.array([[0, 0, 0.1], [0, 0, 0.3], [0, 0, 1.0]], dtype=float)
        out = remove_ground(PointCloud(pts), ground_height=0.3)
        assert len(out) == 1
        assert out.z[0] == pytest.approx(1.0)


class TestVoxelDownsample:
    def test_collapses_dense_cluster(self, rng):
        pts = rng.uniform(0, 0.05, (100, 3))  # all within one 0.1 m voxel
        out = voxel_downsample(PointCloud(pts), voxel_size=0.1)
        assert len(out) == 1

    def test_keeps_separate_voxels(self):
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        out = voxel_downsample(PointCloud(pts), voxel_size=0.5)
        assert len(out) == 3

    def test_preserves_channels(self, rng):
        pts = rng.uniform(0, 10, (50, 3))
        cloud = PointCloud(pts, rng.random(50),
                           rng.integers(0, 5, 50).astype(np.int32))
        out = voxel_downsample(cloud, 1.0)
        assert out.timestamps is not None and out.labels is not None
        assert len(out.timestamps) == len(out)

    def test_empty_input(self):
        assert len(voxel_downsample(PointCloud.empty(), 1.0)) == 0

    def test_rejects_bad_voxel(self):
        with pytest.raises(ValueError):
            voxel_downsample(PointCloud.empty(), 0.0)

    def test_never_increases_count(self, rng):
        pts = rng.normal(0, 3, (200, 3))
        out = voxel_downsample(PointCloud(pts), 0.5)
        assert 0 < len(out) <= 200


class TestMergeClouds:
    def test_concatenates(self, rng):
        a = PointCloud(rng.normal(0, 1, (5, 3)))
        b = PointCloud(rng.normal(0, 1, (7, 3)))
        assert len(merge_clouds(a, b)) == 12

    def test_empty_inputs(self):
        assert len(merge_clouds()) == 0
        assert len(merge_clouds(PointCloud.empty(), PointCloud.empty())) == 0

    def test_channels_survive_when_all_have_them(self, rng):
        a = PointCloud(rng.normal(0, 1, (3, 3)), rng.random(3),
                       np.zeros(3, dtype=np.int32))
        b = PointCloud(rng.normal(0, 1, (2, 3)), rng.random(2),
                       np.ones(2, dtype=np.int32))
        merged = merge_clouds(a, b)
        assert merged.timestamps is not None
        assert list(merged.labels) == [0, 0, 0, 1, 1]

    def test_channels_dropped_when_partial(self, rng):
        a = PointCloud(rng.normal(0, 1, (3, 3)), rng.random(3))
        b = PointCloud(rng.normal(0, 1, (2, 3)))
        merged = merge_clouds(a, b)
        assert merged.timestamps is None
