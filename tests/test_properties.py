"""Cross-module property-based tests (hypothesis).

Invariants that span module boundaries: frame-convention consistency,
rigid-transform equivariance of the matching stack, and codec safety.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boxes.box import Box2D
from repro.boxes.iou import bev_iou
from repro.geometry.ransac import ransac_rigid_2d
from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2

TRANSFORMS = st.builds(SE2,
                       st.floats(-3.1, 3.1, allow_nan=False),
                       st.floats(-50, 50, allow_nan=False),
                       st.floats(-50, 50, allow_nan=False))


class TestRigidEquivariance:
    @given(TRANSFORMS, st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_kabsch_equivariant_under_common_transform(self, extra, seed):
        """Transforming both point sets by the same rigid motion Q maps
        the Kabsch solution T to Q T Q^-1."""
        rng = np.random.default_rng(seed)
        src = rng.uniform(-20, 20, (8, 2))
        gt = SE2(0.4, 3.0, -1.0)
        dst = gt.apply(src)
        base = kabsch_2d(src, dst)
        moved = kabsch_2d(extra.apply(src), extra.apply(dst))
        expected = extra @ base @ extra.inverse()
        assert moved.is_close(expected, atol_translation=1e-6,
                              atol_rotation=1e-8)

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_ransac_transform_maps_inliers(self, seed):
        """Every reported inlier's residual under the reported transform
        is within the threshold (the definition, enforced end to end)."""
        rng = np.random.default_rng(seed)
        gt = SE2(rng.uniform(-3, 3), *rng.uniform(-20, 20, 2))
        src = rng.uniform(-30, 30, (25, 2))
        dst = gt.apply(src)
        dst[::5] += rng.uniform(5, 10, (5, 2))  # outliers
        result = ransac_rigid_2d(src, dst, threshold=0.5, rng=seed)
        if result.success:
            residuals = np.linalg.norm(
                result.transform.apply(src) - dst, axis=1)
            assert np.all(residuals[result.inlier_mask] <= 0.5 + 1e-9)


class TestIouProperties:
    BOXES = st.builds(Box2D,
                      st.floats(-10, 10, allow_nan=False),
                      st.floats(-10, 10, allow_nan=False),
                      st.floats(0.5, 8.0, allow_nan=False),
                      st.floats(0.5, 8.0, allow_nan=False),
                      st.floats(-3.1, 3.1, allow_nan=False))

    @given(BOXES, BOXES)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, a, b):
        assert bev_iou(a, b) == pytest.approx(bev_iou(b, a), abs=1e-9)

    @given(BOXES)
    @settings(max_examples=30, deadline=None)
    def test_self_iou_one(self, box):
        assert bev_iou(box, box) == pytest.approx(1.0, abs=1e-6)

    @given(BOXES, BOXES, TRANSFORMS)
    @settings(max_examples=30, deadline=None)
    def test_rigid_invariance(self, a, b, transform):
        before = bev_iou(a, b)
        after = bev_iou(a.transform(transform), b.transform(transform))
        assert after == pytest.approx(before, abs=1e-6)


class TestFrameConventions:
    @given(TRANSFORMS, st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_box_and_point_transforms_agree(self, transform, seed):
        """Transforming a box and transforming its corners commute."""
        rng = np.random.default_rng(seed)
        box = Box2D(*rng.uniform(-10, 10, 2), 4.5, 1.9,
                    rng.uniform(-3, 3))
        via_box = box.transform(transform).corners()
        via_points = transform.apply(box.corners())
        np.testing.assert_allclose(via_box, via_points, atol=1e-9)

    @given(TRANSFORMS)
    @settings(max_examples=20, deadline=None)
    def test_relative_pose_composition(self, other_pose):
        """gt_relative convention: p_ego = T(p_other) when T =
        X_ego^-1 @ X_other, for any world point."""
        ego_pose = SE2(0.7, 10.0, -5.0)
        relative = ego_pose.inverse() @ other_pose
        world_point = np.array([3.0, 4.0])
        in_other = other_pose.inverse().apply(world_point)
        in_ego = ego_pose.inverse().apply(world_point)
        np.testing.assert_allclose(relative.apply(in_other), in_ego,
                                   atol=1e-6)


class TestCodecProperties:
    @given(st.integers(0, 300), st.integers(8, 48))
    @settings(max_examples=20, deadline=None)
    def test_encoded_size_bounded(self, seed, size):
        """Worst case the codec costs ~3 bytes/pixel; typical sparse
        images far less; never corrupts occupancy."""
        from repro.bev.projection import BVImage
        from repro.comms import decode_bv_image, encode_bv_image
        rng = np.random.default_rng(seed)
        image = np.zeros((size, size))
        n = rng.integers(0, size * size // 2)
        idx = rng.integers(0, size, (n, 2))
        image[idx[:, 0], idx[:, 1]] = rng.uniform(0.1, 9.0, n)
        bv = BVImage(image, 0.5, size * 0.25)
        data = encode_bv_image(bv)
        assert len(data) <= 3 * size * size + 64
        decoded = decode_bv_image(data)
        np.testing.assert_array_equal(decoded.image > 0, image > 0)
