"""Failure-injection and degenerate-input robustness tests.

A plug-and-play module gets fed garbage in the field; every entry point
must degrade gracefully (flagged failure, empty result) rather than
crash or return a confident wrong answer.
"""

import numpy as np
import pytest

from repro.boxes.box import Box2D, Box3D
from repro.core import DegradationLevel, FailureReason
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.core.bv_matching import BVMatcher
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


@pytest.fixture(scope="module")
def aligner():
    return BBAlign()


def ground_only_cloud(n=5000, seed=0):
    """A scan with nothing but ground returns (featureless open area)."""
    rng = np.random.default_rng(seed)
    xy = rng.uniform(-60, 60, (n, 2))
    return PointCloud(np.column_stack([xy, np.zeros(n)]))


class TestDegenerateClouds:
    def test_empty_both(self, aligner):
        result = aligner.recover(PointCloud.empty(), PointCloud.empty(),
                                 [], [], rng=0)
        assert not result.success
        assert result.transform.is_close(SE2.identity())

    def test_empty_one_side(self, aligner, frame_pair):
        result = aligner.recover(frame_pair.ego_cloud, PointCloud.empty(),
                                 [], [], rng=0)
        assert not result.success

    def test_ground_only_scene_flagged_failure(self, aligner):
        """The paper's failure mode: vast open areas without landmarks."""
        result = aligner.recover(ground_only_cloud(seed=1),
                                 ground_only_cloud(seed=2), [], [], rng=0)
        assert not result.success

    def test_single_point_clouds(self, aligner):
        one = PointCloud(np.array([[1.0, 2.0, 3.0]]))
        result = aligner.recover(one, one, [], [], rng=0)
        assert not result.success

    def test_identical_clouds_match_at_identity(self, aligner, frame_pair):
        result = aligner.recover(frame_pair.ego_cloud,
                                 frame_pair.ego_cloud, [], [], rng=0)
        assert result.stage1.success
        assert result.stage1.transform.translation_distance(
            SE2.identity()) < 0.5

    def test_all_points_out_of_range(self, aligner):
        far = PointCloud(np.full((100, 3), 1e6))
        result = aligner.recover(far, far, [], [], rng=0)
        assert not result.success


class TestDegenerateBoxes:
    def test_hundreds_of_false_boxes(self, aligner, frame_pair):
        """A malfunctioning detector flooding boxes must not produce a
        confidently wrong pose."""
        rng = np.random.default_rng(3)
        junk = [Box3D(*rng.uniform(-50, 50, 2), 0.8, 4.5, 1.9, 1.6,
                      rng.uniform(-3, 3)) for _ in range(150)]
        result = aligner.recover(frame_pair.ego_cloud,
                                 frame_pair.other_cloud, junk, junk, rng=0)
        # Stage 1 is unaffected; the combined answer must stay within the
        # stage-2 correction guard of the stage-1 estimate.
        drift = result.transform.translation_distance(
            result.stage1.transform)
        assert drift <= BBAlignConfig().box_align.max_correction_meters

    def test_degenerate_thin_boxes(self, aligner, frame_pair):
        thin = [Box2D(5.0, 5.0, 0.2, 0.1, 0.0)]
        result = aligner.recover(frame_pair.ego_cloud,
                                 frame_pair.other_cloud, thin, thin, rng=0)
        assert result.stage1.success  # stage 1 untouched

    def test_mixed_box_types(self, aligner, frame_pair):
        boxes = [Box2D(1, 1, 4.0, 2.0, 0.0),
                 Box3D(5, 5, 0.8, 4.0, 2.0, 1.6, 0.0)]
        result = aligner.recover(frame_pair.ego_cloud,
                                 frame_pair.other_cloud, boxes, [], rng=0)
        assert result is not None


class TestExtremeGeometry:
    @pytest.mark.parametrize("yaw_deg", [-180.0, -90.0, 90.0, 179.9])
    def test_extreme_relative_yaw_handled(self, yaw_deg):
        """Synthetic pure-rotation pairs across the full yaw range."""
        rng = np.random.default_rng(5)
        parts = []
        for _ in range(12):
            x0, y0 = rng.uniform(-40, 40, 2)
            ang = rng.uniform(0, np.pi)
            t = np.linspace(0, rng.uniform(10, 25), 100)
            for f in (0.4, 0.7, 1.0):
                parts.append(np.stack([x0 + np.cos(ang) * t,
                                       y0 + np.sin(ang) * t,
                                       np.full_like(t, 8 * f)], 1))
        world = np.vstack(parts)
        gt = SE2(np.deg2rad(yaw_deg), 4.0, -2.0)
        ego = PointCloud(world)
        xy = gt.inverse().apply(world[:, :2])
        other = PointCloud(np.column_stack([xy, world[:, 2]]))
        matcher = BVMatcher(BBAlignConfig())
        result = matcher.match_clouds(other, ego, rng=0)
        assert result.success
        assert np.degrees(result.transform.rotation_distance(gt)) < 3.0

    def test_nan_points_rejected_or_ignored(self, aligner):
        bad = np.zeros((10, 3))
        bad[0] = np.nan
        # NaNs must not crash the pipeline (they fall outside every BV
        # cell and every box test).
        result = aligner.recover(PointCloud(bad), PointCloud(bad), [], [],
                                 rng=0)
        assert not result.success


@pytest.fixture(scope="module")
def wire_setup():
    """A frame pair, its ego boxes, and the other car's encoded message."""
    from repro.comms.message import V2VMessage
    from repro.detection.simulated import SimulatedDetector
    from repro.simulation.scenario import ScenarioConfig, make_frame_pair

    # rng=6 gives a pair that clears the paper's success thresholds
    # through the full wire path (quantized image, decoded boxes).
    pair = make_frame_pair(ScenarioConfig(distance=20.0), rng=6)
    detector = SimulatedDetector()
    ego_dets = detector.detect(pair.ego_visible, np.random.default_rng(1))
    other_dets = detector.detect(pair.other_visible,
                                 np.random.default_rng(2))
    sender = BBAlign()
    other_features = sender.extract_features(pair.other_cloud)
    payload = V2VMessage(other_features.bv_image,
                         [d.box.to_bev() for d in other_dets]).to_bytes()
    return pair, [d.box for d in ego_dets], payload


class TestDegradationLadder:
    """Every rung of the receiver-side recover() returns a flagged
    result — drop, staleness, undecodable bytes, stage errors — and the
    temporal rung actually reuses the last good pose."""

    def test_drop_without_history_is_flagged_identity(self, wire_setup):
        pair, ego_boxes, _ = wire_setup
        result = BBAlign().recover(pair.ego_cloud, None, ego_boxes, rng=0)
        assert not result.success
        assert result.failure_reason is FailureReason.MESSAGE_DROPPED
        assert result.degradation is DegradationLevel.IDENTITY
        assert result.transform.is_close(SE2.identity())
        assert result.degraded

    def test_clean_message_recovers(self, wire_setup):
        pair, ego_boxes, payload = wire_setup
        result = BBAlign().recover(pair.ego_cloud, payload, ego_boxes,
                                   rng=0)
        assert result.success
        assert result.failure_reason is None
        assert result.degradation is DegradationLevel.FULL
        assert result.translation_error(pair.gt_relative) < 1.5

    def test_drop_after_success_reuses_last_good_pose(self, wire_setup):
        pair, ego_boxes, payload = wire_setup
        aligner = BBAlign()
        good = aligner.recover(pair.ego_cloud, payload, ego_boxes, rng=0)
        assert good.success
        assert aligner.last_good_transform is not None
        dropped = aligner.recover(pair.ego_cloud, None, ego_boxes, rng=0)
        assert not dropped.success
        assert dropped.degradation is DegradationLevel.TEMPORAL
        assert dropped.failure_reason is FailureReason.MESSAGE_DROPPED
        assert dropped.transform.is_close(good.transform)
        # Clearing the memory drops back to the identity rung.
        aligner.reset_temporal()
        cleared = aligner.recover(pair.ego_cloud, None, ego_boxes, rng=0)
        assert cleared.degradation is DegradationLevel.IDENTITY

    def test_stale_message_not_used(self, wire_setup):
        pair, ego_boxes, payload = wire_setup
        result = BBAlign().recover(pair.ego_cloud, payload, ego_boxes,
                                   rng=0, stale=True)
        assert not result.success
        assert result.failure_reason is FailureReason.MESSAGE_STALE
        assert result.message_bytes == len(payload)

    def test_garbage_bytes_flagged_undecodable(self, wire_setup):
        pair, ego_boxes, _ = wire_setup
        result = BBAlign().recover(
            pair.ego_cloud, b"not a v2v message at all", ego_boxes, rng=0)
        assert not result.success
        assert result.failure_reason is FailureReason.MESSAGE_UNDECODABLE
        assert result.diagnostics.decode_error

    def test_corrupted_payload_flagged_undecodable(self, wire_setup):
        pair, ego_boxes, payload = wire_setup
        damaged = bytearray(payload)
        damaged[len(damaged) // 2] ^= 0xFF
        result = BBAlign().recover(pair.ego_cloud, bytes(damaged),
                                   ego_boxes, rng=0)
        assert result.failure_reason is FailureReason.MESSAGE_UNDECODABLE

    def test_stage2_error_keeps_stage1_estimate(self, wire_setup,
                                                monkeypatch):
        pair, ego_boxes, payload = wire_setup
        aligner = BBAlign()

        def broken_align(*args, **kwargs):
            raise RuntimeError("stage 2 exploded (test)")

        monkeypatch.setattr(aligner.box_aligner, "align", broken_align)
        result = aligner.recover(pair.ego_cloud, payload, ego_boxes, rng=0)
        assert result.failure_reason is FailureReason.STAGE2_ERROR
        assert result.degradation is DegradationLevel.STAGE1_ONLY
        assert result.transform.is_close(result.stage1.transform)
        assert "stage 2 exploded" in result.diagnostics.stage2_error

    def test_stage1_error_degrades(self, wire_setup, monkeypatch):
        pair, ego_boxes, payload = wire_setup
        aligner = BBAlign()

        def broken_match(*args, **kwargs):
            raise RuntimeError("stage 1 exploded (test)")

        monkeypatch.setattr(aligner.bv_matcher, "match", broken_match)
        result = aligner.recover(pair.ego_cloud, payload, ego_boxes, rng=0)
        assert not result.success
        assert result.failure_reason is FailureReason.STAGE1_ERROR
        assert "stage 1 exploded" in result.diagnostics.stage1_error

    def test_extraction_error_degrades(self, frame_pair, monkeypatch):
        aligner = BBAlign()

        def broken_extract(*args, **kwargs):
            raise RuntimeError("extraction exploded (test)")

        # make_bv_image is the seam shared by the single-cloud and the
        # batched-pair extraction paths.
        monkeypatch.setattr(aligner.bv_matcher, "make_bv_image",
                            broken_extract)
        result = aligner.recover(frame_pair.ego_cloud,
                                 frame_pair.other_cloud, [], [], rng=0)
        assert not result.success
        assert result.failure_reason is FailureReason.EXTRACTION_ERROR


class TestNonFiniteDiagnostics:
    def test_nonfinite_points_counted_and_filtered(self, frame_pair):
        aligner = BBAlign()
        points = frame_pair.ego_cloud.points.copy()
        points[:7, 0] = np.nan
        points[7:10, 2] = np.inf
        features = aligner.extract_features(PointCloud(points))
        assert features.bv_image.num_nonfinite == 10
        assert np.isfinite(features.bv_image.image).all()

    def test_counts_surface_in_result_diagnostics(self, frame_pair):
        aligner = BBAlign()
        points = frame_pair.ego_cloud.points.copy()
        points[:5] = np.nan
        ego = aligner.extract_features(PointCloud(points))
        other = aligner.extract_features(frame_pair.other_cloud)
        result = aligner.recover(ego, other, [], [], rng=0)
        assert result.diagnostics.nonfinite_ego_points == 5
        assert result.diagnostics.nonfinite_other_points == 0


class TestSuccessCriterionHonesty:
    def test_failed_recoveries_not_reported_successful(self, aligner):
        """Across hostile scenes, no flagged-successful recovery may be
        wildly wrong (the criterion's purpose)."""
        from repro.simulation import ScenarioConfig, WorldConfig, make_frame_pair
        from repro.simulation.world import ScenarioKind
        for seed in (1, 2, 3):
            pair = make_frame_pair(ScenarioConfig(
                world=WorldConfig(kind=ScenarioKind.OPEN),
                distance=50.0), rng=seed)
            result = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                     [v.box for v in pair.ego_visible],
                                     [v.box for v in pair.other_visible],
                                     rng=0)
            if result.success:
                assert result.translation_error(pair.gt_relative) < 5.0
