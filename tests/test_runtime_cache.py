"""Tests for the stage-1 feature cache (repro.runtime.cache)."""

from dataclasses import replace

from repro.core.config import BBAlignConfig
from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.runtime.cache import (
    FeatureCache,
    dataset_fingerprint,
    extraction_fingerprint,
    feature_key,
)
from repro.runtime.timings import SweepTimings
from repro.simulation.dataset import DatasetConfig


class TestFeatureCache:
    def test_round_trip_and_counters(self):
        cache = FeatureCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", "features")
        assert cache.get("k") == "features"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = FeatureCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_zero_entries_disables_storage(self):
        cache = FeatureCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = FeatureCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestFingerprints:
    def test_extraction_fingerprint_ignores_non_extraction_params(self):
        base = BBAlignConfig()
        # RANSAC / stage-2 settings don't affect extracted features:
        # ablation variants differing only there share cache entries.
        ransac_variant = replace(
            base, bv_ransac=replace(base.bv_ransac, disambiguate_pi=False))
        assert extraction_fingerprint(base) \
            == extraction_fingerprint(ransac_variant)

    def test_extraction_fingerprint_tracks_extraction_params(self):
        base = BBAlignConfig()
        cell_variant = replace(
            base, bv_image=replace(base.bv_image, cell_size=0.4))
        assert extraction_fingerprint(base) \
            != extraction_fingerprint(cell_variant)
        detector_variant = replace(base, keypoint_detector="harris")
        assert extraction_fingerprint(base) \
            != extraction_fingerprint(detector_variant)

    def test_dataset_fingerprint_ignores_num_pairs(self):
        a = DatasetConfig(num_pairs=10, seed=5)
        b = DatasetConfig(num_pairs=40, seed=5)
        # Records are generated per index, so a 10-pair and a 40-pair
        # dataset share their first 10 records — and their cache entries.
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        assert dataset_fingerprint(a) != dataset_fingerprint(
            DatasetConfig(num_pairs=10, seed=6))

    def test_feature_key_separates_roles_and_indices(self):
        ds = dataset_fingerprint(DatasetConfig())
        ext = extraction_fingerprint(BBAlignConfig())
        keys = {feature_key(ds, 0, "ego", ext),
                feature_key(ds, 0, "other", ext),
                feature_key(ds, 1, "ego", ext)}
        assert len(keys) == 3


class TestCachedSweep:
    def test_warm_sweep_matches_cold_and_hits(self):
        """A cache-hit sweep must be byte-identical to the cold sweep."""
        dataset = default_dataset(3, seed=21)
        cache = FeatureCache(max_entries=16)
        timings = SweepTimings()
        cold = run_pose_recovery_sweep(dataset, include_vips=False,
                                       cache=cache, timings=timings)
        assert timings.cache_misses == 6      # 3 pairs x 2 roles
        assert timings.cache_hits == 0
        warm = run_pose_recovery_sweep(dataset, include_vips=False,
                                       cache=cache, timings=timings)
        assert warm == cold
        assert timings.cache_hits == 6

    def test_cache_false_disables(self):
        dataset = default_dataset(2, seed=22)
        timings = SweepTimings()
        run_pose_recovery_sweep(dataset, include_vips=False,
                                cache=False, timings=timings)
        assert timings.cache_hits == 0
        assert timings.cache_misses == 0
