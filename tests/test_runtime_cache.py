"""Tests for the stage-1 feature cache (repro.runtime.cache)."""

from dataclasses import replace

import numpy as np

from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.experiments.common import (
    _features_for,
    _features_for_pair,
    default_dataset,
    run_pose_recovery_sweep,
)
from repro.runtime.cache import (
    FeatureCache,
    dataset_fingerprint,
    extraction_fingerprint,
    feature_key,
)
from repro.runtime.timings import SweepTimings
from repro.simulation.dataset import DatasetConfig


class TestFeatureCache:
    def test_round_trip_and_counters(self):
        cache = FeatureCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", "features")
        assert cache.get("k") == "features"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = FeatureCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert len(cache) == 2

    def test_zero_entries_disables_storage(self):
        cache = FeatureCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = FeatureCache(max_entries=4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0


class TestFingerprints:
    def test_extraction_fingerprint_ignores_non_extraction_params(self):
        base = BBAlignConfig()
        # RANSAC / stage-2 settings don't affect extracted features:
        # ablation variants differing only there share cache entries.
        ransac_variant = replace(
            base, bv_ransac=replace(base.bv_ransac, disambiguate_pi=False))
        assert extraction_fingerprint(base) \
            == extraction_fingerprint(ransac_variant)

    def test_extraction_fingerprint_tracks_extraction_params(self):
        base = BBAlignConfig()
        cell_variant = replace(
            base, bv_image=replace(base.bv_image, cell_size=0.4))
        assert extraction_fingerprint(base) \
            != extraction_fingerprint(cell_variant)
        detector_variant = replace(base, keypoint_detector="harris")
        assert extraction_fingerprint(base) \
            != extraction_fingerprint(detector_variant)

    def test_dataset_fingerprint_ignores_num_pairs(self):
        a = DatasetConfig(num_pairs=10, seed=5)
        b = DatasetConfig(num_pairs=40, seed=5)
        # Records are generated per index, so a 10-pair and a 40-pair
        # dataset share their first 10 records — and their cache entries.
        assert dataset_fingerprint(a) == dataset_fingerprint(b)
        assert dataset_fingerprint(a) != dataset_fingerprint(
            DatasetConfig(num_pairs=10, seed=6))

    def test_feature_key_separates_roles_and_indices(self):
        ds = dataset_fingerprint(DatasetConfig())
        ext = extraction_fingerprint(BBAlignConfig())
        keys = {feature_key(ds, 0, "ego", ext),
                feature_key(ds, 0, "other", ext),
                feature_key(ds, 1, "ego", ext)}
        assert len(keys) == 3


class TestCachedSweep:
    def test_warm_sweep_matches_cold_and_hits(self):
        """A cache-hit sweep must be byte-identical to the cold sweep."""
        dataset = default_dataset(3, seed=21)
        cache = FeatureCache(max_entries=16)
        timings = SweepTimings()
        cold = run_pose_recovery_sweep(dataset, include_vips=False,
                                       cache=cache, timings=timings)
        assert timings.cache_misses == 6      # 3 pairs x 2 roles
        assert timings.cache_hits == 0
        warm = run_pose_recovery_sweep(dataset, include_vips=False,
                                       cache=cache, timings=timings)
        assert warm == cold
        assert timings.cache_hits == 6

    def test_cache_false_disables(self):
        dataset = default_dataset(2, seed=22)
        timings = SweepTimings()
        run_pose_recovery_sweep(dataset, include_vips=False,
                                cache=False, timings=timings)
        assert timings.cache_hits == 0
        assert timings.cache_misses == 0


def _same_features(a, b):
    return (np.array_equal(a.keypoints.xy, b.keypoints.xy)
            and np.array_equal(a.descriptors.descriptors,
                               b.descriptors.descriptors)
            and np.array_equal(a.descriptors.keypoint_indices,
                               b.descriptors.keypoint_indices))


class TestPairBatchedCache:
    """Cache accounting and interchangeability under pair-batched
    extraction (`_features_for_pair`), which batches the Log-Gabor bank
    only when *both* roles miss and must keep per-role keys intact."""

    def setup_method(self):
        self.record = next(iter(default_dataset(1, seed=31)))
        self.aligner = BBAlign()
        self.ds_fp = dataset_fingerprint(DatasetConfig(seed=31))
        self.ext_fp = extraction_fingerprint(self.aligner.config)

    def _pair_features(self, cache, timings=None):
        return _features_for_pair(self.aligner, self.record.pair,
                                  self.record.index, cache,
                                  self.ds_fp, self.ext_fp, timings)

    def test_both_miss_then_both_hit(self):
        cache = FeatureCache(max_entries=8)
        timings = SweepTimings()
        ego, other = self._pair_features(cache, timings)
        assert timings.cache_misses == 2 and timings.cache_hits == 0
        assert len(cache) == 2
        warm = SweepTimings()
        ego2, other2 = self._pair_features(cache, warm)
        assert warm.cache_hits == 2 and warm.cache_misses == 0
        assert ego2 is ego and other2 is other

    def test_mixed_hit_miss(self):
        """One role cached, the other not: exactly one hit and one
        miss, and the missing role extracts to the same bits the
        batched path produced."""
        full = FeatureCache(max_entries=8)
        ego, other = self._pair_features(full)
        for present, absent, role in ((ego, other, "ego"),
                                      (other, ego, "other")):
            cache = FeatureCache(max_entries=8)
            cache.put(feature_key(self.ds_fp, self.record.index, role,
                                  self.ext_fp), present)
            timings = SweepTimings()
            got_ego, got_other = self._pair_features(cache, timings)
            assert timings.cache_hits == 1
            assert timings.cache_misses == 1
            assert _same_features(got_ego, ego)
            assert _same_features(got_other, other)
            assert len(cache) == 2  # the miss was backfilled

    def test_pair_and_single_entries_interchangeable(self):
        """Entries written by the single-extraction path serve the pair
        path bit-for-bit, and vice versa."""
        single_cache = FeatureCache(max_entries=8)
        ego_single = _features_for(
            self.aligner, self.record.pair.ego_cloud, "ego",
            self.record.index, single_cache, self.ds_fp, self.ext_fp, None)
        other_single = _features_for(
            self.aligner, self.record.pair.other_cloud, "other",
            self.record.index, single_cache, self.ds_fp, self.ext_fp, None)
        timings = SweepTimings()
        ego, other = self._pair_features(single_cache, timings)
        assert timings.cache_hits == 2
        assert ego is ego_single and other is other_single
        pair_cache = FeatureCache(max_entries=8)
        ego_pair, other_pair = self._pair_features(pair_cache)
        assert _same_features(ego_pair, ego_single)
        assert _same_features(other_pair, other_single)

    def test_eviction_bounds_memory_during_sweep(self):
        """A sweep over more pairs than the cache holds stays bounded
        and still produces the exact uncached outcomes."""
        dataset = default_dataset(4, seed=32)
        cache = FeatureCache(max_entries=3)
        timings = SweepTimings()
        bounded = run_pose_recovery_sweep(dataset, include_vips=False,
                                          cache=cache, timings=timings)
        assert len(cache) == 3  # 8 entries written, LRU kept 3
        assert timings.cache_misses == 8
        uncached = run_pose_recovery_sweep(dataset, include_vips=False,
                                           cache=False)
        assert bounded == uncached
