"""Tests for the parallel sweep engine (repro.runtime.engine)."""

import warnings

import pytest

from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.runtime import engine
from repro.runtime.engine import (
    PoolUnavailableError,
    chunk_indices,
    resolve_workers,
)
from repro.runtime.timings import SweepTimings


class TestChunking:
    def test_chunks_cover_all_indices_contiguously(self):
        chunks = chunk_indices(10, workers=3)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))

    def test_explicit_chunk_size(self):
        chunks = chunk_indices(7, workers=2, chunk_size=3)
        assert chunks == [(0, 1, 2), (3, 4, 5), (6,)]

    def test_empty_dataset(self):
        assert chunk_indices(0, workers=4) == []

    def test_default_targets_four_chunks_per_worker(self):
        chunks = chunk_indices(80, workers=2)
        assert len(chunks) == 8

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1


class TestParallelDeterminism:
    def test_parallel_matches_serial(self):
        """workers=4 must produce byte-identical outcomes to workers=1."""
        dataset = default_dataset(6, seed=11)
        serial = run_pose_recovery_sweep(dataset, include_vips=True,
                                         workers=1, cache=False)
        parallel = run_pose_recovery_sweep(dataset, include_vips=True,
                                           workers=4)
        assert serial == parallel

    def test_parallel_records_timings(self):
        timings = SweepTimings()
        dataset = default_dataset(4, seed=12)
        outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                           workers=2, timings=timings)
        assert len(outcomes) == 4
        assert timings.pairs == 4
        assert timings.workers == 2
        assert timings.wall_seconds > 0
        assert timings.seconds.get("bv_extract", 0) > 0


class TestFallback:
    def test_falls_back_to_serial_when_pool_unavailable(self, monkeypatch):
        def broken(*args, **kwargs):
            raise PoolUnavailableError("pool refused (test)")

        monkeypatch.setattr(engine, "run_sweep_parallel", broken)
        dataset = default_dataset(3, seed=13)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                               workers=4, cache=False)
        assert len(outcomes) == 3
        assert any("falling back" in str(w.message) for w in caught)
        reference = run_pose_recovery_sweep(dataset, include_vips=False,
                                            workers=1, cache=False)
        assert outcomes == reference

    def test_single_pair_dataset_stays_serial(self, monkeypatch):
        def must_not_run(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pool path taken for 1-pair dataset")

        monkeypatch.setattr(engine, "run_sweep_parallel", must_not_run)
        dataset = default_dataset(1, seed=14)
        outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                           workers=4, cache=False)
        assert len(outcomes) == 1


def _square(x):
    return x * x


def _increment_positive(x):
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x + 1


class TestTasksParallel:
    def test_serial_path_matches_comprehension(self):
        items = list(range(7))
        assert engine.run_tasks_parallel(_square, items, workers=1) \
            == [x * x for x in items]

    def test_pool_matches_serial(self):
        items = list(range(9))
        serial = engine.run_tasks_parallel(_square, items, workers=1)
        parallel = engine.run_tasks_parallel(_square, items, workers=3)
        engine.shutdown_pool()
        assert parallel == serial

    def test_item_error_degrades_not_aborts(self):
        out = engine.run_tasks_parallel(_increment_positive, [1, -2, 3],
                                        workers=1)
        assert out[0] == 2 and out[2] == 4
        assert isinstance(out[1], engine.TaskError)
        assert out[1].index == 1
        assert out[1].error_type == "ValueError"

    def test_pool_item_error_in_slot(self):
        out = engine.run_tasks_parallel(_increment_positive,
                                        [5, -1, 6, 7], workers=2)
        engine.shutdown_pool()
        assert [r for r in out if not isinstance(r, engine.TaskError)] \
            == [6, 7, 8]
        assert isinstance(out[1], engine.TaskError)

    def test_empty_items(self):
        assert engine.run_tasks_parallel(_square, [], workers=4) == []

    def test_timings_count_task_errors(self):
        timings = SweepTimings()
        engine.run_tasks_parallel(_increment_positive, [1, -2, -3],
                                  workers=2, timings=timings)
        engine.shutdown_pool()
        assert timings.registry.counter("engine/task_errors").value == 2
