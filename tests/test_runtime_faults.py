"""Fault-injection tests for the engine's retry ladder.

Each test injects one of the three :class:`WorkerFault` kinds and
asserts the blast radius the engine promises: a raising pair degrades to
one error record, a killed or hung worker degrades to *nothing* (the
chunk retries clean on a fresh pool), and even a chunk that fails every
rung yields error records instead of an exception.
"""

import pytest

from repro.experiments.common import (
    PairErrorOutcome,
    PairOutcome,
    default_dataset,
    run_pose_recovery_sweep,
)
from repro.runtime.engine import run_sweep_parallel, shutdown_pool
from repro.runtime.faults import InjectedFault, WorkerFault
from repro.simulation.dataset import DatasetConfig

NUM_PAIRS = 6
DATASET = DatasetConfig(num_pairs=NUM_PAIRS, seed=2024)


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test gets (and leaves behind) a clean pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def sweep(fault=None, chunk_timeout=None, workers=2):
    return run_sweep_parallel(
        DATASET, num_pairs=NUM_PAIRS, include_vips=False, seed=7,
        workers=workers, chunk_size=2, fault=fault,
        chunk_timeout=chunk_timeout)


@pytest.fixture(scope="module")
def clean_outcomes():
    result = run_sweep_parallel(DATASET, num_pairs=NUM_PAIRS,
                                include_vips=False, seed=7, workers=2,
                                chunk_size=2)
    shutdown_pool()
    return result


class TestWorkerFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            WorkerFault("explode", (0,))

    @pytest.mark.parametrize("kind", ["kill", "hang"])
    def test_process_faults_require_once_dir(self, kind):
        with pytest.raises(ValueError, match="once_dir"):
            WorkerFault(kind, (0,))

    def test_fire_once_claims_exactly_once(self, tmp_path):
        fault = WorkerFault("raise", (4,), once_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            fault.maybe_fire(4)
        fault.maybe_fire(4)  # claimed: second evaluation runs clean
        fault.maybe_fire(0)  # untargeted index never fires


class TestRaiseFault:
    def test_one_error_record_others_untouched(self, clean_outcomes):
        fault = WorkerFault("raise", (2,))
        outcomes = sweep(fault=fault)
        assert len(outcomes) == NUM_PAIRS
        error = outcomes[2]
        assert isinstance(error, PairErrorOutcome)
        assert error.index == 2
        assert error.error_type == "InjectedFault"
        assert not error.success
        assert error.failure_reason == "evaluation-error"
        for i in range(NUM_PAIRS):
            if i != 2:
                assert outcomes[i] == clean_outcomes[i]


class TestKillFault:
    def test_killed_worker_degrades_nothing(self, tmp_path, clean_outcomes):
        """SIGKILL mid-chunk breaks the pool; the retry on a fresh pool
        must recover *every* pair — the acceptance scenario."""
        fault = WorkerFault("kill", (3,), once_dir=str(tmp_path))
        outcomes = sweep(fault=fault)
        assert outcomes == clean_outcomes
        assert (tmp_path / "fault-kill-3.fired").exists()


class TestHangFault:
    def test_hung_chunk_times_out_and_recovers(self, tmp_path,
                                               clean_outcomes):
        fault = WorkerFault("hang", (1,), once_dir=str(tmp_path),
                            hang_seconds=5.0)
        outcomes = sweep(fault=fault, chunk_timeout=3.0)
        assert outcomes == clean_outcomes


class TestSerialErrorCapture:
    def test_serial_sweep_captures_pair_exception(self, monkeypatch):
        from repro.experiments import common

        real = common.evaluate_pair

        def flaky(record, *args, **kwargs):
            if record.index == 1:
                raise RuntimeError("flaky pair (test)")
            return real(record, *args, **kwargs)

        monkeypatch.setattr(common, "evaluate_pair", flaky)
        outcomes = run_pose_recovery_sweep(default_dataset(3, seed=11),
                                           include_vips=False, workers=1,
                                           cache=False)
        assert len(outcomes) == 3
        assert isinstance(outcomes[0], PairOutcome)
        assert isinstance(outcomes[1], PairErrorOutcome)
        assert outcomes[1].error_type == "RuntimeError"
        assert isinstance(outcomes[2], PairOutcome)
