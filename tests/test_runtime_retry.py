"""Tests for :mod:`repro.runtime.retry`.

The property that matters operationally: a *seeded* rng reproduces the
whole backoff schedule draw-for-draw, so a chaos run's retry timing is
replayable, while every draw stays inside the jitter envelope.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.retry import ENGINE_DEFAULT, SERVICE_DEFAULT, RetryPolicy


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(attempts=0),
        dict(base_delay=-0.1),
        dict(max_delay=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestSchedule:
    def test_attempts_minus_one_delays(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.0)
        assert len(list(policy.delays())) == 3

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(attempts=6, base_delay=0.1, multiplier=2.0,
                             max_delay=0.35, jitter=0.0)
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.35, 0.35, 0.35])

    def test_zero_base_delay_retries_immediately(self):
        assert list(ENGINE_DEFAULT.delays()) == [0.0]

    def test_seeded_rng_reproduces_schedule(self):
        policy = RetryPolicy(attempts=5, base_delay=0.05, jitter=0.5)
        first = list(policy.delays(np.random.default_rng(11)))
        second = list(policy.delays(np.random.default_rng(11)))
        assert first == second
        # A different seed draws a different schedule (overwhelmingly).
        other = list(policy.delays(np.random.default_rng(12)))
        assert first != other

    def test_jitter_stays_inside_envelope(self):
        policy = RetryPolicy(attempts=2, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.3)
        rng = np.random.default_rng(0)
        draws = [policy.delay(0, rng) for _ in range(500)]
        assert min(draws) >= 0.7
        assert max(draws) <= 1.3
        assert max(draws) - min(draws) > 0.1  # actually jittered

    def test_no_rng_uses_the_midpoint(self):
        policy = RetryPolicy(attempts=2, base_delay=0.4, jitter=0.5)
        assert policy.delay(0) == pytest.approx(0.4)

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(attempts=2, base_delay=0.4, jitter=0.0)
        rng = np.random.default_rng(3)
        assert policy.delay(0, rng) == pytest.approx(0.4)
        # The rng was not consumed: the next draw is the seed's first.
        assert rng.random() == np.random.default_rng(3).random()


class TestDeadlineAwareness:
    def test_schedule_truncates_at_the_deadline(self):
        policy = RetryPolicy(attempts=4, base_delay=1.0, multiplier=2.0,
                             max_delay=10.0, jitter=0.0)
        clock_now = 100.0
        # Budget covers the first two sleeps (1 s + 2 s) but not the
        # third (4 s): exactly two retries are offered.
        delays = list(policy.schedule(deadline=103.5,
                                      clock=lambda: clock_now))
        assert delays == pytest.approx([1.0, 2.0])

    def test_no_deadline_never_truncates(self):
        policy = RetryPolicy(attempts=4, base_delay=1.0, jitter=0.0,
                             max_delay=10.0)
        assert len(list(policy.schedule())) == 3

    def test_elapsed_time_consumes_the_budget(self):
        policy = RetryPolicy(attempts=3, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.0)
        clock = iter([0.0, 1.9]).__next__
        # First check at t=0 fits (deadline 2.0); by the second check
        # the clock reads 1.9 and another 1 s sleep would overrun.
        assert list(policy.schedule(deadline=2.0, clock=clock)) == [1.0]


class TestDefaults:
    def test_engine_default_is_the_historical_ladder(self):
        assert ENGINE_DEFAULT.attempts == 2
        assert ENGINE_DEFAULT.base_delay == 0.0

    def test_service_default_backs_off_fast(self):
        assert SERVICE_DEFAULT.attempts == 3
        assert 0 < SERVICE_DEFAULT.base_delay <= 0.1
        assert SERVICE_DEFAULT.max_delay <= 1.0
