"""Tests for the zero-copy scan data plane (:mod:`repro.runtime.shm`).

The lifecycle contract under test: the parent owns every segment
(workers attach and close, never unlink), placement fidelity is exact
for every tier-message shape, the shm-pair envelope kind survives
encode/decode and malformed input, the TCP shared-memory fast path
returns the same responses as the wire path, and — the crash-cleanup
protocol — chaos faults leave zero segments in ``/dev/shm``.
"""

from __future__ import annotations

import asyncio
import gc
import glob
import struct

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.bev.projection import BVImage
from repro.comms.codec import CodecError
from repro.comms.envelope import (
    ServiceRequest,
    ShmPairRef,
    decode_request,
)
from repro.comms.tiers import (
    KeypointPayload,
    Tier,
    TieredMessage,
    build_message,
)
from repro.pointcloud.cloud import PointCloud
from repro.runtime.faults import WorkerFault
from repro.runtime.shm import (
    ShmArena,
    ShmUnavailableError,
    attach_block,
    load_messages,
    read_segment,
    share_messages,
    shm_available,
    write_segment,
)
from repro.service import (
    PoseService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no shared memory here")

DATASET = DatasetConfig(num_pairs=2, seed=2024)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


def leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-svc-*") + \
        glob.glob("/dev/shm/repro-test-*")


def sample_boxes() -> list[Box2D]:
    return [Box2D(1.0, -2.0, 4.5, 1.9, 0.3), Box2D(-3.0, 7.0, 4.0, 2.0, -1.2)]


def sample_cloud(n: int = 50, seed: int = 0) -> PointCloud:
    rng = np.random.default_rng(seed)
    return PointCloud(rng.normal(size=(n, 3)) * 10.0,
                      timestamps=rng.uniform(0.0, 1.0, n),
                      labels=rng.integers(0, 3, n))


class TestArena:
    def test_place_attach_roundtrip(self):
        arena = ShmArena(prefix="repro-test")
        arrays = [np.arange(12, dtype=np.float64).reshape(3, 4),
                  np.empty((0, 3)),
                  np.arange(7, dtype=np.int32),
                  np.ones((2, 2), dtype=np.float32)]
        ref = arena.place(arrays)
        assert arena.active == 1
        assert ref.payload_bytes == sum(a.nbytes for a in arrays)
        views, close = attach_block(ref)
        for original, view, shm_slice in zip(arrays, views, ref.slices):
            assert view.dtype == original.dtype
            np.testing.assert_array_equal(view, original)
            assert shm_slice.offset % 64 == 0  # cache-line aligned
        del views
        close()
        arena.release(ref)
        assert arena.active == 0
        assert not leaked_segments()

    def test_release_is_idempotent(self):
        arena = ShmArena(prefix="repro-test")
        ref = arena.place([np.arange(4.0)])
        arena.release(ref)
        arena.release(ref)  # no-op, no error
        assert arena.released == 1
        assert not leaked_segments()

    def test_release_all_bumps_generation_and_disowns(self):
        arena = ShmArena(prefix="repro-test")
        ref = arena.place([np.arange(4.0)])
        assert arena.owns(ref)
        arena.release_all()
        assert arena.generation == ref.generation + 1
        assert not arena.owns(ref)  # stale descriptors are refusable
        assert not leaked_segments()

    def test_finalizer_backstop_unlinks_on_gc(self):
        arena = ShmArena(prefix="repro-test")
        arena.place([np.arange(64.0)])
        assert leaked_segments()
        del arena
        gc.collect()
        assert not leaked_segments()

    def test_views_write_through_until_release(self):
        # The consumer sees exactly what the producer placed, even if
        # the producer's source array mutates afterwards (place copies).
        arena = ShmArena(prefix="repro-test")
        source = np.arange(8.0)
        ref = arena.place([source])
        source[:] = -1.0
        views, close = attach_block(ref)
        np.testing.assert_array_equal(views[0], np.arange(8.0))
        del views
        close()
        arena.release(ref)

    def test_raw_segment_roundtrip(self):
        segment = write_segment(b"hello shm")
        try:
            assert read_segment(segment.name, 9) == b"hello shm"
            with pytest.raises(ValueError):
                read_segment(segment.name, segment.size + 1)
        finally:
            segment.close()
            segment.unlink()
        with pytest.raises(FileNotFoundError):
            read_segment(segment.name, 1)


class TestMessagePacking:
    def roundtrip(self, messages):
        arena = ShmArena(prefix="repro-test")
        shared = share_messages(arena, messages)
        loaded, close = load_messages(shared)
        try:
            assert len(loaded) == len(messages)
            for original, copy in zip(messages, loaded):
                assert copy.tier is original.tier
                assert copy.boxes == original.boxes
                if original.cloud is None:
                    assert copy.cloud is None
                else:
                    np.testing.assert_array_equal(copy.cloud.points,
                                                  original.cloud.points)
                    for field in ("timestamps", "labels"):
                        mine = getattr(copy.cloud, field)
                        theirs = getattr(original.cloud, field)
                        if theirs is None:
                            assert mine is None
                        else:
                            np.testing.assert_array_equal(mine, theirs)
                if original.bv_image is not None:
                    assert copy.bv_image is not None
                    np.testing.assert_array_equal(copy.bv_image.image,
                                                  original.bv_image.image)
                    assert copy.bv_image.cell_size == \
                        original.bv_image.cell_size
                    assert copy.bv_image.lidar_range == \
                        original.bv_image.lidar_range
                    assert copy.bv_image.num_nonfinite == \
                        original.bv_image.num_nonfinite
                if original.keypoints is not None:
                    kp, okp = copy.keypoints, original.keypoints
                    for field in ("xy", "scores", "descriptors"):
                        np.testing.assert_array_equal(getattr(kp, field),
                                                      getattr(okp, field))
                    assert kp.image_size == okp.image_size
                    assert kp.grid_size == okp.grid_size
        finally:
            loaded = None  # noqa: F841  (views must die before close)
            close()
            arena.release(shared.block)
        assert not leaked_segments()

    def test_full_scan_fidelity(self):
        self.roundtrip([
            build_message(Tier.FULL_SCAN, sample_boxes(),
                          cloud=sample_cloud(80, seed=1)),
            build_message(Tier.FULL_SCAN, [],
                          cloud=PointCloud(np.zeros((3, 3)))),
        ])

    def test_bv_image_and_keypoints_fidelity(self):
        rng = np.random.default_rng(3)
        bv = BVImage(rng.uniform(size=(32, 32)), cell_size=0.5,
                     lidar_range=40.0, num_nonfinite=2)
        kp = KeypointPayload(
            xy=rng.integers(0, 32, (5, 2)),
            scores=rng.uniform(size=5).astype(np.float64),
            descriptors=rng.uniform(size=(5, 24)),
            image_size=32, cell_size=0.5, lidar_range=40.0,
            grid_size=2, num_orientations=6)
        self.roundtrip([
            TieredMessage(Tier.BV_IMAGE, sample_boxes(), bv_image=bv),
            TieredMessage(Tier.KEYPOINTS, [], keypoints=kp),
            build_message(Tier.BOXES_ONLY, sample_boxes()),
        ])

    def test_place_failure_raises_unavailable(self):
        arena = ShmArena(prefix="repro-test")
        arena._sequence = -1  # force a name collision with ourselves
        ref = arena.place([np.arange(4.0)])
        arena._sequence = -1
        with pytest.raises(ShmUnavailableError):
            arena.place([np.arange(4.0)])
        arena.release(ref)


class TestShmEnvelope:
    def test_shm_pair_roundtrip(self):
        ref = ShmPairRef(name="psm_abc123", ego_len=1024, other_len=2048)
        request = ServiceRequest(request_id=7, shm=ref, deadline_ms=250)
        assert request.kind == "shm-pair"
        decoded = decode_request(request.encode())
        assert decoded.shm == ref
        assert decoded.request_id == 7
        assert decoded.deadline_ms == 250
        assert decoded.index is None and decoded.ego is None

    def test_exactly_one_request_form(self):
        ref = ShmPairRef(name="x", ego_len=1, other_len=1)
        with pytest.raises(ValueError):
            ServiceRequest(request_id=1, index=0, shm=ref)

    def test_ref_validation(self):
        with pytest.raises(ValueError):
            ShmPairRef(name="", ego_len=1, other_len=1)
        with pytest.raises(ValueError):
            ShmPairRef(name="x" * 256, ego_len=1, other_len=1)
        with pytest.raises(ValueError):
            ShmPairRef(name="ség", ego_len=1, other_len=1)
        with pytest.raises(ValueError):
            ShmPairRef(name="x", ego_len=-1, other_len=1)

    def test_truncated_payload_is_codec_error(self):
        encoded = ServiceRequest(
            request_id=1, shm=ShmPairRef(name="abcdef", ego_len=4,
                                         other_len=4)).encode()
        # Chop one byte off the segment name; the CRC framing catches
        # byte flips, so rebuild a shorter frame instead: flip the name
        # length to promise more than the payload holds.
        broken = bytearray(encoded)
        # name-length byte sits after the 14-byte request head and the
        # two u32 lengths of the shm block.
        offset = struct.calcsize("<4sIBBI") + 8
        broken[offset] = 250
        with pytest.raises(CodecError):
            decode_request(bytes(broken))


class TestShmTransport:
    def scan_request_messages(self):
        dataset = V2VDatasetSim(DATASET)
        pair = dataset[0].pair
        ego = build_message(Tier.FULL_SCAN, [], cloud=pair.ego_cloud)
        other = build_message(Tier.FULL_SCAN, [], cloud=pair.other_cloud)
        return ego, other

    def test_request_shm_matches_wire_path(self):
        ego, other = self.scan_request_messages()

        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=2,
                                   heartbeat_interval=0.05)
            service = PoseService(config)
            await service.start()
            server = ServiceServer(service)
            await server.start()
            client = await ServiceClient.connect(server.host, server.port)
            try:
                via_shm = await client.request_shm(ego, other)
                via_wire = await client.request(ServiceRequest(
                    request_id=1, ego=ego, other=other))
                counters = service.registry.counter_values("service/shm/")
            finally:
                await client.close()
                await server.stop()
                await service.stop()
            return via_shm, via_wire, counters

        via_shm, via_wire, counters = run(scenario())
        assert via_shm.status == "ok"
        # The client reallocates ids per request, so compare payloads.
        for field in ("status", "success", "degradation", "tx", "ty",
                      "theta", "inliers_bv", "inliers_box"):
            assert getattr(via_shm, field) == getattr(via_wire, field)
        assert counters["service/shm/requests"] == 1
        assert not leaked_segments()

    def test_unresolvable_descriptor_gets_typed_response(self):
        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=2,
                                   heartbeat_interval=0.05)
            service = PoseService(config)
            await service.start()
            server = ServiceServer(service)
            await server.start()
            client = await ServiceClient.connect(server.host, server.port)
            try:
                response = await client.request(ServiceRequest(
                    request_id=1,
                    shm=ShmPairRef(name="no-such-segment",
                                   ego_len=64, other_len=64)))
                counters = service.registry.counter_values("service/shm/")
            finally:
                await client.close()
                await server.stop()
                await service.stop()
            return response, counters

        response, counters = run(scenario())
        assert response.status == "shed"
        assert response.failure_reason == "ShmResolveError"
        assert counters["service/shm/resolve_failures"] == 1

    def test_unresolved_descriptor_refused_at_admission(self):
        # Defense in depth: a descriptor that somehow bypasses the
        # transport must be refused, not guessed at.
        from repro.service import ServiceUnsupported

        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=2)
            async with PoseService(config) as service:
                with pytest.raises(ServiceUnsupported):
                    service.submit_nowait(ServiceRequest(
                        request_id=1,
                        shm=ShmPairRef(name="x", ego_len=1, other_len=1)))

        run(scenario())


class TestChaosLifecycle:
    def test_chaos_faults_leak_no_segments(self, tmp_path):
        """Kill/hang/raise faults mid-run: every request answered,
        workers restarted, zero segments left in /dev/shm."""
        ego, other = TestShmTransport().scan_request_messages()
        fault = WorkerFault(kind="kill", indices=(1,),
                            once_dir=str(tmp_path))

        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=2,
                                   batch_size=2, heartbeat_interval=0.05,
                                   fault=fault)
            service = PoseService(config)
            await service.start()
            try:
                # Interleave indexed requests (fault carrier: index 1
                # kills its worker once) with scan pairs riding the shm
                # data plane.
                futures = [service.submit_nowait(ServiceRequest(
                    request_id=10 + n, ego=ego, other=other))
                    for n in range(3)]
                futures += [service.submit_nowait(ServiceRequest(
                    request_id=n + 1, index=n % 2)) for n in range(4)]
                responses = await asyncio.gather(*futures)
            finally:
                await service.stop()
            counters = service.registry.counter_values("service/")
            gauges = service.registry.gauges
            return responses, counters, gauges

        responses, counters, gauges = run(scenario())
        assert len(responses) == 7  # every admitted request answered
        assert all(r.status in ("ok", "exhausted") for r in responses)
        assert counters.get("service/worker_restarts", 0) >= 1
        assert counters.get("service/shm/segments", 0) >= 1
        assert gauges["service/shm/segments_leaked"].value == 0
        assert not leaked_segments()

    def test_drain_releases_all_segments(self):
        ego, other = TestShmTransport().scan_request_messages()

        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=2,
                                   heartbeat_interval=0.05)
            service = PoseService(config)
            await service.start()
            futures = [service.submit_nowait(ServiceRequest(
                request_id=n + 1, ego=ego, other=other))
                for n in range(4)]
            await service.stop()  # graceful drain
            responses = [f.result() for f in futures]
            arena_active = (service.arena.active
                            if service.arena is not None else 0)
            return responses, arena_active

        responses, arena_active = run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert arena_active == 0
        assert not leaked_segments()
