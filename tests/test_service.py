"""Tests for the always-on pose service (:mod:`repro.service`).

Fast, deterministic versions of the chaos-soak contract
(``benchmarks/test_service_soak.py`` runs the sustained version):

* burst admission against a bounded queue sheds *exactly* the overflow;
* clean-path parity — a service answer for dataset pair ``i`` is
  byte-identical to the sweep engine's outcome for pair ``i``;
* an admitted request always gets a response: through worker kills,
  hangs, per-pair raises, deadlines, and both shutdown modes;
* the TCP transport survives malformed frames and maps admission
  rejections onto typed wire responses.

No pytest-asyncio in the toolchain: each test drives its own loop via
``asyncio.run`` with a hard timeout, so a regression hangs a test, not
the suite.
"""

from __future__ import annotations

import asyncio
import signal
import struct
import subprocess
import sys

import pytest

from repro.comms.envelope import ServiceRequest
from repro.comms.tiers import Tier, build_message
from repro.detection.simulated import COBEVT_PROFILE, SimulatedDetector
from repro.experiments.common import detect_for_pair, run_pose_recovery_sweep
from repro.runtime.faults import WorkerFault
from repro.service import (
    PoseService,
    ServiceClient,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    ServiceServer,
    ServiceUnsupported,
    run_load,
)
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

PAIRS = 6
DATASET = DatasetConfig(num_pairs=PAIRS, seed=2024)


def service_config(**overrides) -> ServiceConfig:
    base = dict(dataset_config=DATASET, workers=2, batch_size=4,
                batch_window=0.001, heartbeat_interval=0.05)
    base.update(overrides)
    return ServiceConfig(**base)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


def indexed(index: int, *, request_id: int | None = None,
            deadline_ms: int = 0) -> ServiceRequest:
    return ServiceRequest(request_id=request_id or index + 1, index=index,
                         deadline_ms=deadline_ms)


def counters(service: PoseService) -> dict[str, int]:
    snapshot = service.registry.snapshot().get("counters", {})
    return {key.removeprefix("service/"): value
            for key, value in snapshot.items()
            if key.startswith("service/")}


class TestAdmission:
    def test_burst_sheds_exactly_the_overflow(self):
        """B synchronous submissions against a queue of depth Q yield
        exactly B - Q typed rejections."""
        async def scenario():
            async with PoseService(service_config(queue_limit=3)) as svc:
                futures, rejected = [], 0
                for i in range(10):
                    try:
                        futures.append(svc.submit_nowait(indexed(
                            i % PAIRS, request_id=i + 1)))
                    except ServiceOverloaded:
                        rejected += 1
                responses = await asyncio.gather(*futures)
                return rejected, responses, counters(svc)

        rejected, responses, stats = run(scenario())
        assert rejected == 7
        assert [r.status for r in responses] == ["ok"] * 3
        assert stats["shed"] == 7
        assert stats["admitted"] == 3

    def test_submit_before_start_raises_closed(self):
        async def scenario():
            svc = PoseService(service_config())
            with pytest.raises(ServiceClosed):
                svc.submit_nowait(indexed(0))

        run(scenario())

    def test_out_of_range_index_rejected(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                with pytest.raises(ServiceUnsupported):
                    svc.submit_nowait(indexed(PAIRS))
                return counters(svc)

        assert run(scenario())["rejected_unsupported"] == 1

    def test_scan_pair_needs_full_scan_ego(self):
        async def scenario():
            message = build_message(Tier.BOXES_ONLY, [])
            async with PoseService(service_config()) as svc:
                with pytest.raises(ServiceUnsupported):
                    svc.submit_nowait(ServiceRequest(
                        request_id=1, ego=message, other=message))

        run(scenario())


class TestParity:
    def test_clean_path_matches_sweep_exactly(self):
        """The acceptance criterion in miniature: service poses are
        byte-identical to the direct sweep (same chunk runner, same
        seeds).  The benchmark runs the full 40-pair version."""
        sweep = run_pose_recovery_sweep(
            V2VDatasetSim(DATASET), include_vips=False, seed=7)

        async def scenario():
            async with PoseService(service_config()) as svc:
                return await asyncio.gather(*[
                    svc.submit_nowait(indexed(i)) for i in range(PAIRS)])

        responses = run(scenario())
        for outcome, response in zip(sweep, responses):
            assert response.status == "ok"
            assert response.tx == outcome.tx
            assert response.ty == outcome.ty
            assert response.theta == outcome.theta
            assert response.success == outcome.success
            assert response.degradation == outcome.degradation
            assert response.inliers_bv == outcome.inliers_bv
            assert response.inliers_box == outcome.inliers_box

    def test_scan_pair_recovers_same_pose_as_indexed(self):
        """The message path (raw tier payloads in the request) lands on
        the same pose the indexed path computes for that pair."""
        dataset = V2VDatasetSim(DATASET)
        pair = dataset[0].pair
        detector = SimulatedDetector(COBEVT_PROFILE)
        ego_dets, other_dets = detect_for_pair(pair, detector, 7, 0)
        ego = build_message(Tier.FULL_SCAN, [d.box for d in ego_dets],
                            cloud=pair.ego_cloud)
        other = build_message(Tier.FULL_SCAN, [d.box for d in other_dets],
                              cloud=pair.other_cloud)

        async def scenario():
            async with PoseService(service_config()) as svc:
                return await asyncio.gather(
                    svc.submit_nowait(indexed(0)),
                    svc.submit_nowait(ServiceRequest(
                        request_id=50, ego=ego, other=other)))

        by_index, by_scan = run(scenario())
        assert by_scan.status == "ok"
        assert by_scan.success
        # Different RANSAC stream than the sweep's (seeded per request
        # id), so same pose up to convergence, not bit-equality.
        assert abs(by_scan.tx - by_index.tx) < 0.5
        assert abs(by_scan.ty - by_index.ty) < 0.5
        assert abs(by_scan.theta - by_index.theta) < 0.05


class TestDeadline:
    def test_expired_deadline_resolves_typed(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                doomed = svc.submit_nowait(indexed(0, deadline_ms=1))
                clean = svc.submit_nowait(indexed(1, request_id=9))
                return await doomed, await clean, counters(svc)

        doomed, clean, stats = run(scenario())
        assert doomed.status == "deadline"
        assert doomed.failure_reason == "deadline-exceeded"
        assert not doomed.success
        assert clean.status == "ok"
        assert stats["deadline_expired"] == 1
        assert stats["responses"] == 2


class TestChaos:
    def test_worker_kill_restarts_and_answers(self, tmp_path):
        fault = WorkerFault(kind="kill", indices=(3,),
                            once_dir=str(tmp_path))

        async def scenario():
            async with PoseService(service_config(fault=fault)) as svc:
                responses = await asyncio.gather(*[
                    svc.submit_nowait(indexed(i)) for i in range(PAIRS)])
                return responses, counters(svc)

        responses, stats = run(scenario())
        assert [r.status for r in responses] == ["ok"] * PAIRS
        assert stats["worker_restarts"] == 1
        assert stats["batch_retries"] >= 1
        assert stats["responses"] == PAIRS

    def test_worker_hang_is_killed_and_retried(self, tmp_path):
        fault = WorkerFault(kind="hang", indices=(1,),
                            once_dir=str(tmp_path), hang_seconds=5.0)

        async def scenario():
            config = service_config(fault=fault, batch_timeout=1.5)
            async with PoseService(config) as svc:
                responses = await asyncio.gather(*[
                    svc.submit_nowait(indexed(i)) for i in range(4)])
                return responses, counters(svc)

        responses, stats = run(scenario())
        assert [r.status for r in responses] == ["ok"] * 4
        assert stats["hangs"] == 1
        assert stats["worker_restarts"] == 1

    def test_raise_fault_degrades_one_pair_without_restart(self, tmp_path):
        """A pair evaluation that throws is the engine's per-pair
        capture, not a worker fault: one flagged answer, zero
        restarts."""
        fault = WorkerFault(kind="raise", indices=(2,),
                            once_dir=str(tmp_path))

        async def scenario():
            async with PoseService(service_config(fault=fault)) as svc:
                responses = await asyncio.gather(*[
                    svc.submit_nowait(indexed(i)) for i in range(4)])
                return responses, counters(svc)

        responses, stats = run(scenario())
        assert [r.status for r in responses] == ["ok"] * 4
        hurt = responses[2]
        assert not hurt.success
        assert hurt.failure_reason == "evaluation-error"
        assert hurt.degradation is None
        assert (hurt.tx, hurt.ty, hurt.theta) == (0.0, 0.0, 0.0)
        assert "worker_restarts" not in stats
        assert all(responses[i].success for i in (0, 1, 3))


class TestShutdown:
    def test_stop_is_idempotent_sequential(self):
        async def scenario():
            svc = PoseService(service_config())
            await svc.start()
            await svc.stop()
            await svc.stop()
            with pytest.raises(ServiceClosed):
                svc.submit_nowait(indexed(0))

        run(scenario())

    def test_stop_is_idempotent_concurrent(self):
        async def scenario():
            svc = PoseService(service_config())
            await svc.start()
            future = svc.submit_nowait(indexed(0))
            await asyncio.gather(svc.stop(), svc.stop())
            assert (await future).status == "ok"

        run(scenario())

    def test_stop_without_drain_sheds_queued(self):
        async def scenario():
            config = service_config(batch_size=1, workers=1,
                                    batch_window=0.0)
            svc = PoseService(config)
            await svc.start()
            futures = [svc.submit_nowait(indexed(i, request_id=i + 1))
                       for i in range(5)]
            await svc.stop(drain=False)
            responses = await asyncio.gather(*futures)
            return responses, counters(svc)

        responses, stats = run(scenario())
        statuses = [r.status for r in responses]
        assert set(statuses) <= {"ok", "shed"}
        assert statuses.count("shed") == stats.get("shed_on_shutdown", 0)
        assert statuses.count("shed") >= 1
        assert stats["responses"] == 5
        shed = next(r for r in responses if r.status == "shed")
        assert shed.failure_reason == "service-shutdown"

    def test_engine_shutdown_pool_idempotent(self):
        from repro.runtime.engine import shutdown_pool
        shutdown_pool()
        shutdown_pool()

    def test_worker_pool_shutdown_idempotent(self):
        from repro.runtime.pool import WorkerPool
        pool = WorkerPool(1)
        assert pool.submit(abs, -3).result() == 3
        pool.shutdown()
        pool.shutdown()
        assert not pool.started

    def test_serve_subprocess_drains_on_sigterm(self, tmp_path):
        """The ``repro serve`` process answers requests, then SIGTERM
        drains it: exit 0, every admitted request responded."""
        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
             "--pairs", "2", "--workers", "2"],
            stdout=subprocess.PIPE, text=True)
        try:
            line = process.stdout.readline()
            assert "listening on" in line, line
            port = int(line.split("listening on ")[1].split()[0]
                       .rsplit(":", 1)[1])

            async def drive():
                client = await ServiceClient.connect("127.0.0.1", port)
                responses = await asyncio.gather(
                    client.request(index=0), client.request(index=1))
                await client.close()
                return responses

            responses = run(drive())
            assert [r.status for r in responses] == ["ok", "ok"]
            process.send_signal(signal.SIGTERM)
            out, _err = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "drained;" in out
        assert "admitted=2" in out
        assert "responses=2" in out


class TestServer:
    def test_bad_frame_counted_connection_survives(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                server = ServiceServer(svc)
                await server.start()
                client = await ServiceClient.connect("127.0.0.1",
                                                     server.port)
                first = await client.request(index=0)
                garbage = b"SQ01" + b"\x00" * 20
                client._writer.write(
                    struct.pack("<I", len(garbage)) + garbage)
                await client._writer.drain()
                second = await client.request(index=1)
                await client.close()
                await server.stop()
                return first, second, counters(svc)

        first, second, stats = run(scenario())
        assert first.status == "ok"
        assert second.status == "ok"
        assert stats["bad_frames"] == 1

    def test_admission_rejection_becomes_wire_shed(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                server = ServiceServer(svc)
                await server.start()
                client = await ServiceClient.connect("127.0.0.1",
                                                     server.port)
                response = await client.request(
                    ServiceRequest(request_id=1, index=99))
                await client.close()
                await server.stop()
                return response

        response = run(scenario())
        assert response.status == "shed"
        assert response.failure_reason == "ServiceUnsupported"
        assert not response.success

    def test_request_after_close_fails_fast(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                server = ServiceServer(svc)
                await server.start()
                client = await ServiceClient.connect("127.0.0.1",
                                                     server.port)
                await client.close()
                with pytest.raises(ConnectionError):
                    await client.request(index=0)
                await server.stop()

        run(scenario())


class TestLoad:
    def test_closed_loop_summary_accounts_for_everything(self):
        async def scenario():
            async with PoseService(service_config()) as svc:
                return await run_load(svc.submit, requests=8,
                                      concurrency=2, num_pairs=PAIRS)

        summary = run(scenario())
        assert summary.attempted == 8
        assert summary.responded == 8
        assert summary.rejected == 0
        assert summary.errors == 0
        assert summary.statuses == {"ok": 8}
        assert summary.successes >= 6
        payload = summary.to_dict()
        assert payload["responded"] == 8
        assert payload["sustained_rps"] > 0
        assert payload["p99_ms"] >= payload["p50_ms"] > 0
