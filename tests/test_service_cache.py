"""Tests for the warm worker cache and the adaptive batch controller.

The cache contract: byte-budget LRU bounds compose with the entry
bound, counters are exact, and — the service-level guarantee — cache
on/off is *response-byte-identical* (the cache only short-circuits a
deterministic recomputation).  The controller contract: a fixed
sequence of queue-depth observations under a fixed clock always walks
the same bounded ladder, with hysteresis and cooldown.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.comms.envelope import ServiceRequest
from repro.comms.tiers import Tier, build_message
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.cache import FeatureCache
from repro.service import (
    AdaptiveBatchController,
    BatchControllerConfig,
    PoseService,
    ServiceConfig,
)
from repro.service.worker import _digest, _features_nbytes
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

DATASET = DatasetConfig(num_pairs=2, seed=2024)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


def scan_messages(index: int = 0):
    pair = V2VDatasetSim(DATASET)[index].pair
    return (build_message(Tier.FULL_SCAN, [], cloud=pair.ego_cloud),
            build_message(Tier.FULL_SCAN, [], cloud=pair.other_cloud))


class TestByteBudget:
    def test_byte_budget_evicts_least_recent(self):
        cache = FeatureCache(max_entries=64, max_bytes=100)
        cache.put("a", "A", nbytes=40)
        cache.put("b", "B", nbytes=40)
        cache.put("c", "C", nbytes=40)  # 120 > 100: evict "a"
        assert "a" not in cache and "b" in cache and "c" in cache
        assert cache.evictions == 1
        assert cache.total_bytes == 80

    def test_recency_protects_entries(self):
        cache = FeatureCache(max_entries=64, max_bytes=100)
        cache.put("a", "A", nbytes=40)
        cache.put("b", "B", nbytes=40)
        assert cache.get("a") == "A"  # refresh "a"
        cache.put("c", "C", nbytes=40)  # now "b" is least recent
        assert "a" in cache and "b" not in cache

    def test_oversized_entry_degrades_to_cache_of_one(self):
        cache = FeatureCache(max_entries=64, max_bytes=100)
        cache.put("a", "A", nbytes=40)
        cache.put("huge", "H", nbytes=500)
        assert "huge" in cache and "a" not in cache
        assert len(cache) == 1  # stored despite exceeding the budget

    def test_refresh_replaces_size(self):
        cache = FeatureCache(max_entries=64, max_bytes=100)
        cache.put("a", "A", nbytes=90)
        cache.put("a", "A2", nbytes=10)
        assert cache.total_bytes == 10
        cache.put("b", "B", nbytes=80)
        assert "a" in cache and "b" in cache

    def test_entry_bound_still_applies(self):
        cache = FeatureCache(max_entries=2, max_bytes=10**9)
        for key in "abc":
            cache.put(key, key, nbytes=1)
        assert len(cache) == 2 and "a" not in cache

    def test_clear_resets_byte_accounting(self):
        cache = FeatureCache(max_entries=4, max_bytes=100)
        cache.put("a", "A", nbytes=40)
        cache.clear()
        assert cache.total_bytes == 0 and len(cache) == 0


class TestWorkerHelpers:
    def test_digest_separates_content_and_shape(self):
        a = np.arange(6, dtype=np.float64)
        assert _digest(a) == _digest(a.copy())
        assert _digest(a) != _digest(a.reshape(2, 3))
        assert _digest(a) != _digest(a.astype(np.float32))
        assert _digest(None) != _digest(np.empty(0))
        b = a.copy()
        b[0] += 1
        assert _digest(a) != _digest(b)

    def test_features_nbytes_walks_attributes(self):
        class Inner:
            __slots__ = ("image",)

            def __init__(self):
                self.image = np.zeros((4, 4))

        class Outer:
            def __init__(self):
                self.inner = Inner()
                self.xy = np.zeros((3, 2), dtype=np.int64)
                self.name = "not an array"

        expected = 4 * 4 * 8 + 3 * 2 * 8
        assert _features_nbytes(Outer()) == expected
        assert _features_nbytes(np.zeros(10)) == 80
        assert _features_nbytes(None) == 0


class TestWarmCacheService:
    def test_hit_counters_monotonic_across_requests(self):
        """Repeated identical scan pairs: the second and later requests
        hit the warm cache, and the merged counters only ever grow."""
        ego, other = scan_messages()

        async def scenario():
            config = ServiceConfig(dataset_config=DATASET, workers=1,
                                   heartbeat_interval=0.05)
            async with PoseService(config) as service:
                observed = []
                for n in range(3):
                    await service.submit(ServiceRequest(
                        request_id=1, ego=ego, other=other))
                    counters = service.registry.counter_values(
                        "service/worker_cache/")
                    observed.append(
                        (counters.get("service/worker_cache/hits", 0),
                         counters.get("service/worker_cache/misses", 0)))
                return observed

        observed = run(scenario())
        hits = [h for h, _ in observed]
        assert hits == sorted(hits)  # monotonic
        # First request misses both sides, later ones hit both.
        assert observed[0] == (0, 2)
        assert observed[-1][0] >= 4

    def test_cache_on_off_byte_identical(self):
        """The acceptance contract: every response field equal with the
        cache enabled and disabled, across full-scan and BV tiers."""
        from repro.core.pipeline import BBAlign

        ego, other_full = scan_messages()
        aligner = BBAlign()
        other_bv = build_message(
            Tier.BV_IMAGE, [],
            features=aligner.extract_features(
                V2VDatasetSim(DATASET)[0].pair.other_cloud))
        requests = [
            ServiceRequest(request_id=1, ego=ego, other=other_full),
            ServiceRequest(request_id=2, ego=ego, other=other_bv),
            ServiceRequest(request_id=1, ego=ego, other=other_full),
        ]

        async def leg(cache_mb: float):
            config = ServiceConfig(dataset_config=DATASET, workers=1,
                                   worker_cache_mb=cache_mb,
                                   heartbeat_interval=0.05)
            async with PoseService(config) as service:
                return [await service.submit(request)
                        for request in requests]

        warm = run(leg(64.0))
        cold = run(leg(0.0))
        assert warm == cold

    def test_zero_budget_disables_storage(self):
        cache = FeatureCache(max_entries=0)
        cache.put("a", "A", nbytes=1)
        assert cache.get("a") is None
        assert cache.misses == 1


def make_controller(**overrides):
    config = dict(min_batch=1, max_batch=8, base_window=0.002,
                  step_up_after=2, step_down_after=3, cooldown=0.05)
    config.update(overrides)
    clock = FakeClock()
    return AdaptiveBatchController(BatchControllerConfig(**config),
                                   clock=clock), clock


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestAdaptiveBatchController:
    def test_steps_up_after_consecutive_deep_samples(self):
        controller, clock = make_controller()
        assert controller.batch_size == 1
        assert not controller.observe(5)  # first deep sample: no step
        clock.advance(0.1)
        assert controller.observe(5)  # second: step up
        assert controller.batch_size == 2

    def test_mid_band_resets_streaks(self):
        controller, clock = make_controller()
        controller.observe(5)
        clock.advance(0.1)
        controller.observe(1)  # mid band for size 1? depth 1 <= 0.5? no:
        # low_factor*1 = 0.5, high_factor*1 = 2 → depth 1 is mid band.
        clock.advance(0.1)
        assert not controller.observe(5)  # streak restarted
        assert controller.batch_size == 1

    def test_cooldown_blocks_consecutive_steps(self):
        controller, clock = make_controller(cooldown=1.0)
        controller.observe(50)
        clock.advance(2.0)
        assert controller.observe(50)  # step 1 → size 2
        assert not controller.observe(50)  # within cooldown
        assert not controller.observe(50)
        assert controller.batch_size == 2
        clock.advance(2.0)
        # The streak kept accumulating through the cooldown, so the
        # first qualifying sample after expiry steps immediately.
        assert controller.observe(50)
        assert controller.batch_size == 4

    def test_ladder_is_bounded(self):
        controller, clock = make_controller(max_batch=4, cooldown=0.0)
        for _ in range(20):
            controller.observe(1000)
            clock.advance(1.0)
        assert controller.batch_size == 4
        for _ in range(20):
            controller.observe(0)
            clock.advance(1.0)
        assert controller.batch_size == 1

    def test_step_down_is_slower(self):
        controller, clock = make_controller(cooldown=0.0)
        for _ in range(4):
            controller.observe(100)
            clock.advance(1.0)
        assert controller.batch_size == 4
        controller.observe(0)
        controller.observe(0)
        assert controller.batch_size == 4  # step_down_after=3 not met
        controller.observe(0)
        assert controller.batch_size == 2

    def test_window_scales_with_rung(self):
        controller, clock = make_controller(cooldown=0.0)
        base = controller.batch_window
        controller.observe(100)
        clock.advance(1.0)
        controller.observe(100)
        assert controller.batch_window == pytest.approx(2 * base)

    def test_deterministic_replay(self):
        samples = [9, 9, 0, 7, 7, 0, 0, 0, 1, 4, 4, 0, 0, 0, 12, 12]
        walks = []
        for _ in range(2):
            controller, clock = make_controller(cooldown=0.0)
            walk = []
            for depth in samples:
                controller.observe(depth)
                clock.advance(0.01)
                walk.append(controller.batch_size)
            walks.append(walk)
        assert walks[0] == walks[1]

    def test_counters_record_into_ambient_registry(self):
        registry = MetricsRegistry()
        controller, clock = make_controller(cooldown=0.0)
        with use_registry(registry):
            for _ in range(2):
                controller.observe(100)
                clock.advance(1.0)
        assert registry.counter(
            "service/batch_controller/step_up").value == 1

    def test_initial_snaps_to_ladder_rung(self):
        controller = AdaptiveBatchController(
            BatchControllerConfig(min_batch=1, max_batch=16), initial=6)
        assert controller.batch_size == 4  # closest rung <= 6

    def test_service_uses_controller_limits(self):
        service = PoseService(ServiceConfig(
            dataset_config=DATASET, adaptive_batch=True, batch_size=4))
        size, window = service._batch_limits()
        assert size == 4
        assert window == service._controller.batch_window

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BatchControllerConfig(min_batch=0)
        with pytest.raises(ValueError):
            BatchControllerConfig(max_batch=1, min_batch=2)
        with pytest.raises(ValueError):
            BatchControllerConfig(high_factor=0.5, low_factor=0.5)
