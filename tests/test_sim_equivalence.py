"""Equivalence tests for the vectorized simulation hot path.

Every rework in the simulation pipeline kept its pre-rework
implementation as a ``_reference_*`` twin (see CONTRIBUTING.md); these
tests pin the contract: the vectorized paths produce **byte-identical**
outputs — same RNG draws, same floats, same bits — so every experiment,
figure and cached artifact is unchanged by the speedups.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boxes.box import Box2D
from repro.boxes.iou import _reference_iou_matrix, iou_matrix
from repro.geometry.polygon import (
    convex_polygon_clip,
    convex_polygon_clip_batch,
)
from repro.geometry.se2 import SE2
from repro.pointcloud.distortion import MotionState
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.lidar import (
    LidarConfig,
    _reference_simulate_scan,
    simulate_scan,
)
from repro.simulation.scenario import (
    _compensate_on_grid,
    _reference_visible_objects,
    _visible_objects,
    compensate_self_motion_distortion,
    replace_world_vehicles,
)
from repro.simulation.world import (
    ScenarioKind,
    WorldConfig,
    WorldModel,
    _reference_generate_world,
    generate_world,
    share_static_geometry,
)

MOTION = MotionState(velocity_x=9.0, velocity_y=0.4, yaw_rate=0.06)
POSE = SE2(0.35, 4.0, -1.5)


def _cloud_bytes(cloud) -> tuple:
    return (cloud.points.tobytes(),
            None if cloud.timestamps is None else cloud.timestamps.tobytes(),
            None if cloud.labels is None else cloud.labels.tobytes())


def _assert_scans_identical(world, pose, config, motion, seed=5):
    new = simulate_scan(world, pose, config,
                        rng=np.random.default_rng(seed), motion=motion)
    ref = _reference_simulate_scan(world, pose, config,
                                   rng=np.random.default_rng(seed),
                                   motion=motion)
    assert _cloud_bytes(new) == _cloud_bytes(ref)
    return new


# ----------------------------------------------------------------------
# simulate_scan vs _reference_simulate_scan
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", list(ScenarioKind))
def test_simulate_scan_identical_across_kinds(kind):
    world = generate_world(WorldConfig(kind=kind),
                           np.random.default_rng(11))
    cloud = _assert_scans_identical(world, POSE, LidarConfig(), MOTION)
    if kind is not ScenarioKind.OPEN:
        assert len(cloud) > 0


@pytest.mark.parametrize("config", [
    LidarConfig(include_ground=False),
    LidarConfig(dropout=0.0),
    LidarConfig(dropout=0.5),
    LidarConfig(range_noise=0.0),
    LidarConfig(num_channels=40, elevation_min_deg=-22.0,
                elevation_max_deg=18.0, azimuth_steps=1500,
                sensor_height=2.1),
    LidarConfig(max_hits_per_ray=1),
], ids=["no-ground", "no-dropout", "heavy-dropout", "no-noise",
        "heterogeneous-40ch", "single-hit"])
def test_simulate_scan_identical_config_variants(config):
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(12))
    _assert_scans_identical(world, POSE, config, MOTION)


def test_simulate_scan_identical_without_motion():
    world = generate_world(WorldConfig(kind=ScenarioKind.URBAN),
                           np.random.default_rng(13))
    _assert_scans_identical(world, POSE, LidarConfig(), None)


def test_simulate_scan_identical_empty_world():
    empty = WorldModel(buildings=(), trees=(), poles=(), vehicles=(),
                       extent=100.0, road=None)
    ground_only = _assert_scans_identical(empty, POSE, LidarConfig(),
                                          MOTION)
    assert len(ground_only) > 0  # descending beams still hit the ground
    nothing = _assert_scans_identical(
        empty, POSE, LidarConfig(include_ground=False), MOTION)
    assert len(nothing) == 0


def test_simulate_scan_identical_with_warm_cache():
    """The lazily cached obstacle arrays change no bytes."""
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(14))
    cold = simulate_scan(world, POSE, rng=np.random.default_rng(3))
    warm = simulate_scan(world, POSE, rng=np.random.default_rng(3))
    assert _cloud_bytes(cold) == _cloud_bytes(warm)


# ----------------------------------------------------------------------
# generate_world vs _reference_generate_world
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", list(ScenarioKind))
def test_generate_world_identical(kind):
    config = WorldConfig(kind=kind)
    new = generate_world(config, np.random.default_rng(21))
    ref = _reference_generate_world(config, np.random.default_rng(21))
    assert new.buildings == ref.buildings
    assert new.trees == ref.trees
    assert new.poles == ref.poles
    assert new.vehicles == ref.vehicles
    assert new.extent == ref.extent


# ----------------------------------------------------------------------
# _visible_objects vs _reference_visible_objects
# ----------------------------------------------------------------------
def test_visible_objects_identical():
    world = generate_world(WorldConfig(kind=ScenarioKind.URBAN),
                           np.random.default_rng(31))
    cloud = simulate_scan(world, POSE, rng=np.random.default_rng(4),
                          motion=MOTION)
    residual = MotionState(velocity_x=2.7, velocity_y=0.12,
                           yaw_rate=0.018)
    for res, exclude in [(None, -1), (residual, -1),
                         (residual, world.vehicles[0].vehicle_id
                          if world.vehicles else -1)]:
        new = _visible_objects(cloud, world.vehicles, POSE, 8, exclude,
                               res, 0.1)
        ref = _reference_visible_objects(cloud, world.vehicles, POSE, 8,
                                         exclude, res, 0.1)
        assert new == ref
    assert any(len(_visible_objects(cloud, world.vehicles, POSE, m, -1))
               > 0 for m in (1, 8))


def test_visible_objects_empty_inputs():
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(32))
    cloud = simulate_scan(world, POSE, rng=np.random.default_rng(5))
    assert _visible_objects(cloud, (), POSE, 8, -1) == ()
    empty_cloud = simulate_scan(
        WorldModel(buildings=(), trees=(), poles=(), vehicles=(),
                   extent=50.0, road=None),
        POSE, LidarConfig(include_ground=False),
        rng=np.random.default_rng(5))
    assert (_visible_objects(empty_cloud, world.vehicles, POSE, 8, -1)
            == _reference_visible_objects(empty_cloud, world.vehicles,
                                          POSE, 8, -1))


# ----------------------------------------------------------------------
# _compensate_on_grid vs the general de-skew routine
# ----------------------------------------------------------------------
def test_compensate_on_grid_identical():
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(41))
    for config in (LidarConfig(), LidarConfig(num_channels=40,
                                              azimuth_steps=1500)):
        cloud = simulate_scan(world, POSE, config,
                              rng=np.random.default_rng(6), motion=MOTION)
        grid = _compensate_on_grid(cloud, MOTION, config.scan_duration,
                                   config.azimuth_steps)
        general = compensate_self_motion_distortion(cloud, MOTION,
                                                    config.scan_duration)
        assert _cloud_bytes(grid) == _cloud_bytes(general)


def test_compensate_on_grid_fallback_off_grid():
    """Timestamps off the azimuth grid take the general (exact) path."""
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(42))
    cloud = simulate_scan(world, POSE, rng=np.random.default_rng(7),
                          motion=MOTION)
    shifted = type(cloud)(cloud.points, cloud.timestamps * 0.97 + 0.01,
                          cloud.labels)
    grid = _compensate_on_grid(shifted, MOTION, 0.1, 1800)
    general = compensate_self_motion_distortion(shifted, MOTION, 0.1)
    assert _cloud_bytes(grid) == _cloud_bytes(general)


# ----------------------------------------------------------------------
# Batched polygon clipping and the IoU matrix
# ----------------------------------------------------------------------
def _rect(cx, cy, w, h, yaw=0.0):
    return Box2D(cx, cy, w, h, yaw).corners()


def test_polygon_clip_batch_identical_including_degenerate():
    cases = [
        (_rect(0, 0, 4, 2), _rect(1, 0.5, 4, 2, 0.3)),    # overlapping
        (_rect(0, 0, 4, 2), _rect(0, 0, 4, 2)),           # identical
        (_rect(0, 0, 4, 2), _rect(100, 0, 4, 2)),         # disjoint
        (_rect(0, 0, 4, 2), _rect(4.0, 0, 4, 2)),         # edge-touching
        (_rect(0, 0, 8, 8), _rect(0, 0, 2, 2, 0.7)),      # clip inside
        (_rect(0, 0, 2, 2, 0.7), _rect(0, 0, 8, 8)),      # subject inside
        (_rect(0, 0, 4, 2), _rect(2.0, 1.0, 4, 2)),       # corner-touching
    ]
    subjects = np.stack([s for s, _ in cases])
    clips = np.stack([c for _, c in cases])
    verts, counts = convex_polygon_clip_batch(subjects, clips)
    for p, (subject, clip) in enumerate(cases):
        scalar = convex_polygon_clip(subject, clip)
        if len(scalar) < 3:
            assert counts[p] < 3
        else:
            assert np.array_equal(verts[p, :counts[p]], scalar)


def test_iou_matrix_identical():
    rng = np.random.default_rng(51)
    boxes_a = [Box2D(float(rng.uniform(-20, 20)),
                     float(rng.uniform(-20, 20)), 4.6, 1.9,
                     float(rng.uniform(-np.pi, np.pi))) for _ in range(15)]
    boxes_b = [Box2D(float(rng.uniform(-20, 20)),
                     float(rng.uniform(-20, 20)), 4.2, 1.8,
                     float(rng.uniform(-np.pi, np.pi))) for _ in range(12)]
    assert np.array_equal(iou_matrix(boxes_a, boxes_b),
                          _reference_iou_matrix(boxes_a, boxes_b))
    # Self-comparison exercises exact-overlap (IoU 1.0) entries.
    assert np.array_equal(iou_matrix(boxes_a, boxes_a),
                          _reference_iou_matrix(boxes_a, boxes_a))
    assert iou_matrix([], boxes_b).shape == (0, 12)
    assert iou_matrix(boxes_a, []).shape == (15, 0)


# ----------------------------------------------------------------------
# Cached static geometry: sharing and invalidation contract
# ----------------------------------------------------------------------
def test_static_geometry_cache_contract():
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(61))
    geometry = world.static_geometry()
    assert world.static_geometry() is geometry  # built once, reused

    # Vehicle swaps reuse the static tuples, so the cache is shared.
    swapped = replace_world_vehicles(world, world.vehicles[:1])
    assert swapped.static_geometry() is geometry

    # A world with *different* static tuples must not inherit the cache.
    rebuilt = WorldModel(buildings=tuple(list(world.buildings)),
                         trees=world.trees, poles=world.poles,
                         vehicles=world.vehicles, extent=world.extent,
                         road=world.road)
    assert rebuilt.buildings is not world.buildings
    share_static_geometry(world, rebuilt)
    assert rebuilt.static_geometry() is not geometry

    # Sharing before the cache is built still ends up with one build.
    fresh = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN),
                           np.random.default_rng(62))
    copy = replace_world_vehicles(fresh, ())
    built = copy.static_geometry()
    assert fresh.static_geometry() is built


# ----------------------------------------------------------------------
# Dataset early-rejection screen
# ----------------------------------------------------------------------
def test_dataset_screen_changes_nothing(monkeypatch):
    """The ego-side early-reject skips work, never changes records."""
    config = DatasetConfig(num_pairs=6, seed=2024)

    screened = [V2VDatasetSim(config)[i] for i in range(6)]

    original = V2VDatasetSim._attempt
    monkeypatch.setattr(
        V2VDatasetSim, "_attempt",
        lambda self, index, attempt, min_common=0:
        original(self, index, attempt, 0))
    unscreened = [V2VDatasetSim(config)[i] for i in range(6)]

    for a, b in zip(screened, unscreened):
        assert a.index == b.index
        assert a.selected == b.selected
        assert a.pair.num_common_vehicles == b.pair.num_common_vehicles
        assert _cloud_bytes(a.pair.ego_cloud) == _cloud_bytes(b.pair.ego_cloud)
        assert (_cloud_bytes(a.pair.other_cloud)
                == _cloud_bytes(b.pair.other_cloud))
        assert a.pair.gt_relative == b.pair.gt_relative
