"""Tests for repro.simulation.dataset."""

import numpy as np
import pytest

from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.world import ScenarioKind


class TestDatasetConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(num_pairs=-1),
        dict(distance_range=(0.0, 10.0)),
        dict(distance_range=(50.0, 10.0)),
        dict(scenario_mix={}),
        dict(scenario_mix={ScenarioKind.URBAN: -1.0}),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DatasetConfig(**kwargs)


class TestV2VDatasetSim:
    def test_length_and_iteration(self, tiny_dataset):
        assert len(tiny_dataset) == 4
        records = list(tiny_dataset)
        assert [r.index for r in records] == [0, 1, 2, 3]

    def test_index_bounds(self, tiny_dataset):
        with pytest.raises(IndexError):
            tiny_dataset[4]
        with pytest.raises(IndexError):
            tiny_dataset[-1]

    def test_random_access_deterministic(self, tiny_dataset):
        a = tiny_dataset[2]
        b = tiny_dataset[2]
        assert a.pair.gt_relative.is_close(b.pair.gt_relative)
        np.testing.assert_array_equal(a.pair.ego_cloud.points,
                                      b.pair.ego_cloud.points)

    def test_access_order_independent(self):
        """dataset[i] must not depend on which indices were generated
        before it."""
        d1 = V2VDatasetSim(DatasetConfig(num_pairs=3, seed=5))
        d2 = V2VDatasetSim(DatasetConfig(num_pairs=3, seed=5))
        _ = d1[0]  # touch another index first
        assert d1[2].pair.gt_relative.is_close(d2[2].pair.gt_relative)

    def test_selection_rule_applied(self, tiny_dataset):
        for record in tiny_dataset:
            if record.selected:
                assert record.pair.num_common_vehicles >= 2

    def test_distances_within_range(self):
        dataset = V2VDatasetSim(DatasetConfig(
            num_pairs=4, seed=1, distance_range=(15.0, 30.0)))
        for record in dataset:
            assert 10.0 <= record.pair.distance <= 40.0

    def test_different_seeds_differ(self):
        a = V2VDatasetSim(DatasetConfig(num_pairs=1, seed=1))[0]
        b = V2VDatasetSim(DatasetConfig(num_pairs=1, seed=2))[0]
        assert not a.pair.gt_relative.is_close(b.pair.gt_relative,
                                               atol_translation=1e-3)

    def test_scenario_mix_respected(self):
        only_urban = V2VDatasetSim(DatasetConfig(
            num_pairs=3, seed=3,
            scenario_mix={ScenarioKind.URBAN: 1.0}))
        for record in only_urban:
            assert record.pair.scenario_kind == ScenarioKind.URBAN

    def test_min_common_zero_disables_selection(self):
        dataset = V2VDatasetSim(DatasetConfig(num_pairs=2, seed=4,
                                              min_common_vehicles=0))
        for record in dataset:
            assert record.selected
