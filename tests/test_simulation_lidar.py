"""Tests for repro.simulation.lidar (the ray-casting scanner)."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointLabel
from repro.pointcloud.distortion import MotionState
from repro.simulation.lidar import LidarConfig, simulate_scan
from repro.simulation.world import (
    Building,
    Pole,
    SimVehicle,
    Tree,
    WorldModel,
)
from repro.boxes.box import Box3D


def single_object_world(**kwargs) -> WorldModel:
    defaults = dict(buildings=(), trees=(), poles=(), vehicles=(),
                    extent=100.0)
    defaults.update(kwargs)
    return WorldModel(**defaults)


class TestLidarConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(num_channels=0),
        dict(elevation_min_deg=10, elevation_max_deg=5),
        dict(max_range=0),
        dict(dropout=1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LidarConfig(**kwargs)

    def test_elevations_ascending(self):
        elev = LidarConfig(num_channels=8).elevations
        assert len(elev) == 8
        assert np.all(np.diff(elev) > 0)


class TestScanGeometry:
    def test_wall_hit_at_correct_distance(self):
        wall = Building(20.0, 0.0, 0.5, 40.0, 0.0, 10.0)
        world = single_object_world(buildings=(wall,))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        assert len(cloud) > 0
        forward = cloud.points[np.abs(cloud.points[:, 1]) < 0.5]
        # Front face of the wall is at x = 19.75.
        assert np.min(forward[:, 0]) == pytest.approx(19.75, abs=0.1)

    def test_heights_above_ground(self):
        wall = Building(15.0, 0.0, 1.0, 30.0, 0.0, 8.0)
        world = single_object_world(buildings=(wall,))
        cfg = LidarConfig(range_noise=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        assert cloud.z.min() >= -0.01
        assert cloud.z.max() <= 8.01

    def test_occlusion_near_blocks_far(self):
        near = Building(10.0, 0.0, 0.5, 20.0, 0.0, 12.0)
        far = Building(30.0, 0.0, 0.5, 20.0, 0.0, 12.0)
        world = single_object_world(buildings=(near, far))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        ahead = cloud.points[(np.abs(cloud.points[:, 1]) < 5.0)
                             & (cloud.points[:, 0] > 0)]
        # The far building (equal height) is fully shadowed.
        assert np.max(ahead[:, 0]) < 15.0

    def test_beam_passes_over_low_obstacle(self):
        low = Building(10.0, 0.0, 0.5, 20.0, 0.0, 1.0)   # 1 m fence
        tall = Building(30.0, 0.0, 0.5, 20.0, 0.0, 15.0)
        world = single_object_world(buildings=(low, tall))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        ahead = cloud.points[(np.abs(cloud.points[:, 1]) < 5.0)
                             & (cloud.points[:, 0] > 20.0)]
        assert len(ahead) > 0  # tall building visible over the fence
        # Every return behind the fence must belong to a beam that was
        # above the fence top where it crossed the fence plane (x=9.75).
        sensor_h = cfg.sensor_height
        z_at_fence = sensor_h + (9.75 / ahead[:, 0]) * (ahead[:, 2]
                                                        - sensor_h)
        assert z_at_fence.min() > 1.0 - 0.05

    def test_beam_passes_under_crown(self):
        tree = Tree(x=10.0, y=0.0, trunk_radius=0.01, crown_radius=3.0,
                    crown_base=3.0, height=8.0)
        tall = Building(30.0, 0.0, 0.5, 20.0, 0.0, 15.0)
        world = single_object_world(trees=(tree,), buildings=(tall,))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        behind = cloud.points[(np.abs(cloud.points[:, 1]) < 2.0)
                              & (cloud.points[:, 0] > 25.0)]
        # Low beams pass under the crown and reach the wall behind.
        assert len(behind) > 0
        assert behind[:, 2].min() < 3.0

    def test_ground_returns(self):
        world = single_object_world()
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=True)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        assert len(cloud) > 0
        assert np.all(cloud.labels == int(PointLabel.GROUND))
        np.testing.assert_allclose(cloud.z, 0.0, atol=1e-9)

    def test_vehicle_returns_labeled(self):
        box = Box3D(12.0, 0.0, 0.8, 4.5, 1.9, 1.6, 0.0)
        world = single_object_world(
            vehicles=(SimVehicle(box, 0.0, 0),))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        cloud = simulate_scan(world, SE2.identity(), cfg, rng=0)
        assert len(cloud) > 0
        assert set(cloud.labels.tolist()) == {int(PointLabel.VEHICLE)}

    def test_sensor_pose_changes_viewpoint(self):
        wall = Building(20.0, 0.0, 0.5, 40.0, 0.0, 10.0)
        world = single_object_world(buildings=(wall,))
        cfg = LidarConfig(range_noise=0.0, dropout=0.0, include_ground=False)
        from_origin = simulate_scan(world, SE2.identity(), cfg, rng=0)
        from_closer = simulate_scan(world, SE2(0.0, 10.0, 0.0), cfg, rng=0)
        # Same wall appears ~10 m closer in the second scan.
        d0 = np.min(from_origin.points[
            np.abs(from_origin.points[:, 1]) < 0.5, 0])
        d1 = np.min(from_closer.points[
            np.abs(from_closer.points[:, 1]) < 0.5, 0])
        assert d0 - d1 == pytest.approx(10.0, abs=0.3)


class TestScanStatistics:
    def test_range_noise_applied(self):
        wall = Building(20.0, 0.0, 0.5, 40.0, 0.0, 10.0)
        world = single_object_world(buildings=(wall,))
        noisy_cfg = LidarConfig(range_noise=0.1, dropout=0.0,
                                include_ground=False)
        clean_cfg = LidarConfig(range_noise=0.0, dropout=0.0,
                                include_ground=False)
        noisy = simulate_scan(world, SE2.identity(), noisy_cfg, rng=1)
        clean = simulate_scan(world, SE2.identity(), clean_cfg, rng=1)
        assert len(noisy) == len(clean)
        assert np.std(noisy.points[:, 0] - clean.points[:, 0]) > 0.01

    def test_dropout_reduces_points(self, small_world):
        full = simulate_scan(small_world, SE2.identity(),
                             LidarConfig(dropout=0.0), rng=0)
        dropped = simulate_scan(small_world, SE2.identity(),
                                LidarConfig(dropout=0.5), rng=0)
        assert len(dropped) < len(full) * 0.7

    def test_timestamps_cover_sweep(self, small_scan):
        assert small_scan.timestamps is not None
        assert small_scan.timestamps.min() >= 0.0
        assert small_scan.timestamps.max() < 1.0
        assert small_scan.timestamps.max() > 0.8  # sweep mostly covered

    def test_motion_distortion_changes_points(self, small_world):
        cfg = LidarConfig(range_noise=0.0, dropout=0.0)
        static = simulate_scan(small_world, SE2.identity(), cfg, rng=0)
        moving = simulate_scan(small_world, SE2.identity(), cfg, rng=0,
                               motion=MotionState(velocity_x=12.0))
        assert len(static) == len(moving)
        displacement = np.linalg.norm(
            static.points[:, :2] - moving.points[:, :2], axis=1)
        assert displacement.max() > 0.5
        assert displacement.max() <= 12.0 * cfg.scan_duration + 1e-6

    def test_empty_world_no_obstacle_returns(self):
        cfg = LidarConfig(include_ground=False)
        cloud = simulate_scan(single_object_world(), SE2.identity(), cfg,
                              rng=0)
        assert len(cloud) == 0

    def test_deterministic_with_seed(self, small_world):
        a = simulate_scan(small_world, SE2.identity(), LidarConfig(), rng=4)
        b = simulate_scan(small_world, SE2.identity(), LidarConfig(), rng=4)
        np.testing.assert_array_equal(a.points, b.points)
