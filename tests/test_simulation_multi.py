"""Tests for repro.simulation.multi."""

import numpy as np
import pytest

from repro.simulation.multi import (
    DEGRADATION_LEVELS,
    MultiScenarioConfig,
    make_multi_frame,
)
from repro.simulation.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def frame():
    return make_multi_frame(MultiScenarioConfig(
        scenario=ScenarioConfig(distance=20.0),
        num_vehicles=3, spacing=18.0, same_direction_prob=1.0), rng=4)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiScenarioConfig(num_vehicles=1)
        with pytest.raises(ValueError):
            MultiScenarioConfig(spacing=0.0)
        with pytest.raises(ValueError):
            MultiScenarioConfig(density=0.0)
        with pytest.raises(ValueError):
            MultiScenarioConfig(degradation=len(DEGRADATION_LEVELS))

    def test_effective_scenario_defaults_untouched(self):
        """Density 1.0 + level 0 must return the scenario unchanged, so
        pre-knob seeds stay byte-identical."""
        config = MultiScenarioConfig()
        assert config.effective_scenario() is config.scenario

    def test_density_scales_world(self):
        base = MultiScenarioConfig().scenario.world.resolved()
        scaled = MultiScenarioConfig(density=2.0) \
            .effective_scenario().world
        assert scaled.override_densities
        assert scaled.traffic_density == pytest.approx(
            base.traffic_density * 2.0)
        assert scaled.parked_density == pytest.approx(
            base.parked_density * 2.0)
        assert scaled.building_density == pytest.approx(
            base.building_density * 2.0)

    def test_degradation_impairs_both_lidars(self):
        config = MultiScenarioConfig(degradation=2)
        effective = config.effective_scenario()
        factor, extra = DEGRADATION_LEVELS[2]
        for before, after in ((config.scenario.ego_lidar,
                               effective.ego_lidar),
                              (config.scenario.other_lidar,
                               effective.other_lidar)):
            assert after.range_noise == pytest.approx(
                before.range_noise * factor)
            assert after.dropout == pytest.approx(
                min(0.95, before.dropout + extra))

    def test_degradation_ladder_monotone(self):
        factors = [level[0] for level in DEGRADATION_LEVELS]
        dropouts = [level[1] for level in DEGRADATION_LEVELS]
        assert factors == sorted(factors)
        assert dropouts == sorted(dropouts)
        assert DEGRADATION_LEVELS[0] == (1.0, 0.0)


class TestMakeMultiFrame:
    def test_shapes(self, frame):
        assert frame.num_vehicles == 3
        assert len(frame.clouds) == 3
        assert len(frame.visible) == 3
        assert len(frame.motions) == 3

    def test_clouds_nonempty(self, frame):
        for cloud in frame.clouds:
            assert len(cloud) > 1000

    def test_spacing_roughly_respected(self, frame):
        for i in range(frame.num_vehicles - 1):
            a, b = frame.poses[i], frame.poses[i + 1]
            gap = np.hypot(a.tx - b.tx, a.ty - b.ty)
            assert 8.0 < gap < 40.0

    def test_gt_relative_composition(self, frame):
        t01 = frame.gt_relative(0, 1)
        t12 = frame.gt_relative(1, 2)
        t02 = frame.gt_relative(0, 2)
        assert (t01 @ t12).is_close(t02, atol_translation=1e-9)

    def test_partners_visible_to_each_other(self, frame):
        """Consecutive vehicles ~18 m apart must see each other's body
        (negative reserved ids)."""
        seen_by_0 = {v.vehicle_id for v in frame.visible[0]}
        assert any(vid < 0 for vid in seen_by_0)

    def test_no_self_observation(self, frame):
        for i, visible in enumerate(frame.visible):
            assert -(i + 1) not in {v.vehicle_id for v in visible}

    def test_deterministic(self):
        config = MultiScenarioConfig(num_vehicles=2, spacing=15.0)
        a = make_multi_frame(config, rng=3)
        b = make_multi_frame(config, rng=3)
        assert a.poses == b.poses

    def test_degradation_thins_clouds_not_poses(self):
        """Impairment changes what the sensors see, not where the
        vehicles are: same seed => same layout, sparser returns."""
        clean = make_multi_frame(MultiScenarioConfig(
            num_vehicles=3, spacing=18.0), rng=11)
        heavy = make_multi_frame(MultiScenarioConfig(
            num_vehicles=3, spacing=18.0, degradation=2), rng=11)
        assert heavy.poses == clean.poses
        for sparse, dense in zip(heavy.clouds, clean.clouds):
            assert len(sparse) < len(dense)


class TestCandidatePairs:
    def test_all_pairs_when_close(self, frame):
        assert frame.candidate_pairs(1e6) == ((0, 1), (0, 2), (1, 2))

    def test_range_gate_drops_distant_pairs(self):
        frame = make_multi_frame(MultiScenarioConfig(
            num_vehicles=5, spacing=28.0, same_direction_prob=1.0),
            rng=7)
        pairs = frame.candidate_pairs(60.0)
        all_pairs = frame.candidate_pairs(1e6)
        assert set(pairs) < set(all_pairs)
        for i, j in set(all_pairs) - set(pairs):
            a, b = frame.poses[i], frame.poses[j]
            assert np.hypot(a.tx - b.tx, a.ty - b.ty) > 60.0

    def test_pairs_are_canonical(self, frame):
        for i, j in frame.candidate_pairs():
            assert 0 <= i < j < frame.num_vehicles
