"""Tests for repro.simulation.multi."""

import numpy as np
import pytest

from repro.simulation.multi import MultiScenarioConfig, make_multi_frame
from repro.simulation.scenario import ScenarioConfig


@pytest.fixture(scope="module")
def frame():
    return make_multi_frame(MultiScenarioConfig(
        scenario=ScenarioConfig(distance=20.0),
        num_vehicles=3, spacing=18.0, same_direction_prob=1.0), rng=4)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiScenarioConfig(num_vehicles=1)
        with pytest.raises(ValueError):
            MultiScenarioConfig(spacing=0.0)


class TestMakeMultiFrame:
    def test_shapes(self, frame):
        assert frame.num_vehicles == 3
        assert len(frame.clouds) == 3
        assert len(frame.visible) == 3
        assert len(frame.motions) == 3

    def test_clouds_nonempty(self, frame):
        for cloud in frame.clouds:
            assert len(cloud) > 1000

    def test_spacing_roughly_respected(self, frame):
        for i in range(frame.num_vehicles - 1):
            a, b = frame.poses[i], frame.poses[i + 1]
            gap = np.hypot(a.tx - b.tx, a.ty - b.ty)
            assert 8.0 < gap < 40.0

    def test_gt_relative_composition(self, frame):
        t01 = frame.gt_relative(0, 1)
        t12 = frame.gt_relative(1, 2)
        t02 = frame.gt_relative(0, 2)
        assert (t01 @ t12).is_close(t02, atol_translation=1e-9)

    def test_partners_visible_to_each_other(self, frame):
        """Consecutive vehicles ~18 m apart must see each other's body
        (negative reserved ids)."""
        seen_by_0 = {v.vehicle_id for v in frame.visible[0]}
        assert any(vid < 0 for vid in seen_by_0)

    def test_no_self_observation(self, frame):
        for i, visible in enumerate(frame.visible):
            assert -(i + 1) not in {v.vehicle_id for v in visible}

    def test_deterministic(self):
        config = MultiScenarioConfig(num_vehicles=2, spacing=15.0)
        a = make_multi_frame(config, rng=3)
        b = make_multi_frame(config, rng=3)
        assert a.poses == b.poses
