"""Tests for repro.simulation.road."""

import numpy as np
import pytest

from repro.simulation.road import RoadModel, make_road


class TestMakeRoad:
    def test_origin_pose(self):
        road = make_road(length=200.0, rng=0)
        pose = road.pose_at(0.0)
        assert abs(pose.tx) < 1.0 and abs(pose.ty) < 1.0
        assert abs(pose.theta) < 0.05

    def test_length(self):
        road = make_road(length=300.0, rng=1)
        assert road.length == pytest.approx(300.0, abs=2.0)

    def test_straight_road_at_zero_curvature(self):
        road = make_road(length=100.0, max_curvature=0.0, rng=0)
        np.testing.assert_allclose(road.heading, 0.0, atol=1e-12)
        np.testing.assert_allclose(road.xy[:, 1], 0.0, atol=1e-9)

    def test_arc_length_parameterization(self):
        """Distance along the centerline matches the arc parameter."""
        road = make_road(length=200.0, max_curvature=0.004, rng=3, step=0.5)
        seg = np.linalg.norm(np.diff(road.xy, axis=0), axis=1)
        np.testing.assert_allclose(seg, 0.5, atol=0.01)

    def test_curvature_bounded(self):
        road = make_road(length=400.0, max_curvature=0.004, rng=5, step=1.0)
        dheading = np.abs(np.diff(road.heading))
        assert dheading.max() <= 0.004 * 1.0 + 1e-9

    def test_lateral_offset_perpendicular(self):
        road = make_road(length=100.0, rng=2)
        on = road.pose_at(10.0, 0.0)
        left = road.pose_at(10.0, 2.0)
        delta = np.array([left.tx - on.tx, left.ty - on.ty])
        assert np.linalg.norm(delta) == pytest.approx(2.0, abs=1e-6)
        tangent = np.array([np.cos(on.theta), np.sin(on.theta)])
        assert abs(delta @ tangent) < 1e-6

    def test_clamps_out_of_range_s(self):
        road = make_road(length=100.0, rng=0)
        pose = road.pose_at(1e6)
        assert np.isfinite(pose.tx)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_road(length=-1.0)
        with pytest.raises(ValueError):
            make_road(max_curvature=-0.1)


class TestRoadModel:
    def test_rejects_inconsistent_arrays(self):
        with pytest.raises(ValueError):
            RoadModel(np.array([0.0, 1.0]), np.zeros((3, 2)),
                      np.zeros(2))

    def test_rejects_non_monotonic_s(self):
        with pytest.raises(ValueError):
            RoadModel(np.array([0.0, 0.0]), np.zeros((2, 2)), np.zeros(2))
