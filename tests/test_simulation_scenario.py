"""Tests for repro.simulation.scenario."""

import numpy as np
import pytest

from repro.geometry.se2 import SE2
from repro.simulation.scenario import (
    EGO_VEHICLE_ID,
    OTHER_VEHICLE_ID,
    ScenarioConfig,
    make_frame_pair,
)


class TestScenarioConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(distance=-1.0)
        with pytest.raises(ValueError):
            ScenarioConfig(same_direction_prob=2.0)

    def test_heterogeneous_default_sensors(self):
        cfg = ScenarioConfig()
        assert cfg.ego_lidar.num_channels != cfg.other_lidar.num_channels


class TestMakeFramePair:
    def test_distance_close_to_target(self, frame_pair):
        assert frame_pair.distance == pytest.approx(25.0, abs=3.0)

    def test_gt_relative_consistent_with_poses(self, frame_pair):
        expected = frame_pair.ego_pose.inverse() @ frame_pair.other_pose
        assert frame_pair.gt_relative.is_close(expected,
                                               atol_translation=1e-9)

    def test_scans_nonempty(self, frame_pair):
        assert len(frame_pair.ego_cloud) > 1000
        assert len(frame_pair.other_cloud) > 1000

    def test_scans_in_own_frames(self, frame_pair):
        """The partner's body must appear in each scan roughly at the
        relative-pose location."""
        gt = frame_pair.gt_relative
        # Other car's position in the ego frame:
        partner_pos = np.array([gt.tx, gt.ty])
        from repro.pointcloud.cloud import PointLabel
        vehicle_pts = frame_pair.ego_cloud.points[
            frame_pair.ego_cloud.labels == int(PointLabel.VEHICLE)][:, :2]
        dists = np.linalg.norm(vehicle_pts - partner_pos, axis=1)
        assert dists.min() < 4.0

    def test_visible_objects_have_min_points(self, frame_pair):
        cfg = ScenarioConfig(distance=25.0)
        for obj in frame_pair.ego_visible:
            assert obj.num_points >= cfg.min_visible_points

    def test_no_self_observation(self, frame_pair):
        assert all(v.vehicle_id != EGO_VEHICLE_ID
                   for v in frame_pair.ego_visible)
        assert all(v.vehicle_id != OTHER_VEHICLE_ID
                   for v in frame_pair.other_visible)

    def test_partner_bodies_observable(self, frame_pair):
        # At 25 m separation each car should see its partner.
        ego_sees = {v.vehicle_id for v in frame_pair.ego_visible}
        other_sees = {v.vehicle_id for v in frame_pair.other_visible}
        assert OTHER_VEHICLE_ID in ego_sees
        assert EGO_VEHICLE_ID in other_sees

    def test_common_vehicles_excludes_partners(self, frame_pair):
        assert all(v >= 0 for v in frame_pair.common_vehicle_ids)

    def test_visible_boxes_near_truth(self, frame_pair):
        """GT visibility boxes (with residual distortion) stay within a
        meter of the undistorted ground truth."""
        inv = frame_pair.ego_pose.inverse()
        world_boxes = {v.vehicle_id: v.box
                       for v in frame_pair.world.vehicles}
        for obj in frame_pair.ego_visible:
            if obj.vehicle_id in world_boxes:
                truth = world_boxes[obj.vehicle_id].transform(inv)
                offset = np.hypot(obj.box.center_x - truth.center_x,
                                  obj.box.center_y - truth.center_y)
                assert offset < 1.0

    def test_deterministic(self):
        a = make_frame_pair(ScenarioConfig(distance=30.0), rng=3)
        b = make_frame_pair(ScenarioConfig(distance=30.0), rng=3)
        assert a.gt_relative.is_close(b.gt_relative)
        np.testing.assert_array_equal(a.ego_cloud.points,
                                      b.ego_cloud.points)

    def test_oncoming_pairs_face_each_other(self):
        pair = make_frame_pair(
            ScenarioConfig(distance=30.0, same_direction_prob=0.0), rng=2)
        relative_yaw = abs(np.degrees(pair.gt_relative.theta))
        assert relative_yaw > 150.0

    def test_same_direction_pairs_aligned(self):
        pair = make_frame_pair(
            ScenarioConfig(distance=30.0, same_direction_prob=1.0), rng=2)
        relative_yaw = abs(np.degrees(pair.gt_relative.theta))
        assert relative_yaw < 30.0

    def test_full_compensation_removes_residual(self):
        """With motion_compensation_error=0 visible boxes match ground
        truth exactly (up to nothing — no distortion applied to them)."""
        pair = make_frame_pair(
            ScenarioConfig(distance=20.0, motion_compensation_error=0.0),
            rng=5)
        inv = pair.ego_pose.inverse()
        world_boxes = {v.vehicle_id: v.box for v in pair.world.vehicles}
        for obj in pair.ego_visible:
            if obj.vehicle_id in world_boxes:
                truth = world_boxes[obj.vehicle_id].transform(inv)
                assert np.hypot(obj.box.center_x - truth.center_x,
                                obj.box.center_y - truth.center_y) < 1e-9
