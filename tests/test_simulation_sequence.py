"""Tests for repro.simulation.sequence."""

import numpy as np
import pytest

from repro.simulation.scenario import ScenarioConfig
from repro.simulation.sequence import DriveSequence, SequenceConfig


@pytest.fixture(scope="module")
def short_sequence():
    config = SequenceConfig(
        scenario=ScenarioConfig(distance=25.0, same_direction_prob=1.0),
        num_frames=4, frame_dt=0.2)
    return list(DriveSequence(config, rng=9))


class TestSequenceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SequenceConfig(num_frames=0)
        with pytest.raises(ValueError):
            SequenceConfig(frame_dt=0.0)


class TestDriveSequence:
    def test_produces_requested_frames(self, short_sequence):
        assert len(short_sequence) == 4

    def test_vehicles_advance_along_road(self, short_sequence):
        positions = np.array([[f.ego_pose.tx, f.ego_pose.ty]
                              for f in short_sequence])
        steps = np.linalg.norm(np.diff(positions, axis=0), axis=1)
        # Speed range is 3-14 m/s at dt = 0.2 s.
        assert np.all(steps > 0.3)
        assert np.all(steps < 3.5)

    def test_same_direction_distance_roughly_constant(self, short_sequence):
        distances = [f.distance for f in short_sequence]
        assert max(distances) - min(distances) < 8.0

    def test_gt_relative_consistent_each_frame(self, short_sequence):
        for frame in short_sequence:
            expected = frame.ego_pose.inverse() @ frame.other_pose
            assert frame.gt_relative.is_close(expected,
                                              atol_translation=1e-9)

    def test_static_world_structure_constant(self, short_sequence):
        first = short_sequence[0].world
        last = short_sequence[-1].world
        assert first.buildings == last.buildings
        assert first.trees == last.trees

    def test_moving_traffic_advances(self):
        config = SequenceConfig(
            scenario=ScenarioConfig(distance=20.0), num_frames=3,
            frame_dt=0.5)
        seq = DriveSequence(config, rng=4)
        frames = list(seq)
        moving_first = {v.vehicle_id: v.box.center
                        for v in frames[0].world.vehicles if v.is_moving}
        moving_last = {v.vehicle_id: v.box.center
                       for v in frames[-1].world.vehicles if v.is_moving}
        common = set(moving_first) & set(moving_last)
        if common:
            moved = [np.linalg.norm(moving_last[i] - moving_first[i])
                     for i in common]
            assert max(moved) > 1.0

    def test_exhaustion(self):
        seq = DriveSequence(SequenceConfig(num_frames=1), rng=1)
        seq.next_frame()
        with pytest.raises(StopIteration):
            seq.next_frame()

    def test_deterministic(self):
        config = SequenceConfig(num_frames=2)
        a = list(DriveSequence(config, rng=7))
        b = list(DriveSequence(config, rng=7))
        for fa, fb in zip(a, b):
            assert fa.gt_relative.is_close(fb.gt_relative)

    def test_odometry_steps_match_speeds(self):
        config = SequenceConfig(num_frames=2, frame_dt=0.25)
        seq = DriveSequence(config, rng=2)
        step = seq.ego_odometry_step()
        assert 3.0 * 0.25 <= step.tx <= 14.0 * 0.25 + 1e-9
