"""Tests for repro.simulation.statistics."""

import numpy as np

from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.statistics import (
    compute_dataset_statistics,
    format_dataset_stats,
)


class TestDatasetStatistics:
    def test_basic_characterization(self, tiny_dataset):
        stats = compute_dataset_statistics(tiny_dataset, max_pairs=3)
        assert stats.num_pairs == 3
        assert 0.0 <= stats.selection_rate <= 1.0
        assert stats.points_per_scan_mean > 1000
        assert 0.5 <= stats.bv_sparsity_mean <= 1.0
        assert sum(stats.scenario_counts.values()) == 3
        assert 0.0 <= stats.oncoming_fraction <= 1.0

    def test_distance_percentiles_within_config(self):
        dataset = V2VDatasetSim(DatasetConfig(
            num_pairs=3, seed=8, distance_range=(15.0, 30.0)))
        stats = compute_dataset_statistics(dataset)
        assert 10.0 <= stats.distance_percentiles[10]
        assert stats.distance_percentiles[90] <= 40.0

    def test_format(self, tiny_dataset):
        stats = compute_dataset_statistics(tiny_dataset, max_pairs=2)
        text = format_dataset_stats(stats)
        assert "selection rate" in text
        assert "sparsity" in text
