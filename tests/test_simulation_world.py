"""Tests for repro.simulation.world."""

import numpy as np
import pytest

from repro.simulation.world import (
    Building,
    ScenarioKind,
    WorldConfig,
    generate_world,
)


class TestBuilding:
    def test_wall_segments_closed_loop(self):
        b = Building(0, 0, 10.0, 6.0, 0.3, 8.0)
        walls = b.wall_segments()
        assert walls.shape == (4, 2, 2)
        # Each wall ends where the next begins.
        for k in range(4):
            np.testing.assert_allclose(walls[k, 1], walls[(k + 1) % 4, 0])

    def test_wall_lengths(self):
        b = Building(5, -3, 10.0, 6.0, 1.0, 8.0)
        walls = b.wall_segments()
        lengths = np.linalg.norm(walls[:, 1] - walls[:, 0], axis=1)
        assert sorted(np.round(lengths, 6).tolist()) == [6.0, 6.0, 10.0, 10.0]


class TestWorldConfig:
    def test_presets_differ(self):
        urban = WorldConfig(kind=ScenarioKind.URBAN).resolved()
        openk = WorldConfig(kind=ScenarioKind.OPEN).resolved()
        assert urban.building_density > openk.building_density
        assert urban.traffic_density > openk.traffic_density

    def test_override_keeps_explicit_values(self):
        cfg = WorldConfig(kind=ScenarioKind.URBAN, building_density=99.0,
                          override_densities=True).resolved()
        assert cfg.building_density == 99.0


class TestGenerateWorld:
    def test_deterministic(self):
        a = generate_world(WorldConfig(), rng=7)
        b = generate_world(WorldConfig(), rng=7)
        assert len(a.buildings) == len(b.buildings)
        assert a.buildings[0] == b.buildings[0]

    def test_carries_road(self):
        world = generate_world(WorldConfig(), rng=1)
        assert world.road is not None
        assert world.extent == pytest.approx(world.road.length / 2, abs=2.0)

    def test_density_presets_reflected(self):
        urban = generate_world(WorldConfig(kind=ScenarioKind.URBAN), rng=3)
        openw = generate_world(WorldConfig(kind=ScenarioKind.OPEN), rng=3)
        assert len(urban.buildings) > len(openw.buildings)
        assert len(urban.vehicles) > len(openw.vehicles)

    def test_vehicles_do_not_overlap(self):
        world = generate_world(WorldConfig(kind=ScenarioKind.URBAN), rng=11)
        centers = np.array([[v.box.center_x, v.box.center_y]
                            for v in world.vehicles])
        if len(centers) >= 2:
            dists = np.linalg.norm(centers[:, None] - centers[None], axis=2)
            np.fill_diagonal(dists, np.inf)
            assert dists.min() >= 6.0 - 1e-9

    def test_vehicle_ids_unique(self):
        world = generate_world(WorldConfig(), rng=13)
        ids = [v.vehicle_id for v in world.vehicles]
        assert len(ids) == len(set(ids))

    def test_moving_vehicles_have_speed(self):
        world = generate_world(WorldConfig(kind=ScenarioKind.HIGHWAY), rng=5)
        moving = [v for v in world.vehicles if v.is_moving]
        assert all(v.velocity > 0 for v in moving)

    def test_objects_near_road_corridor(self):
        world = generate_world(WorldConfig(corridor_length=200.0), rng=9)
        road = world.road
        for tree in world.trees:
            # Trees sit within the corridor band around the centerline.
            dists = np.linalg.norm(road.xy - [tree.x, tree.y], axis=1)
            assert dists.min() < 25.0
