"""Equivalence properties of the vectorized stage-1 kernels.

Every stage-1 hot path keeps its pre-vectorization implementation as a
``_reference_*`` twin (see CONTRIBUTING.md).  These tests pin the
equivalence contracts down:

- BV projection: the fused binning (BLAS finite screen, in-place range
  mask) is bit-identical to the reference height map, including the
  non-finite rejection count.
- Log-Gabor bank: the single-precision bank matches the float64
  reference to float32 rounding, and the per-pixel orientation argmax —
  the only thing the MIM consumes — is *identical* on valid
  (non-negligible-energy) pixels.
- FAST: the LUT detector is bit-identical to the dense reference.
- BVFT descriptors: identical kept keypoints and dominant bins,
  descriptor values within 1e-9; ``flipped_set`` equals recomputing on
  the flipped MIM.
- RANSAC: identical result *and* identical generator stream position for
  the same ``rng`` — the stream is shared with stage 2, so consuming it
  differently would change pipeline outputs.
- Matching: the blockwise NN statistics are independent of block
  granularity.
"""

import numpy as np
import pytest

from repro.bev.log_gabor import LogGaborBank, LogGaborConfig
from repro.bev.mim import compute_mim
from repro.bev.projection import _reference_height_map, height_map
from repro.features import matching as matching_module
from repro.features.descriptors import BvftConfig, BvftDescriptorExtractor
from repro.features.fast import (
    FastConfig,
    Keypoints,
    _reference_detect_fast,
    detect_fast,
)
from repro.features.matching import match_descriptors
from repro.geometry.ransac import (
    _reference_ransac_rigid_2d,
    ransac_rigid_2d,
)
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud


def structured_cloud(rng: np.random.Generator) -> PointCloud:
    """Walls plus scattered blobs — enough oriented structure for MIM,
    FAST and descriptors to produce realistic intermediate data."""
    t = np.linspace(-28, 28, 420)
    parts = []
    for f in np.linspace(0.25, 1.0, 5):
        z = np.full_like(t, 7.5 * f)
        parts.append(np.stack([t, np.full_like(t, 6.0), z], 1))
        parts.append(np.stack([np.full_like(t, -9.0), t, z], 1))
        parts.append(np.stack([t, 0.55 * t - 14.0, z], 1))
    for _ in range(10):
        cx, cy = rng.uniform(-22, 22, 2)
        n = 30
        parts.append(np.stack([cx + rng.normal(0, 0.5, n),
                               cy + rng.normal(0, 0.5, n),
                               rng.uniform(1.5, 5.0, n)], 1))
    return PointCloud(np.vstack(parts))


@pytest.fixture(scope="module")
def bv_image():
    return height_map(structured_cloud(np.random.default_rng(17)), 0.4, 51.2)


@pytest.fixture(scope="module")
def mim_result(bv_image):
    return compute_mim(bv_image)


@pytest.fixture(scope="module")
def keypoints(bv_image):
    return detect_fast(bv_image.image, FastConfig())


class TestProjectionEquivalence:
    def assert_identical(self, cloud, **kwargs):
        new = height_map(cloud, **kwargs)
        ref = _reference_height_map(cloud, **kwargs)
        assert np.array_equal(new.image, ref.image)
        assert new.num_nonfinite == ref.num_nonfinite
        assert new.cell_size == ref.cell_size
        assert new.lidar_range == ref.lidar_range

    def test_structured_cloud(self):
        cloud = structured_cloud(np.random.default_rng(17))
        self.assert_identical(cloud, cell_size=0.4, lidar_range=51.2)

    def test_random_clouds(self):
        rng = np.random.default_rng(29)
        for _ in range(4):
            pts = rng.uniform(-80, 80, (3000, 3))
            self.assert_identical(PointCloud(pts), cell_size=0.8,
                                  lidar_range=60.0)

    def test_nonfinite_and_overflow_rows(self):
        """NaN/inf coordinates and a finite row whose coordinate sum
        overflows to inf — the exact cases where the BLAS finite screen
        could diverge from the elementwise reference."""
        rng = np.random.default_rng(31)
        pts = rng.uniform(-40, 40, (200, 3))
        pts[3, 0] = np.nan
        pts[7, 2] = np.inf
        pts[11, 1] = -np.inf
        pts[20] = [np.inf, -np.inf, 0.0]
        pts[25] = [1e308, 1e308, 1.0]   # finite, sum overflows
        pts[26] = [-1e308, -1e308, 2.0]
        self.assert_identical(PointCloud(pts), cell_size=0.8,
                              lidar_range=60.0)

    def test_height_clamps(self):
        cloud = structured_cloud(np.random.default_rng(5))
        self.assert_identical(cloud, cell_size=0.4, lidar_range=51.2,
                              min_height=0.5, max_height=None)
        self.assert_identical(cloud, cell_size=0.4, lidar_range=51.2,
                              max_height=3.0)


class TestLogGaborBankEquivalence:
    def assert_bank_equivalent(self, bank, image):
        new = bank.orientation_amplitude_sum(image)
        ref = bank._reference_orientation_amplitude_sum(image)
        assert new.dtype == np.float32
        # Amplitudes agree to single-precision rounding...
        np.testing.assert_allclose(new, ref, atol=1e-4 * float(ref.max()))
        # ...and the orientation winner is identical wherever the MIM is
        # meaningful (argmax on zero-energy pixels is argmax-of-noise and
        # is masked out downstream by valid_mask).
        peak = ref.max(axis=0)
        valid = peak >= 0.05 * float(peak.max())
        assert np.array_equal(np.argmax(new, axis=0)[valid],
                              np.argmax(ref, axis=0)[valid])

    def test_default_bank_matches_reference(self, bv_image):
        bank = LogGaborBank(bv_image.size, LogGaborConfig())
        self.assert_bank_equivalent(bank, bv_image.image)

    def test_single_scale_bank(self, bv_image):
        bank = LogGaborBank(bv_image.size, LogGaborConfig(num_scales=1))
        self.assert_bank_equivalent(bank, bv_image.image)

    def test_random_image(self):
        image = np.random.default_rng(3).random((64, 64)) * 4.0
        bank = LogGaborBank(64, LogGaborConfig())
        self.assert_bank_equivalent(bank, image)

    def test_per_filter_responses_match_reference(self, bv_image):
        bank = LogGaborBank(bv_image.size, LogGaborConfig())
        new = bank.amplitudes_by_orientation(bv_image.image)
        ref = bank._reference_amplitudes_by_orientation(bv_image.image)
        peak = max(float(r.max()) for row in ref for r in row)
        for o in range(bank.config.num_orientations):
            for s in range(bank.config.num_scales):
                np.testing.assert_allclose(new[o][s], ref[o][s],
                                           atol=1e-4 * peak)

    def test_mim_winner_sweep_matches_argmax(self, bv_image):
        """compute_mim's manual maximum sweep must reproduce np.argmax
        first-occurrence tie-breaking exactly (zero-energy pixels tie at
        0 across all orientations, so ties are exercised for real)."""
        bank = LogGaborBank(bv_image.size, LogGaborConfig())
        amplitude = bank.orientation_amplitude_sum(bv_image.image)
        result = compute_mim(bv_image)
        assert np.array_equal(result.mim,
                              np.argmax(amplitude, axis=0).astype(np.int32))
        np.testing.assert_array_equal(
            result.max_amplitude, amplitude.max(axis=0).astype(np.float64))


class TestFastEquivalence:
    def assert_identical(self, image, config):
        new = detect_fast(image, config)
        ref = _reference_detect_fast(image, config)
        assert np.array_equal(new.xy, ref.xy)
        assert np.array_equal(new.scores, ref.scores)

    def test_bv_image(self, bv_image):
        self.assert_identical(bv_image.image, FastConfig())

    def test_no_nms(self, bv_image):
        self.assert_identical(bv_image.image, FastConfig(nms_radius=0))

    def test_random_images(self):
        rng = np.random.default_rng(11)
        for _ in range(4):
            image = rng.random((73, 91)) * 3.0
            self.assert_identical(image, FastConfig(threshold=0.4))

    def test_max_keypoints_cap(self, bv_image):
        self.assert_identical(bv_image.image, FastConfig(max_keypoints=25))


class TestDescriptorEquivalence:
    def assert_equivalent(self, extractor, mim_result, keypoints):
        new = extractor.compute(mim_result, keypoints)
        ref = extractor._reference_compute(mim_result, keypoints)
        assert np.array_equal(new.keypoint_indices, ref.keypoint_indices)
        assert np.array_equal(new.dominant_bins, ref.dominant_bins)
        assert np.array_equal(new.keypoint_xy, ref.keypoint_xy)
        np.testing.assert_allclose(new.descriptors, ref.descriptors,
                                   atol=1e-9)

    def test_default_config(self, mim_result, keypoints):
        self.assert_equivalent(BvftDescriptorExtractor(), mim_result,
                               keypoints)

    def test_non_default_grid_size(self, mim_result, keypoints):
        self.assert_equivalent(
            BvftDescriptorExtractor(BvftConfig(patch_size=32, grid_size=4)),
            mim_result, keypoints)

    def test_rotation_invariance_off(self, mim_result, keypoints):
        self.assert_equivalent(
            BvftDescriptorExtractor(BvftConfig(rotation_invariant=False)),
            mim_result, keypoints)

    def test_zero_keypoints(self, mim_result):
        extractor = BvftDescriptorExtractor()
        out = extractor.compute(mim_result, Keypoints.empty())
        ref = extractor._reference_compute(mim_result, Keypoints.empty())
        assert len(out) == len(ref) == 0
        assert out.descriptors.shape == ref.descriptors.shape

    def test_border_keypoints_match_reference(self, mim_result):
        """Patches hanging off the image edge exercise the padded-pixel
        (zero-weight vote) path in both implementations."""
        h = mim_result.mim.shape[0]
        xy = np.array([[1.0, 1.0], [h - 2.0, 1.0], [2.0, h - 2.0],
                       [h / 2.0, 0.0]])
        kp = Keypoints(xy=xy, scores=np.ones(len(xy)))
        self.assert_equivalent(BvftDescriptorExtractor(), mim_result, kp)

    def test_flipped_set_matches_recompute(self, bv_image, mim_result,
                                           keypoints):
        """Deriving flip descriptors by cell-block reversal must equal
        recomputing them on the 180-degree-rotated MIM."""
        from repro.bev.mim import MIMResult

        extractor = BvftDescriptorExtractor()
        base = extractor.compute(mim_result, keypoints)
        derived = extractor.flipped_set(base, bv_image.size)

        flipped_mim = MIMResult(
            mim=mim_result.mim[::-1, ::-1],
            max_amplitude=mim_result.max_amplitude[::-1, ::-1],
            total_amplitude=mim_result.total_amplitude[::-1, ::-1],
            num_orientations=mim_result.num_orientations)
        flipped_kp = Keypoints(xy=(bv_image.size - 1) - keypoints.xy,
                               scores=keypoints.scores)
        recomputed = extractor.compute(flipped_mim, flipped_kp)

        assert np.array_equal(derived.keypoint_indices,
                              recomputed.keypoint_indices)
        assert np.array_equal(derived.dominant_bins,
                              recomputed.dominant_bins)
        assert np.array_equal(derived.keypoint_xy, recomputed.keypoint_xy)
        np.testing.assert_allclose(derived.descriptors,
                                   recomputed.descriptors, atol=1e-12)


def _correspondences(n=120, outlier_fraction=0.35, seed=5):
    rng = np.random.default_rng(seed)
    src = rng.uniform(-30, 30, (n, 2))
    true = SE2(0.4, 3.0, -1.5)
    dst = true.apply(src) + rng.normal(0, 0.05, (n, 2))
    n_out = int(outlier_fraction * n)
    dst[:n_out] = rng.uniform(-30, 30, (n_out, 2))
    return src, dst


class TestRansacEquivalence:
    def assert_identical_runs(self, src, dst, seed, **kwargs):
        rng_new = np.random.default_rng(seed)
        rng_ref = np.random.default_rng(seed)
        new = ransac_rigid_2d(src, dst, rng=rng_new, **kwargs)
        ref = _reference_ransac_rigid_2d(src, dst, rng=rng_ref, **kwargs)
        assert new.success == ref.success
        assert new.num_inliers == ref.num_inliers
        assert new.iterations == ref.iterations
        assert np.array_equal(new.inlier_mask, ref.inlier_mask)
        assert new.transform.theta == ref.transform.theta
        assert new.transform.tx == ref.transform.tx
        assert new.transform.ty == ref.transform.ty
        if not np.isnan(ref.rmse):
            assert new.rmse == ref.rmse
        # The stream position after the call must also match: stage 2
        # reuses the same generator, so an off-by-one draw would change
        # pipeline outputs downstream.
        assert np.array_equal(rng_new.random(8), rng_ref.random(8))

    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 19])
    def test_matches_reference_across_seeds(self, seed):
        src, dst = _correspondences(seed=seed)
        self.assert_identical_runs(src, dst, seed, threshold=0.5)

    def test_high_outlier_long_run(self):
        """Many adaptive iterations: exercises multiple chunks, the
        no-new-best fast path, and the mid-chunk stop/rewind."""
        src, dst = _correspondences(n=60, outlier_fraction=0.85, seed=23)
        self.assert_identical_runs(src, dst, 23, threshold=0.3,
                                   max_iterations=1500)

    def test_all_degenerate_samples(self):
        """Every minimal sample coincident: no model, identical failure."""
        src = np.zeros((10, 2))
        dst = np.zeros((10, 2))
        self.assert_identical_runs(src, dst, 4, threshold=0.5,
                                   max_iterations=50)

    def test_fewer_points_than_sample(self):
        src = np.array([[0.0, 0.0]])
        dst = np.array([[1.0, 1.0]])
        self.assert_identical_runs(src, dst, 0)

    def test_stop_on_first_chunk(self):
        """Clean data terminates adaptively within the first chunk; the
        rewind must leave the stream exactly where the sequential loop
        would."""
        src, dst = _correspondences(n=40, outlier_fraction=0.0, seed=2)
        self.assert_identical_runs(src, dst, 2, threshold=1.0)


class TestMatchingBlockwise:
    def test_block_granularity_invariant(self, mim_result, keypoints,
                                         monkeypatch):
        """NN decisions must not depend on the row-block size (ties break
        identically; distances on kept pairs are recomputed exactly)."""
        extractor = BvftDescriptorExtractor()
        desc = extractor.compute(mim_result, keypoints)
        assert len(desc) > 8
        half = len(desc) // 2
        from repro.features.descriptors import DescriptorSet
        a = DescriptorSet(desc.descriptors[:half], desc.keypoint_xy[:half],
                          desc.keypoint_indices[:half],
                          desc.dominant_bins[:half])
        b = DescriptorSet(desc.descriptors[half:], desc.keypoint_xy[half:],
                          desc.keypoint_indices[half:],
                          desc.dominant_bins[half:])
        full = match_descriptors(a, b)
        monkeypatch.setattr(matching_module, "_ROW_BLOCK", 7)
        blocked = match_descriptors(a, b)
        assert np.array_equal(full.src_indices, blocked.src_indices)
        assert np.array_equal(full.dst_indices, blocked.dst_indices)
        np.testing.assert_array_equal(full.distances, blocked.distances)
