"""The opt-in float32 stage-1 path (``stage1_precision="float32"``).

The single-precision path is validated by *tolerance plus agreement*,
not byte-identity (see CONTRIBUTING.md): descriptors stay close to the
float64 reference, and on a seeded sweep every pair reaches the same
success/failure outcome with pose errors within tolerance of the
float64 run.  Byte-identity contracts that must hold *within* a
precision — pair-batched extraction versus two single extractions — are
pinned here for both precisions.
"""

import numpy as np
import pytest

from repro.bev.mim import compute_mim
from repro.core.bv_matching import BVMatcher
from repro.core.config import STAGE1_PRECISIONS, BBAlignConfig
from repro.bev.roi import RoiCullConfig
from repro.experiments.common import default_dataset, run_pose_recovery_sweep


def _pairs(n, seed=2024):
    return list(default_dataset(n, seed))


@pytest.fixture(scope="module")
def sample_pair():
    return _pairs(1)[0].pair


class TestConfigPlumbing:
    def test_known_precisions(self):
        assert STAGE1_PRECISIONS == ("float64", "float32")

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="stage1_precision"):
            BBAlignConfig(stage1_precision="float16")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE1_PRECISION", "float32")
        assert BBAlignConfig().stage1_precision == "float32"
        monkeypatch.delenv("REPRO_STAGE1_PRECISION")
        assert BBAlignConfig().stage1_precision == "float64"

    def test_dtypes_follow_precision(self, sample_pair):
        bv = BVMatcher(BBAlignConfig()).make_bv_image(sample_pair.ego_cloud)
        m64 = compute_mim(bv, precision="float64")
        m32 = compute_mim(bv, precision="float32")
        assert m64.max_amplitude.dtype == np.float64
        assert m32.max_amplitude.dtype == np.float32
        f64 = BVMatcher(
            BBAlignConfig(stage1_precision="float64")).extract(bv)
        f32 = BVMatcher(
            BBAlignConfig(stage1_precision="float32")).extract(bv)
        assert f64.descriptors.descriptors.dtype == np.float64
        assert f32.descriptors.descriptors.dtype == np.float32


class TestFloat32CloseToFloat64:
    def test_descriptors_match_to_single_rounding(self, sample_pair):
        bv = BVMatcher(BBAlignConfig()).make_bv_image(sample_pair.ego_cloud)
        d64 = BVMatcher(
            BBAlignConfig(stage1_precision="float64")).extract(bv).descriptors
        d32 = BVMatcher(
            BBAlignConfig(stage1_precision="float32")).extract(bv).descriptors
        # The MIM winner can flip on near-tie pixels, so keypoint sets
        # may differ slightly; compare descriptors on the shared ones.
        common, i64, i32 = np.intersect1d(
            d64.keypoint_indices, d32.keypoint_indices, return_indices=True)
        assert len(common) >= 0.9 * max(len(d64), len(d32))
        same_dom = (d64.dominant_bins[i64] == d32.dominant_bins[i32])
        assert same_dom.mean() >= 0.9
        diff = np.linalg.norm(
            d64.descriptors[i64][same_dom]
            - d32.descriptors[i32][same_dom], axis=1)
        # Rows are unit-norm, so this is a relative error bound.
        assert np.median(diff) < 1e-3


class TestPairSingleIdentity:
    @pytest.mark.parametrize("precision", STAGE1_PRECISIONS)
    @pytest.mark.parametrize("roi", [False, True])
    def test_extract_pair_matches_two_singles(self, sample_pair, precision,
                                              roi):
        config = BBAlignConfig(stage1_precision=precision,
                               roi=RoiCullConfig(enabled=roi))
        matcher = BVMatcher(config)
        bv_a = matcher.make_bv_image(sample_pair.ego_cloud)
        bv_b = matcher.make_bv_image(sample_pair.other_cloud)
        gt = sample_pair.gt_relative
        priors = (gt.translation, gt.inverse().translation)
        fa, fb = matcher.extract_pair(bv_a, bv_b, priors=priors)
        sa = matcher.extract(bv_a, prior=priors[0])
        sb = matcher.extract(bv_b, prior=priors[1])
        for pair_f, single_f in ((fa, sa), (fb, sb)):
            assert np.array_equal(pair_f.keypoints.xy, single_f.keypoints.xy)
            assert np.array_equal(pair_f.descriptors.descriptors,
                                  single_f.descriptors.descriptors)
            assert np.array_equal(pair_f.descriptors.keypoint_indices,
                                  single_f.descriptors.keypoint_indices)


class TestSweepAgreement:
    def test_outcomes_identical_pose_error_within_tolerance(self):
        """The acceptance contract for float32: same success/failure on
        every pair of a seeded sweep, pose errors within tolerance."""
        n = 12
        out64 = run_pose_recovery_sweep(
            _pairs(n), config=BBAlignConfig(stage1_precision="float64"),
            include_vips=False, workers=1, cache=False)
        out32 = run_pose_recovery_sweep(
            _pairs(n), config=BBAlignConfig(stage1_precision="float32"),
            include_vips=False, workers=1, cache=False)
        assert len(out64) == len(out32) == n
        for a, b in zip(out64, out32):
            assert a.index == b.index
            assert a.success == b.success
            if a.success:
                assert abs(a.errors.translation - b.errors.translation) < 0.1
                assert abs(a.errors.rotation_deg
                           - b.errors.rotation_deg) < 0.5
