"""Tests for repro.viz (headless rendering)."""

import numpy as np
import pytest

from repro.bev.mim import compute_mim
from repro.bev.projection import BVImage, height_map
from repro.features.matching import MatchResult
from repro.viz import (
    render_bv_ascii,
    render_bv_image,
    render_match_image,
    render_mim_image,
    render_scene_ascii,
    render_scene_image,
    save_pgm,
)


class TestPgm:
    def test_writes_readable_pgm(self, tmp_path, rng):
        image = rng.random((20, 30))
        path = save_pgm(image, tmp_path / "out.pgm")
        data = path.read_bytes()
        assert data.startswith(b"P5\n30 20\n255\n")
        assert len(data) == len(b"P5\n30 20\n255\n") + 20 * 30

    def test_uint8_passthrough(self, tmp_path):
        image = np.arange(256, dtype=np.uint8).reshape(16, 16)
        path = save_pgm(image, tmp_path / "raw.pgm")
        assert path.read_bytes()[-256:] == image.tobytes()

    def test_constant_image(self, tmp_path):
        save_pgm(np.full((4, 4), 3.0), tmp_path / "c.pgm")  # no crash

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(np.zeros((4, 4, 3)), tmp_path / "x.pgm")


class TestAscii:
    def test_bv_ascii_dimensions(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        art = render_bv_ascii(bv, width=60)
        lines = art.split("\n")
        assert all(len(line) == 60 for line in lines)
        assert len(lines) >= 2

    def test_bv_ascii_empty(self):
        art = render_bv_ascii(BVImage(np.zeros((32, 32)), 1.0, 16.0))
        assert set(art) <= {" ", "\n"}

    def test_bv_ascii_structure_visible(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        art = render_bv_ascii(bv)
        assert any(ch not in " \n" for ch in art)

    def test_scene_ascii(self, small_world):
        art = render_scene_ascii(small_world, half_extent=80.0, width=60)
        assert "B" in art       # buildings drawn
        assert "E" in art       # ego marker


class TestRender:
    def test_bv_image_uint8(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        image = render_bv_image(bv)
        assert image.dtype == np.uint8
        assert image.max() > 0

    def test_mim_image_masks_empty(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        mim = compute_mim(bv)
        image = render_mim_image(mim)
        assert image.dtype == np.uint8
        # Empty regions render black.
        assert (image == 0).sum() > image.size // 4

    def test_match_image_layout(self, small_scan):
        bv = height_map(small_scan, 0.8, 76.8)
        matches = MatchResult(
            src_indices=np.array([0]), dst_indices=np.array([0]),
            distances=np.array([0.1]),
            src_xy=np.array([[10.0, 10.0]]),
            dst_xy=np.array([[20.0, 20.0]]))
        image = render_match_image(bv, bv, matches)
        assert image.shape[1] == 2 * bv.size + 8
        assert image.max() == 255  # the correspondence line

    def test_scene_image_with_boxes(self, frame_pair):
        boxes = [[v.box.to_bev() for v in frame_pair.ego_visible]]
        image = render_scene_image(
            [frame_pair.ego_cloud,
             frame_pair.other_cloud.transform(frame_pair.gt_relative)],
            boxes=boxes)
        assert image.dtype == np.uint8
        if boxes[0]:
            assert (image == 255).sum() > 0  # box outlines drawn
