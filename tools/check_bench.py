#!/usr/bin/env python3
"""Benchmark-regression gate: compare BENCH_*.json against baselines.

Usage::

    python tools/check_bench.py benchmarks/results/BENCH_stage1.json \
        benchmarks/results/BENCH_pipeline.json
    python tools/check_bench.py --strict --max-slowdown 1.3 BENCH.json

Each bench file is compared against the committed baseline of the same
name under ``--baselines-dir`` (default
``benchmarks/results/baselines/``).  Two classes of drift:

* **Metric drift** — deterministic fields (inlier counts, match counts,
  outcome counts, configuration): any mismatch is a regression and the
  gate **fails**.  These values are seeded, so a change means behavior
  changed, not the weather on the CI runner.
* **Timing drift** — ``*_ms`` / ``*_s`` / ``*_mb`` / ``*_rps`` /
  ``*speedup`` fields: compared as ratios against ``--max-slowdown``
  (default 1.5).  ``*_rps`` and ``*speedup`` are larger-is-better, so
  their ratio is inverted; the rest (latencies, wall times, memory
  ceilings) are smaller-is-better.  Exceeding the budget **warns** by
  default — CI runners are noisy — and fails only under ``--strict``
  (or ``REPRO_BENCH_STRICT=1``).

A bench file with no baseline yet warns and passes, so adding a new
benchmark never blocks CI; commit its baseline with
``make bench-baseline``.

Exit codes: ``0`` pass (possibly with warnings), ``2`` regression,
``1`` usage error (missing/unreadable input).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Iterator

# Anchored to the repository (this file's parent's parent), not the
# caller's cwd, so `python tools/check_bench.py` works from anywhere.
DEFAULT_BASELINES = (pathlib.Path(__file__).resolve().parent.parent
                     / "benchmarks" / "results" / "baselines")
DEFAULT_MAX_SLOWDOWN = 1.5

#: Keys whose values never gate: schema bookkeeping and the strictness
#: flag the bench suites echo from their own environment.
IGNORED_KEYS = {"schema_version", "strict"}

#: Dicts whose children are all per-stage timings (speedup leaves under
#: ``stage_speedups`` are timing ratios, not deterministic metrics).
TIMING_SUBTREES = {"stages_before_s", "stages_after_s", "stage_speedups"}


#: Timing-key suffixes where *larger* is better (ratio inverted).
#: ``speedup`` also matches compound names (``rps_speedup``,
#: ``bytes_speedup``) so data-plane ratios gate inverted too.
_INVERTED_SUFFIXES = ("_rps", "speedup")


def _is_timing_key(key: str) -> bool:
    return (key.endswith("_ms") or key.endswith("_s")
            or key.endswith("_mb") or key.endswith(_INVERTED_SUFFIXES))


def _walk(node: object, path: tuple[str, ...] = ()) \
        -> Iterator[tuple[tuple[str, ...], object]]:
    """Yield (path, leaf) for every non-ignored leaf in a bench JSON."""
    if isinstance(node, dict):
        for key in sorted(node):
            if key in IGNORED_KEYS:
                continue
            yield from _walk(node[key], path + (key,))
    else:
        yield path, node


class Comparison:
    """Accumulates findings for one bench-file/baseline pair."""

    def __init__(self, name: str, max_slowdown: float) -> None:
        self.name = name
        self.max_slowdown = max_slowdown
        self.failures: list[str] = []
        self.warnings: list[str] = []
        self.checked = 0

    # ------------------------------------------------------------------
    def _compare_timing(self, label: str, current: float,
                        baseline: float) -> None:
        # "speedup" and throughput are better when larger; raw times
        # and memory ceilings when smaller.  Both reduce to one
        # slowdown ratio >= 1 meaning "got worse".
        if baseline <= 0 or current <= 0:
            return  # degenerate timing (e.g. sub-resolution stage): skip
        leaf = label.rsplit(".", 1)[-1]
        if leaf.endswith(_INVERTED_SUFFIXES):
            ratio = baseline / current
        else:
            ratio = current / baseline
        if ratio > self.max_slowdown:
            self.warnings.append(
                f"{label}: {ratio:.2f}x over baseline "
                f"({baseline:g} -> {current:g}, budget "
                f"{self.max_slowdown:g}x)")

    def _compare_metric(self, label: str, current: object,
                        baseline: object) -> None:
        if current != baseline:
            self.failures.append(
                f"{label}: {baseline!r} -> {current!r} (deterministic "
                f"field changed)")

    # ------------------------------------------------------------------
    def run(self, current: dict, baseline: dict) -> None:
        current_leaves = dict(_walk(current))
        baseline_leaves = dict(_walk(baseline))
        for path in sorted(baseline_leaves.keys() - current_leaves.keys()):
            self.failures.append(f"{'.'.join(path)}: missing from current "
                                 f"bench output")
        for path in sorted(current_leaves.keys() - baseline_leaves.keys()):
            self.failures.append(f"{'.'.join(path)}: not in baseline "
                                 f"(run `make bench-baseline` to accept)")
        for path in sorted(current_leaves.keys() & baseline_leaves.keys()):
            label = ".".join(path)
            cur, base = current_leaves[path], baseline_leaves[path]
            self.checked += 1
            timing = (_is_timing_key(path[-1])
                      or any(part in TIMING_SUBTREES for part in path[:-1]))
            if timing:
                if isinstance(cur, (int, float)) \
                        and isinstance(base, (int, float)):
                    self._compare_timing(label, float(cur), float(base))
                else:
                    self._compare_metric(label, cur, base)
            else:
                self._compare_metric(label, cur, base)

    # ------------------------------------------------------------------
    def report(self, stream=None) -> None:
        stream = stream if stream is not None else sys.stdout
        for line in self.failures:
            print(f"FAIL  {self.name}: {line}", file=stream)
        for line in self.warnings:
            print(f"WARN  {self.name}: {line}", file=stream)
        if not self.failures and not self.warnings:
            print(f"OK    {self.name}: {self.checked} fields within "
                  f"budget", file=stream)


def _load(path: pathlib.Path) -> dict:
    with path.open(encoding="utf-8") as stream:
        data = json.load(stream)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Gate benchmark JSON outputs against committed "
                    "baselines.")
    parser.add_argument("bench_files", nargs="+", type=pathlib.Path,
                        help="BENCH_*.json files produced by the "
                             "benchmark suites")
    parser.add_argument("--baselines-dir", type=pathlib.Path,
                        default=DEFAULT_BASELINES,
                        help="directory of committed baseline JSONs "
                             f"(default {DEFAULT_BASELINES})")
    parser.add_argument("--max-slowdown", type=float,
                        default=DEFAULT_MAX_SLOWDOWN,
                        help="timing budget as a ratio over baseline "
                             f"(default {DEFAULT_MAX_SLOWDOWN})")
    parser.add_argument("--strict", action="store_true",
                        default=os.environ.get("REPRO_BENCH_STRICT") == "1",
                        help="treat timing-budget warnings as failures "
                             "(implied by REPRO_BENCH_STRICT=1)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_slowdown <= 0:
        print("error: --max-slowdown must be > 0", file=sys.stderr)
        return 1

    any_failure = False
    any_warning = False
    for bench_path in args.bench_files:
        try:
            current = _load(bench_path)
        except (OSError, ValueError) as error:
            print(f"error: cannot read {bench_path}: {error}",
                  file=sys.stderr)
            return 1
        baseline_path = args.baselines_dir / bench_path.name
        if not baseline_path.exists():
            print(f"WARN  {bench_path.name}: no baseline at "
                  f"{baseline_path} (run `make bench-baseline`)")
            any_warning = True
            continue
        try:
            baseline = _load(baseline_path)
        except (OSError, ValueError) as error:
            print(f"error: cannot read {baseline_path}: {error}",
                  file=sys.stderr)
            return 1
        comparison = Comparison(bench_path.name, args.max_slowdown)
        comparison.run(current, baseline)
        comparison.report()
        any_failure = any_failure or bool(comparison.failures)
        any_warning = any_warning or bool(comparison.warnings)

    if any_failure or (args.strict and any_warning):
        print("check_bench: REGRESSION", file=sys.stderr)
        return 2
    if any_warning:
        print("check_bench: passed with warnings")
    else:
        print("check_bench: all benchmarks within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
