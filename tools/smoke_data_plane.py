#!/usr/bin/env python3
"""CI smoke: the service data plane answers identically with and
without shared memory.

Spawns two real ``repro serve`` processes — one with ``--shm``, one
with ``--no-shm`` — and sends the same scan pair through every path:

* plain wire request to the ``--no-shm`` server (pickle data plane),
* plain wire request to the ``--shm`` server (zero-copy dispatch),
* shared-memory descriptor request to the ``--shm`` server
  (zero-copy end to end, when the host has ``/dev/shm``).

All responses must be field-identical, both servers must drain cleanly
on SIGTERM, and ``/dev/shm`` must hold no new segments afterwards.
Exit 0 on success; any assertion failure is a smoke failure.
"""

from __future__ import annotations

import asyncio
import glob
import signal
import subprocess
import sys

from repro.comms.envelope import ServiceRequest
from repro.comms.tiers import Tier, build_message
from repro.detection.simulated import COBEVT_PROFILE, SimulatedDetector
from repro.experiments.common import detect_for_pair
from repro.runtime.shm import shm_available
from repro.service import ServiceClient
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim


def scan_pair():
    pair = V2VDatasetSim(DatasetConfig(num_pairs=2, seed=2024))[0].pair
    ego_dets, other_dets = detect_for_pair(
        pair, SimulatedDetector(COBEVT_PROFILE), 7, 0
    )
    return (
        build_message(
            Tier.FULL_SCAN, [d.box for d in ego_dets], cloud=pair.ego_cloud
        ),
        build_message(
            Tier.FULL_SCAN,
            [d.box for d in other_dets],
            cloud=pair.other_cloud,
        ),
    )


def start_server(flag: str) -> tuple[subprocess.Popen, int]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--pairs",
            "2",
            "--workers",
            "2",
            flag,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = process.stdout.readline()
    assert "listening on" in line, f"serve {flag} did not start: {line!r}"
    port = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    return process, port


async def one_request(port: int, ego, other, *, via_shm: bool):
    # One request per connection: the client assigns connection-unique
    # request ids starting at 1, and the per-request RNG stream hangs
    # off the id — identical ids are what make responses comparable.
    client = await ServiceClient.connect("127.0.0.1", port)
    try:
        if via_shm:
            return await client.request_shm(ego, other)
        return await client.request(
            ServiceRequest(request_id=1, ego=ego, other=other)
        )
    finally:
        await client.close()


def drive(port: int, ego, other, *, via_shm: bool):
    return asyncio.run(
        asyncio.wait_for(
            one_request(port, ego, other, via_shm=via_shm), timeout=120
        )
    )


def main() -> int:
    segments_before = set(glob.glob("/dev/shm/*"))
    ego, other = scan_pair()
    by_flag = {}
    for flag in ("--shm", "--no-shm"):
        process, port = start_server(flag)
        try:
            by_flag[flag] = drive(port, ego, other, via_shm=False)
            assert by_flag[flag].status == "ok", by_flag[flag]
            if flag == "--shm" and shm_available():
                descriptor = drive(port, ego, other, via_shm=True)
                assert descriptor == by_flag[flag], (
                    f"shm descriptor response diverged:\n{descriptor}\n"
                    f"!=\n{by_flag[flag]}"
                )
            process.send_signal(signal.SIGTERM)
            out, _err = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, out
        assert "drained;" in out, out
    assert by_flag["--shm"] == by_flag["--no-shm"], (
        f"--shm and --no-shm servers diverged:\n{by_flag['--shm']}\n"
        f"!=\n{by_flag['--no-shm']}"
    )
    leaked = sorted(set(glob.glob("/dev/shm/*")) - segments_before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    print(
        "service data-plane smoke: wire == shm descriptor, "
        "--shm server == --no-shm server, zero leaked segments"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
